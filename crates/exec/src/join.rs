//! Hash joins (build + probe pipelines, Fig. 4) and index joins.
//!
//! The build side is partitioned and parallel (§V-E): every
//! [`HashBuilderOperator`] pre-hashes and radix-partitions its pages as they
//! arrive — off the bridge lock — and once all builders are done, the
//! per-partition flat tables are built by whichever build drivers are
//! available, each claiming partitions from a shared queue. The probe side
//! is batched: one vectorized hash pass per page, one index-vector gather
//! per side, with dictionary and RLE fast paths that resolve each distinct
//! key once per page instead of once per row.

use parking_lot::Mutex;
use presto_common::{DataType, Schema, Value};
use presto_common::{PrestoError, Result};
use presto_expr::{CompiledExpr, Expr};
use presto_page::hash::{combine_hashes, hash_cell, hash_columns_cached, DictionaryHashCache};
use presto_page::{Block, Page};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::dynfilter::{CollectedDomains, DomainCollector, DynamicFilterSource};
use crate::flathash::FlatHashTable;
use crate::operator::{BlockedReason, Operator};
use crate::spill::{SpillManager, SpillRun};

/// Pick the radix partition for a row hash. Partitions use the *high* bits;
/// the flat tables bucket by the low bits, so the two never alias.
#[inline]
fn partition_of(hash: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (hash >> (64 - bits)) as usize
    }
}

/// Grace-join recursion: sub-partition an oversized spilled partition by
/// the *next* radix bits of the same row hash (the parent consumed the top
/// `consumed_bits`).
#[inline]
fn sub_partition_of(hash: u64, consumed_bits: u32, bits: u32) -> usize {
    ((hash << consumed_bits) >> (64 - bits)) as usize
}

/// Sub-partitions per grace-join recursion level.
const GRACE_BITS: u32 = 3;
/// Maximum grace-join recursion depth. Beyond this the partition is built
/// in memory whatever its size (pathological single-key skew cannot be
/// split by hash anyway).
const GRACE_MAX_DEPTH: u32 = 4;
/// Default in-memory build size above which a spilled partition-pair is
/// recursively sub-partitioned rather than built directly.
const GRACE_PARTITION_LIMIT: usize = 64 << 20;

/// One radix partition of the completed build side: its row addresses plus
/// a flat hash table whose entry `i` describes `rows[i]`.
struct PartitionTable {
    rows: Vec<(u32, u32)>,
    table: FlatHashTable,
}

impl PartitionTable {
    fn build(input: PartitionInput) -> PartitionTable {
        let mut rows = Vec::with_capacity(input.len);
        let mut table = FlatHashTable::with_capacity(input.len);
        for (page, entries) in input.chunks {
            for (row, hash) in entries {
                table.insert(hash);
                rows.push((page, row));
            }
        }
        PartitionTable { rows, table }
    }

    /// Cross joins keep every build row with no hash table.
    fn cross(pages: &[Page]) -> PartitionTable {
        let mut rows = Vec::new();
        for (pi, page) in pages.iter().enumerate() {
            for ri in 0..page.row_count() {
                rows.push((pi as u32, ri as u32));
            }
        }
        PartitionTable {
            rows,
            table: FlatHashTable::new(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<(u32, u32)>() + self.table.memory_bytes()
    }
}

/// The completed build side of a hash join.
pub struct JoinHashTable {
    /// Build pages, fully loaded (shared with the finalize state).
    pages: Arc<Vec<Page>>,
    partitions: Vec<PartitionTable>,
    partition_bits: u32,
    key_channels: Vec<usize>,
    memory_bytes: usize,
    row_count: usize,
    /// Grace join: bit `p` set means partition `p` was spilled under memory
    /// revocation. Its in-memory [`PartitionTable`] is empty; its build rows
    /// live in `build_runs[p]`. ≤ 64 partitions by construction.
    spilled_mask: u64,
    /// Spilled build-side runs, readable by every probe operator
    /// (non-consuming reads; files removed when the table drops).
    build_runs: Vec<Option<Mutex<SpillRun>>>,
}

impl JoinHashTable {
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Did any build partition spill? Probes must run the grace path.
    pub fn has_spill(&self) -> bool {
        self.spilled_mask != 0
    }

    #[inline]
    fn is_spilled(&self, partition: usize) -> bool {
        (self.spilled_mask >> partition) & 1 == 1
    }

    /// Read back one spilled partition's build pages (checksummed decode;
    /// the run file stays for other probe operators).
    fn spilled_build_pages(&self, partition: usize) -> Result<Vec<Page>> {
        match self.build_runs.get(partition).and_then(|r| r.as_ref()) {
            Some(run) => run.lock().read_pages(),
            None => Ok(Vec::new()),
        }
    }

    /// Build an in-memory table over one restored grace partition (or
    /// recursion leaf). Single partition: the row hashes already agreed on
    /// the consumed radix bits, so further partitioning is pointless.
    fn for_grace_partition(pages: Vec<Page>, key_channels: Vec<usize>) -> JoinHashTable {
        let mut input = PartitionInput::default();
        let mut cache = DictionaryHashCache::new();
        for (pi, page) in pages.iter().enumerate() {
            let hashes = hash_columns_cached(page, &key_channels, &mut cache);
            let mut entries: Vec<(u32, u64)> = Vec::new();
            for (ri, &h) in hashes.iter().enumerate() {
                if key_channels.iter().any(|&c| page.block(c).is_null(ri)) {
                    continue;
                }
                entries.push((ri as u32, h));
            }
            input.len += entries.len();
            input.chunks.push((pi as u32, entries));
        }
        let part = PartitionTable::build(input);
        let page_bytes: usize = pages.iter().map(Page::size_in_bytes).sum();
        let layout_bytes = part.memory_bytes();
        let row_count = part.rows.len();
        JoinHashTable {
            pages: Arc::new(pages),
            partitions: vec![part],
            partition_bits: 0,
            key_channels,
            memory_bytes: page_bytes + layout_bytes,
            row_count,
            spilled_mask: 0,
            build_runs: Vec::new(),
        }
    }

    /// Exact retained bytes: page data plus every partition's row-address
    /// vector and flat-table arrays.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Bytes of hash-lookup structure (everything beyond the page data).
    pub fn hash_layout_bytes(&self) -> usize {
        self.partitions.iter().map(PartitionTable::memory_bytes).sum()
    }

    /// All build rows in partition order (cross joins, diagnostics).
    pub fn iter_rows(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.partitions.iter().flat_map(|p| p.rows.iter().copied())
    }

    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    pub fn page(&self, i: u32) -> &Page {
        &self.pages[i as usize]
    }

    /// The partition a hash routes to.
    #[inline]
    fn partition(&self, hash: u64) -> &PartitionTable {
        &self.partitions[partition_of(hash, self.partition_bits)]
    }

    /// Candidate build-row addresses for a probe hash; the caller must
    /// verify key equality (hash collisions).
    fn candidates(&self, hash: u64) -> impl Iterator<Item = (u32, u32)> + '_ {
        let p = self.partition(hash);
        p.table.probe(hash).map(move |e| p.rows[e as usize])
    }

    /// Compare the build keys at `addr` against `key_blocks[i]` at `row`
    /// (the probe page's key columns, or a dictionary block).
    fn keys_match(&self, addr: (u32, u32), key_blocks: &[&Block], row: usize) -> bool {
        let build_page = &self.pages[addr.0 as usize];
        self.key_channels
            .iter()
            .zip(key_blocks)
            .all(|(&bc, pb)| build_page.block(bc).eq_at(addr.1 as usize, pb, row))
    }
}

/// Pre-partitioned build input: per partition, a list of page chunks with
/// their (row, hash) entries. Appending a chunk is O(1), so builders only
/// ever hold the bridge lock for a vector move.
#[derive(Default)]
struct PartitionInput {
    chunks: Vec<(u32, Vec<(u32, u64)>)>,
    len: usize,
}

/// Work queue for the parallel finalize: partitions are claimed by index
/// and built entirely outside the bridge's state lock.
struct FinalizeState {
    pages: Arc<Vec<Page>>,
    key_channels: Vec<usize>,
    partition_bits: u32,
    inputs: Vec<Mutex<PartitionInput>>,
    built: Vec<Mutex<Option<PartitionTable>>>,
    next: AtomicUsize,
    remaining: AtomicUsize,
    built_bytes: AtomicUsize,
    /// Spilled-partition state carried through to the assembled table.
    spill: Mutex<Option<BuildSpill>>,
}

/// Grace-join spill state on the build side. Present only when the bridge
/// was armed with [`JoinBridge::enable_spill`] (keyed joins with spill on).
struct BuildSpill {
    manager: Arc<SpillManager>,
    /// Bit `p`: partition `p` has been revoked to disk.
    spilled_mask: u64,
    /// One run per spilled partition (`None` until that partition spills).
    runs: Vec<Option<SpillRun>>,
}

struct BuildState {
    pages: Vec<Page>,
    /// Accumulated input bytes (pages + partition entries).
    bytes: usize,
    /// Build drivers still running.
    pending_builders: usize,
    key_channels: Vec<usize>,
    partition_bits: u32,
    partitions: Vec<PartitionInput>,
    finalize: Option<Arc<FinalizeState>>,
    table: Option<Arc<JoinHashTable>>,
    /// Dynamic-filter publication config + merged builder contributions.
    df_source: Option<DynamicFilterSource>,
    df_collected: Option<CollectedDomains>,
    /// Grace-join spill state (None: spill not armed; build never spills).
    spill: Option<BuildSpill>,
}

/// One radix partition's compacted rows from a single input page: the
/// partition index, the compacted page, and its (row, hash) entries.
type PartitionedPage = (usize, Page, Vec<(u32, u64)>);

/// Shared hand-off between the build pipeline and probe drivers.
pub struct JoinBridge {
    state: Mutex<BuildState>,
    /// Distinct operators that built at least one partition during
    /// finalize (observability: > 1 means the build used > 1 thread).
    finalize_participants: AtomicUsize,
    /// Build-side bytes written to spill runs / spill operations, for
    /// operator counters (survives the BuildSpill → table hand-off).
    spill_written: AtomicU64,
    spill_events: AtomicU64,
}

impl JoinBridge {
    pub fn new(key_channels: Vec<usize>, builder_count: usize) -> Arc<JoinBridge> {
        // Cross joins (no keys) need no partitioning; keyed builds use a few
        // partitions per builder so work-stealing balances skew.
        let partition_count = if key_channels.is_empty() {
            1
        } else {
            (builder_count.max(1) * 4).next_power_of_two().clamp(8, 64)
        };
        let partition_bits = partition_count.trailing_zeros();
        Arc::new(JoinBridge {
            state: Mutex::new(BuildState {
                pages: Vec::new(),
                bytes: 0,
                pending_builders: builder_count.max(1),
                key_channels,
                partition_bits,
                partitions: (0..partition_count).map(|_| PartitionInput::default()).collect(),
                finalize: None,
                table: None,
                df_source: None,
                df_collected: None,
                spill: None,
            }),
            finalize_participants: AtomicUsize::new(0),
            spill_written: AtomicU64::new(0),
            spill_events: AtomicU64::new(0),
        })
    }

    /// Arm grace-join spill: under memory revocation the build side can
    /// move whole radix partitions to disk through `manager`. Cross joins
    /// (no keys) are ineligible — they keep the non-spilling path, so spill
    /// is never correctness-bearing there. Must be called before the
    /// builder operators are instantiated (they snapshot the config).
    pub fn enable_spill(&self, manager: Arc<SpillManager>) {
        let mut s = self.state.lock();
        if s.key_channels.is_empty() {
            return;
        }
        let count = s.partitions.len();
        s.spill = Some(BuildSpill {
            manager,
            spilled_mask: 0,
            runs: (0..count).map(|_| None).collect(),
        });
    }

    /// Is grace spill armed on this bridge?
    fn spill_armed(&self) -> bool {
        self.state.lock().spill.is_some()
    }

    /// Build bytes that a revocation could free right now (0 once the
    /// finalize has started — partitions are being consumed then).
    fn revocable_build_bytes(&self) -> usize {
        let s = self.state.lock();
        if s.spill.is_some() && s.finalize.is_none() && s.table.is_none() {
            s.bytes
        } else {
            0
        }
    }

    /// Spilled bytes / events so far (operator counters; one builder
    /// reports them, mirroring `build_bytes`).
    fn spill_counters(&self) -> (u64, u64) {
        (
            self.spill_written.load(Ordering::Relaxed),
            self.spill_events.load(Ordering::Relaxed),
        )
    }

    /// The finished hash table, once all builders are done and every
    /// partition is built.
    pub fn table(&self) -> Option<Arc<JoinHashTable>> {
        self.state.lock().table.clone()
    }

    /// Key channels and radix width, fixed at creation (builders partition
    /// their input against these without taking the lock per row).
    fn partitioning(&self) -> (Vec<usize>, u32) {
        let s = self.state.lock();
        (s.key_channels.clone(), s.partition_bits)
    }

    /// Arm build-side dynamic-filter collection. Must be called before the
    /// builder operators are instantiated (they snapshot the config).
    pub fn enable_dynamic_filter(&self, source: DynamicFilterSource) {
        self.state.lock().df_source = Some(source);
    }

    /// A fresh per-builder collector when dynamic filtering is armed.
    fn df_collector(&self) -> Option<DomainCollector> {
        let s = self.state.lock();
        s.df_source.as_ref().map(|src| {
            DomainCollector::new(
                s.key_channels.clone(),
                src.key_types.clone(),
                src.max_values,
            )
        })
    }

    pub fn build_bytes(&self) -> usize {
        let s = self.state.lock();
        if let Some(t) = &s.table {
            return t.memory_bytes();
        }
        let finalize_bytes = s
            .finalize
            .as_ref()
            .map_or(0, |f| f.built_bytes.load(Ordering::Relaxed));
        s.bytes + finalize_bytes
    }

    /// Number of distinct operators that built ≥ 1 partition.
    pub fn finalize_participants(&self) -> usize {
        self.finalize_participants.load(Ordering::Relaxed)
    }

    fn note_finalize_participant(&self) {
        self.finalize_participants.fetch_add(1, Ordering::Relaxed);
    }

    /// Accept one pre-hashed, pre-partitioned page. Only vector moves
    /// happen under the lock.
    fn add_page(&self, page: Page, parts: Vec<Vec<(u32, u64)>>) {
        let entry_size = std::mem::size_of::<(u32, u64)>();
        let mut s = self.state.lock();
        s.bytes += page.size_in_bytes();
        let pi = s.pages.len() as u32;
        s.pages.push(page);
        for (p, entries) in parts.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            s.bytes += entries.capacity() * entry_size;
            s.partitions[p].len += entries.len();
            s.partitions[p].chunks.push((pi, entries));
        }
    }

    /// Spill-mode ingest: each element is one partition's compacted rows
    /// from a single input page (so a later revocation can move the whole
    /// partition to disk page-by-page). Partitions already on disk are
    /// appended straight to their run; returns the bytes written that way.
    fn add_partitioned(&self, parts: Vec<PartitionedPage>) -> Result<u64> {
        let entry_size = std::mem::size_of::<(u32, u64)>();
        let mut s = self.state.lock();
        let mut direct = 0u64;
        for (p, page, entries) in parts {
            let spilled = s
                .spill
                .as_ref()
                .is_some_and(|sp| (sp.spilled_mask >> p) & 1 == 1);
            if spilled {
                let sp = s.spill.as_mut().expect("spilled implies armed");
                let manager = Arc::clone(&sp.manager);
                let run = sp.runs[p].get_or_insert_with(|| manager.create_run("join-build"));
                direct += run.append(&page)?;
            } else {
                s.bytes += page.size_in_bytes() + entries.capacity() * entry_size;
                let pi = s.pages.len() as u32;
                s.pages.push(page);
                s.partitions[p].len += entries.len();
                s.partitions[p].chunks.push((pi, entries));
            }
        }
        if direct > 0 {
            self.spill_written.fetch_add(direct, Ordering::Relaxed);
        }
        Ok(direct)
    }

    /// Memory revocation: spill the largest in-memory partitions until at
    /// least half the accumulated build bytes are freed. Returns the bytes
    /// freed in memory (0 when nothing is revocable — finalize started,
    /// table published, or everything already spilled).
    fn revoke_build_memory(&self) -> Result<u64> {
        let mut guard = self.state.lock();
        let s = &mut *guard;
        if s.finalize.is_some() || s.table.is_some() || s.spill.is_none() {
            return Ok(0);
        }
        let entry_size = std::mem::size_of::<(u32, u64)>();
        let spilled_mask = s.spill.as_ref().map_or(0, |sp| sp.spilled_mask);
        // Size up every still-resident partition, biggest first.
        let mut sizes: Vec<(usize, usize)> = s
            .partitions
            .iter()
            .enumerate()
            .filter(|&(p, part)| (spilled_mask >> p) & 1 == 0 && part.len > 0)
            .map(|(p, part)| {
                let bytes: usize = part
                    .chunks
                    .iter()
                    .map(|(pi, e)| {
                        s.pages[*pi as usize].size_in_bytes() + e.capacity() * entry_size
                    })
                    .sum();
                (p, bytes)
            })
            .collect();
        sizes.sort_unstable_by_key(|&(_, bytes)| std::cmp::Reverse(bytes));
        if sizes.is_empty() {
            return Ok(0);
        }
        let target = s.bytes / 2;
        let mut freed = 0usize;
        let mut written = 0u64;
        let mut events = 0u64;
        for (p, bytes) in sizes {
            let sp = s.spill.as_mut().expect("checked above");
            sp.spilled_mask |= 1 << p;
            let manager = Arc::clone(&sp.manager);
            let run = sp.runs[p].get_or_insert_with(|| manager.create_run("join-build"));
            let chunks = std::mem::take(&mut s.partitions[p].chunks);
            s.partitions[p].len = 0;
            for (pi, entries) in chunks {
                // Replace with an empty placeholder so u32 page indices of
                // other partitions stay valid while this page's memory goes.
                let page = std::mem::replace(&mut s.pages[pi as usize], Page::zero_column(0));
                written += run.append(&page)?;
                drop(entries);
            }
            freed += bytes;
            events += 1;
            if freed >= target {
                break;
            }
        }
        s.bytes -= freed.min(s.bytes);
        drop(guard);
        self.spill_written.fetch_add(written, Ordering::Relaxed);
        self.spill_events.fetch_add(events, Ordering::Relaxed);
        Ok(freed as u64)
    }

    /// A builder is done, optionally handing in its dynamic-filter
    /// contribution. The last one moves the accumulated input into the
    /// finalize work queue — it does NOT build under the lock; partitions
    /// are built by [`JoinBridge::claim_and_build_one`] callers. It also
    /// publishes the merged dynamic-filter domains *before* the partition
    /// build starts, so probe scans begin pruning while the hash table is
    /// still being laid out.
    fn builder_finished_with(&self, df: Option<DomainCollector>) {
        let mut s = self.state.lock();
        if let Some(collector) = df {
            let collected = collector.finish();
            s.df_collected = Some(match s.df_collected.take() {
                Some(prev) => prev.merge(collected),
                None => collected,
            });
        }
        s.pending_builders -= 1;
        if s.pending_builders > 0 || s.table.is_some() || s.finalize.is_some() {
            return;
        }
        let publish = s.df_source.take().map(|src| {
            let collected = match s.df_collected.take() {
                Some(c) => c,
                None => CollectedDomains::empty(s.key_channels.len(), src.max_values),
            };
            (src, collected)
        });
        let pages = Arc::new(std::mem::take(&mut s.pages));
        let partitions = std::mem::take(&mut s.partitions);
        let spill = s.spill.take();
        let count = partitions.len();
        s.finalize = Some(Arc::new(FinalizeState {
            pages,
            key_channels: s.key_channels.clone(),
            partition_bits: s.partition_bits,
            inputs: partitions.into_iter().map(Mutex::new).collect(),
            built: (0..count).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(count),
            built_bytes: AtomicUsize::new(0),
            spill: Mutex::new(spill),
        }));
        drop(s);
        if let Some((src, collected)) = publish {
            src.registry.report(src.join, collected);
        }
    }

    /// Claim and build one pending partition, off the bridge lock. Returns
    /// false when there is nothing (left) to claim. The builder of the last
    /// partition assembles and publishes the [`JoinHashTable`].
    pub fn claim_and_build_one(&self) -> bool {
        let finalize = self.state.lock().finalize.clone();
        let Some(fin) = finalize else { return false };
        let idx = fin.next.fetch_add(1, Ordering::Relaxed);
        if idx >= fin.inputs.len() {
            return false;
        }
        let input = std::mem::take(&mut *fin.inputs[idx].lock());
        let part = if fin.key_channels.is_empty() {
            PartitionTable::cross(&fin.pages)
        } else {
            PartitionTable::build(input)
        };
        fin.built_bytes.fetch_add(part.memory_bytes(), Ordering::Relaxed);
        *fin.built[idx].lock() = Some(part);
        if fin.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.assemble(&fin);
        }
        true
    }

    fn assemble(&self, fin: &FinalizeState) {
        let partitions: Vec<PartitionTable> = fin
            .built
            .iter()
            .map(|slot| slot.lock().take().expect("all partitions built"))
            .collect();
        let page_bytes: usize = fin.pages.iter().map(Page::size_in_bytes).sum();
        let layout_bytes: usize = partitions.iter().map(PartitionTable::memory_bytes).sum();
        let row_count = partitions.iter().map(|p| p.rows.len()).sum();
        let (spilled_mask, build_runs) = match fin.spill.lock().take() {
            Some(sp) => (
                sp.spilled_mask,
                sp.runs.into_iter().map(|r| r.map(Mutex::new)).collect(),
            ),
            None => (0, Vec::new()),
        };
        let table = Arc::new(JoinHashTable {
            pages: Arc::clone(&fin.pages),
            partitions,
            partition_bits: fin.partition_bits,
            key_channels: fin.key_channels.clone(),
            memory_bytes: page_bytes + layout_bytes,
            row_count,
            spilled_mask,
            build_runs,
        });
        let mut s = self.state.lock();
        s.bytes = 0;
        s.finalize = None;
        s.table = Some(table);
    }
}

/// Build-side sink operator: radix-partitions pages into the bridge and
/// participates in the parallel partition build once its input is done.
pub struct HashBuilderOperator {
    bridge: Arc<JoinBridge>,
    key_channels: Vec<usize>,
    partition_bits: u32,
    hash_cache: DictionaryHashCache,
    /// Per-builder dynamic-filter collector, filled off the bridge lock.
    df_collector: Option<DomainCollector>,
    /// Snapshot of [`JoinBridge::spill_armed`]: input is compacted per
    /// partition so a revocation can move whole partitions to disk.
    spill_mode: bool,
    finished: bool,
    partitions_built: u64,
    counted_as_participant: bool,
}

impl HashBuilderOperator {
    pub fn new(bridge: Arc<JoinBridge>) -> HashBuilderOperator {
        let (key_channels, partition_bits) = bridge.partitioning();
        let df_collector = bridge.df_collector();
        let spill_mode = bridge.spill_armed();
        HashBuilderOperator {
            bridge,
            key_channels,
            partition_bits,
            hash_cache: DictionaryHashCache::new(),
            df_collector,
            spill_mode,
            finished: false,
            partitions_built: 0,
            counted_as_participant: false,
        }
    }

    /// Partitions this operator built during finalize (observability).
    pub fn partitions_built(&self) -> u64 {
        self.partitions_built
    }

    fn drain_finalize(&mut self) {
        let mut built = 0;
        while self.bridge.claim_and_build_one() {
            built += 1;
        }
        if built > 0 {
            self.partitions_built += built;
            if !self.counted_as_participant {
                self.counted_as_participant = true;
                self.bridge.note_finalize_participant();
            }
        }
    }
}

impl Operator for HashBuilderOperator {
    fn name(&self) -> &'static str {
        "HashBuilder"
    }

    fn needs_input(&self) -> bool {
        !self.finished
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        let page = page.load_all();
        if self.key_channels.is_empty() {
            self.bridge.add_page(page, Vec::new());
            return Ok(());
        }
        // Hash + partition off the bridge lock; the hash pass is
        // dictionary/RLE-aware and the cache persists across pages.
        let hashes = hash_columns_cached(&page, &self.key_channels, &mut self.hash_cache);
        let part_count = 1usize << self.partition_bits;
        if self.spill_mode {
            // Grace mode: compact each partition's rows into their own
            // sub-page so the bridge can later spill a partition without
            // touching the others. The dynamic filter still sees every
            // build row *before* any spill decision, so DF publication is
            // unaffected by memory pressure. NULL-key rows are dropped
            // outright (never match, and build rows are never padded).
            let mut rows: Vec<Vec<u32>> = vec![Vec::new(); part_count];
            let mut row_hashes: Vec<Vec<u64>> = vec![Vec::new(); part_count];
            for (ri, &h) in hashes.iter().enumerate() {
                if self.key_channels.iter().any(|&c| page.block(c).is_null(ri)) {
                    continue;
                }
                if let Some(collector) = &mut self.df_collector {
                    collector.add_row(&page, ri, h);
                }
                let p = partition_of(h, self.partition_bits);
                rows[p].push(ri as u32);
                row_hashes[p].push(h);
            }
            let mut parts: Vec<PartitionedPage> = Vec::new();
            for p in 0..part_count {
                if rows[p].is_empty() {
                    continue;
                }
                let sub = page.filter(&rows[p]);
                let entries: Vec<(u32, u64)> = row_hashes[p]
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| (i as u32, h))
                    .collect();
                parts.push((p, sub, entries));
            }
            self.bridge.add_partitioned(parts)?;
            return Ok(());
        }
        let mut parts: Vec<Vec<(u32, u64)>> = (0..part_count).map(|_| Vec::new()).collect();
        for (ri, &h) in hashes.iter().enumerate() {
            // NULL keys never join (SQL equality).
            if self.key_channels.iter().any(|&c| page.block(c).is_null(ri)) {
                continue;
            }
            if let Some(collector) = &mut self.df_collector {
                collector.add_row(&page, ri, h);
            }
            parts[partition_of(h, self.partition_bits)].push((ri as u32, h));
        }
        self.bridge.add_page(page, parts);
        Ok(())
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.bridge.builder_finished_with(self.df_collector.take());
            self.drain_finalize();
        }
    }

    fn output(&mut self) -> Result<Option<Page>> {
        // Finished builders keep helping with the partition build until the
        // table is published (parallel finalize).
        if self.finished && self.bridge.table().is_none() {
            self.drain_finalize();
        }
        Ok(None)
    }

    fn is_finished(&self) -> bool {
        self.finished && self.bridge.table().is_some()
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if self.finished && self.bridge.table().is_none() {
            Some(BlockedReason::WaitingForBuild)
        } else {
            None
        }
    }

    fn user_memory_bytes(&self) -> usize {
        // Charged once by the (single) build pipeline driver.
        self.bridge.build_bytes()
    }

    fn can_revoke_memory(&self) -> bool {
        self.spill_mode && self.bridge.revocable_build_bytes() > 0
    }

    fn revoke_memory(&mut self) -> Result<u64> {
        self.bridge.revoke_build_memory()
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let (spilled_bytes, spill_events) = self.bridge.spill_counters();
        vec![
            ("spilled_bytes", spilled_bytes),
            ("spill_events", spill_events),
        ]
    }
}

/// Entry → build-row matches memo for dictionary-keyed probes, retained
/// while consecutive pages share one dictionary (§V-E). Matches live in one
/// contiguous arena addressed by per-entry `(start, len)` slots, so a cache
/// hit costs one array read — no per-row allocation or refcount traffic.
struct DictProbeCache {
    dict_id: u64,
    /// Entry → (start, len) into `matches`; `len == UNRESOLVED` means the
    /// entry has not been probed yet.
    slots: Vec<(u32, u32)>,
    matches: Vec<(u32, u32)>,
}

impl DictProbeCache {
    const UNRESOLVED: u32 = u32::MAX;

    fn new(dict_id: u64, entries: usize) -> DictProbeCache {
        DictProbeCache {
            dict_id,
            slots: vec![(0, Self::UNRESOLVED); entries],
            matches: Vec::new(),
        }
    }
}


/// Join semantics the probe operator implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeJoinType {
    Inner,
    Left,
    Cross,
}

/// Probe-side grace-join state: rows whose partition spilled on the build
/// side are diverted to per-partition disk runs; after input ends each
/// (build run, probe run) pair is restored and joined, recursing on the
/// next radix bits when a pair's build side is still too large.
struct GraceProbe {
    spill: Arc<SpillManager>,
    /// Build-side key channels (for hashing restored build pages).
    build_keys: Vec<usize>,
    /// Partition → this operator's diverted probe rows.
    probe_runs: HashMap<usize, SpillRun>,
    /// Spilled partitions left to join once input is done.
    pair_queue: Vec<usize>,
    pairs_started: bool,
    outputs: VecDeque<Page>,
    /// Build bytes above which a restored pair is sub-partitioned.
    partition_limit: usize,
    spilled_bytes: u64,
    spill_events: u64,
}

/// Probe-side operator: streams probe pages against the hash table.
///
/// Probing is batched per page: one vectorized hash pass, one pass
/// collecting (probe index, build address) match vectors, then block-level
/// gathers materialize both sides at once. A dictionary-keyed page probes
/// each distinct entry once (the entry → matches array is retained while
/// pages share a dictionary); an RLE key probes once per page.
pub struct LookupJoinOperator {
    bridge: Arc<JoinBridge>,
    join_type: ProbeJoinType,
    probe_keys: Vec<usize>,
    probe_schema: Schema,
    build_schema: Schema,
    build_types: Vec<DataType>,
    /// Residual non-equi condition over the concatenated output schema.
    filter: Option<CompiledExpr>,
    pending: Option<Page>,
    input_done: bool,
    rows_out: u64,
    hash_cache: DictionaryHashCache,
    /// Entry → build matches memo, retained across pages (§V-E).
    dict_probe: Option<DictProbeCache>,
    dict_probe_hits: u64,
    rle_probe_rows: u64,
    /// Grace-join probe state; present iff the bridge armed spill.
    grace: Option<GraceProbe>,
}

impl LookupJoinOperator {
    pub fn new(
        bridge: Arc<JoinBridge>,
        join_type: ProbeJoinType,
        probe_keys: Vec<usize>,
        probe_schema: Schema,
        build_schema: Schema,
        filter: Option<&Expr>,
    ) -> LookupJoinOperator {
        let build_types = build_schema.fields().iter().map(|f| f.data_type).collect();
        LookupJoinOperator {
            bridge,
            join_type,
            probe_keys,
            probe_schema,
            build_schema,
            build_types,
            filter: filter.map(CompiledExpr::compile),
            pending: None,
            input_done: false,
            rows_out: 0,
            hash_cache: DictionaryHashCache::new(),
            dict_probe: None,
            dict_probe_hits: 0,
            rle_probe_rows: 0,
            grace: None,
        }
    }

    /// Arm the grace-probe path (must match the bridge's
    /// [`JoinBridge::enable_spill`]; each probe operator diverts its own
    /// probe rows through `spill`).
    pub fn with_spill(mut self, spill: Arc<SpillManager>) -> LookupJoinOperator {
        let (build_keys, _) = self.bridge.partitioning();
        self.grace = Some(GraceProbe {
            spill,
            build_keys,
            probe_runs: HashMap::new(),
            pair_queue: Vec::new(),
            pairs_started: false,
            outputs: VecDeque::new(),
            partition_limit: GRACE_PARTITION_LIMIT,
            spilled_bytes: 0,
            spill_events: 0,
        });
        self
    }

    /// Override the recursion threshold (tests force tiny pairs).
    pub fn with_grace_partition_limit(mut self, bytes: usize) -> LookupJoinOperator {
        if let Some(g) = &mut self.grace {
            g.partition_limit = bytes;
        }
        self
    }

    /// Probe rows resolved through the per-dictionary-entry match cache.
    pub fn dict_probe_hits(&self) -> u64 {
        self.dict_probe_hits
    }

    /// Probe rows resolved through the RLE one-probe-per-page fast path.
    pub fn rle_probe_rows(&self) -> u64 {
        self.rle_probe_rows
    }

    /// Collect matches for a keyed probe page into index vectors.
    fn probe_keyed(
        &mut self,
        table: &JoinHashTable,
        probe: &Page,
        probe_idx: &mut Vec<u32>,
        build_addrs: &mut Vec<(u32, u32)>,
        match_counts: &mut [u32],
    ) {
        if let [channel] = self.probe_keys[..] {
            match probe.block(channel).loaded() {
                Block::Rle(rle) => {
                    // One probe for the whole page.
                    let value = Arc::clone(&rle.value);
                    self.rle_probe_rows += probe.row_count() as u64;
                    if value.is_null(0) {
                        return;
                    }
                    let hash = combine_hashes(0, hash_cell(&value, 0));
                    let matches: Vec<(u32, u32)> = table
                        .candidates(hash)
                        .filter(|&addr| table.keys_match(addr, &[&value], 0))
                        .collect();
                    if matches.is_empty() {
                        return;
                    }
                    for (row, count) in match_counts.iter_mut().enumerate() {
                        for &addr in &matches {
                            probe_idx.push(row as u32);
                            build_addrs.push(addr);
                        }
                        *count += matches.len() as u32;
                    }
                    return;
                }
                Block::Dictionary(d) => {
                    // One probe per distinct dictionary entry; the entry →
                    // matches arena survives across pages sharing the
                    // dictionary. Entries new to the memo are resolved with
                    // the same batched breadth-first walk as the general
                    // path, then every row expands via one slot read.
                    let dictionary = Arc::clone(&d.dictionary);
                    let dict_id = d.dictionary_id;
                    let ids = d.ids.clone();
                    let valid = matches!(&self.dict_probe, Some(c) if c.dict_id == dict_id);
                    if !valid {
                        self.dict_probe = Some(DictProbeCache::new(dict_id, dictionary.len()));
                    }
                    let Some(cache) = &mut self.dict_probe else {
                        unreachable!("dict_probe set above")
                    };
                    const EMPTY: u32 = FlatHashTable::EMPTY;
                    const PENDING: u32 = u32::MAX - 1;
                    let mut to_resolve: Vec<u32> = Vec::new();
                    for &entry in &ids {
                        if dictionary.is_null(entry as usize) {
                            continue;
                        }
                        if cache.slots[entry as usize].1 == DictProbeCache::UNRESOLVED {
                            cache.slots[entry as usize] = (0, PENDING);
                            to_resolve.push(entry);
                        }
                    }
                    if !to_resolve.is_empty() {
                        let entry_hashes: Vec<u64> = to_resolve
                            .iter()
                            .map(|&e| combine_hashes(0, hash_cell(&dictionary, e as usize)))
                            .collect();
                        let mut cursors: Vec<(u32, u32)> =
                            Vec::with_capacity(to_resolve.len());
                        for (i, &hash) in entry_hashes.iter().enumerate() {
                            let head = table.partition(hash).table.head(hash);
                            if head != EMPTY {
                                cursors.push((i as u32, head));
                            }
                        }
                        let mut pairs: Vec<(u32, (u32, u32))> = Vec::new();
                        let mut next_round: Vec<(u32, u32)> =
                            Vec::with_capacity(cursors.len() / 4 + 1);
                        while !cursors.is_empty() {
                            next_round.clear();
                            for &(i, e) in &cursors {
                                let hash = entry_hashes[i as usize];
                                let part = table.partition(hash);
                                let (stored, next) = part.table.entry_at(e);
                                if stored == hash {
                                    pairs.push((i, part.rows[e as usize]));
                                }
                                if next != EMPTY {
                                    next_round.push((i, next));
                                }
                            }
                            std::mem::swap(&mut cursors, &mut next_round);
                        }
                        pairs.retain(|&(i, addr)| {
                            table.keys_match(addr, &[&dictionary], to_resolve[i as usize] as usize)
                        });
                        // Group each entry's matches contiguously in the arena.
                        pairs.sort_unstable_by_key(|&(i, _)| i);
                        let mut pos = 0;
                        for (i, &entry) in to_resolve.iter().enumerate() {
                            let start = cache.matches.len() as u32;
                            while pos < pairs.len() && pairs[pos].0 == i as u32 {
                                cache.matches.push(pairs[pos].1);
                                pos += 1;
                            }
                            cache.slots[entry as usize] =
                                (start, cache.matches.len() as u32 - start);
                        }
                    }
                    // Expansion: one slot read per row.
                    let mut nonnull_rows = 0u64;
                    for (row, &entry) in ids.iter().enumerate() {
                        if dictionary.is_null(entry as usize) {
                            continue;
                        }
                        nonnull_rows += 1;
                        let (start, len) = cache.slots[entry as usize];
                        for i in start..start + len {
                            probe_idx.push(row as u32);
                            build_addrs.push(cache.matches[i as usize]);
                        }
                        match_counts[row] += len;
                    }
                    // A "hit" is a row served by an already-resolved entry,
                    // exactly as when rows resolved one at a time.
                    self.dict_probe_hits += nonnull_rows - to_resolve.len() as u64;
                    return;
                }
                _ => {}
            }
        }
        // General path: one vectorized hash pass, then a batched
        // breadth-first chain walk. Each stage issues one independent memory
        // access per row, so the cache misses of different rows overlap
        // instead of chaining serially (head → entry → row → page data).
        let hashes = hash_columns_cached(probe, &self.probe_keys, &mut self.hash_cache);
        let key_blocks: Vec<&Block> = self.probe_keys.iter().map(|&c| probe.block(c)).collect();
        const EMPTY: u32 = FlatHashTable::EMPTY;
        // Stage 1: bucket heads.
        let mut cursors: Vec<(u32, u32)> = Vec::with_capacity(hashes.len());
        for (row, &hash) in hashes.iter().enumerate() {
            if key_blocks.iter().any(|b| b.is_null(row)) {
                continue;
            }
            let head = table.partition(hash).table.head(hash);
            if head != EMPTY {
                cursors.push((row as u32, head));
            }
        }
        // Stage 2: walk all live chains one step per round, collecting
        // hash-equal entries as (probe row, build addr) candidates.
        let mut candidates: Vec<(u32, (u32, u32))> = Vec::new();
        let mut next_round: Vec<(u32, u32)> = Vec::with_capacity(cursors.len() / 4 + 1);
        while !cursors.is_empty() {
            next_round.clear();
            for &(row, e) in &cursors {
                let hash = hashes[row as usize];
                let part = table.partition(hash);
                let (stored, next) = part.table.entry_at(e);
                if stored == hash {
                    candidates.push((row, part.rows[e as usize]));
                }
                if next != EMPTY {
                    next_round.push((row, next));
                }
            }
            std::mem::swap(&mut cursors, &mut next_round);
        }
        // Stage 3: verify keys and emit matches.
        for &(row, addr) in &candidates {
            if table.keys_match(addr, &key_blocks, row as usize) {
                probe_idx.push(row);
                build_addrs.push(addr);
                match_counts[row as usize] += 1;
            }
        }
    }

    fn join_page(&mut self, table: &JoinHashTable, probe: &Page) -> Result<Page> {
        let probe_rows = probe.row_count();
        let probe_width = self.probe_schema.len();
        let build_width = self.build_schema.len();
        // Match vectors: probe row index and build address per output row.
        let mut probe_idx: Vec<u32> = Vec::new();
        let mut build_addrs: Vec<(u32, u32)> = Vec::new();
        // For LEFT joins: how many matches each probe row found.
        let mut match_counts = vec![0u32; probe_rows];
        match self.join_type {
            ProbeJoinType::Cross => {
                for row in 0..probe_rows as u32 {
                    for addr in table.iter_rows() {
                        probe_idx.push(row);
                        build_addrs.push(addr);
                        match_counts[row as usize] += 1;
                    }
                }
            }
            _ => self.probe_keyed(table, probe, &mut probe_idx, &mut build_addrs, &mut match_counts),
        }
        // Materialize both sides with block-level gathers: the probe gather
        // preserves dictionary/RLE structure, the build gather fills each
        // output block in one column-major pass.
        let probe_side = probe.filter(&probe_idx);
        let build_side = Page::gather_rows(table.pages(), &build_addrs, &self.build_types);
        let mut combined = if build_width == 0 {
            probe_side
        } else if probe_width == 0 {
            build_side
        } else {
            probe_side.append_columns(&build_side)
        };
        // Residual filter.
        let mut surviving_probe_matches = match_counts;
        if let Some(filter) = &self.filter {
            let selection = filter.eval_selection(&combined)?;
            if selection.len() != combined.row_count() {
                // Recompute per-probe match counts for LEFT semantics.
                if self.join_type == ProbeJoinType::Left {
                    surviving_probe_matches = vec![0; probe_rows];
                    for &s in &selection {
                        surviving_probe_matches[probe_idx[s as usize] as usize] += 1;
                    }
                }
                combined = combined.filter(&selection);
            }
        }
        // LEFT join: append null-padded rows for unmatched probe rows.
        if self.join_type == ProbeJoinType::Left {
            let unmatched: Vec<u32> = (0..probe_rows as u32)
                .filter(|&r| surviving_probe_matches[r as usize] == 0)
                .collect();
            if !unmatched.is_empty() {
                let mut blocks = probe.filter(&unmatched).into_blocks();
                for f in self.build_schema.fields() {
                    // Null build columns as RLE runs: no per-row appends.
                    blocks.push(Block::rle(
                        Block::single(f.data_type, &Value::Null),
                        unmatched.len(),
                    ));
                }
                let nulls = if blocks.is_empty() {
                    Page::zero_column(unmatched.len())
                } else {
                    Page::new(blocks)
                };
                combined = Page::concat(&[combined, nulls]);
            }
        }
        Ok(combined)
    }

    /// Grace-mode ingest: divert rows whose partition spilled on the build
    /// side to per-partition probe runs, join the rest against the resident
    /// partitions as usual. Each row goes to exactly one side, so LEFT-join
    /// padding happens exactly once per unmatched row.
    fn add_input_grace(&mut self, table: &JoinHashTable, page: Page) -> Result<()> {
        let page = page.load_all();
        let hashes = hash_columns_cached(&page, &self.probe_keys, &mut self.hash_cache);
        let mut resident: Vec<u32> = Vec::with_capacity(hashes.len());
        let mut diverted: HashMap<usize, Vec<u32>> = HashMap::new();
        for (ri, &h) in hashes.iter().enumerate() {
            // NULL keys hash arbitrarily but never match; keep them
            // resident so LEFT padding happens in the streaming phase.
            if self.probe_keys.iter().any(|&c| page.block(c).is_null(ri)) {
                resident.push(ri as u32);
                continue;
            }
            let p = partition_of(h, table.partition_bits);
            if table.is_spilled(p) {
                diverted.entry(p).or_default().push(ri as u32);
            } else {
                resident.push(ri as u32);
            }
        }
        for (p, rows) in diverted {
            let sub = page.filter(&rows);
            let grace = self.grace.as_mut().expect("grace armed (caller checked)");
            let manager = Arc::clone(&grace.spill);
            let run = grace
                .probe_runs
                .entry(p)
                .or_insert_with(|| manager.create_run("join-probe"));
            grace.spilled_bytes += run.append(&sub)?;
            grace.spill_events += 1;
        }
        // Undisturbed pages keep their dictionary/RLE probe fast paths.
        let out = if resident.len() == page.row_count() {
            self.join_page(table, &page)?
        } else if resident.is_empty() {
            return Ok(());
        } else {
            let filtered = page.filter(&resident);
            self.join_page(table, &filtered)?
        };
        if out.row_count() > 0 {
            self.rows_out += out.row_count() as u64;
            self.pending = Some(out);
        }
        Ok(())
    }

    /// Join one spilled (build, probe) partition pair from disk.
    fn process_pair(&mut self, table: &JoinHashTable, partition: usize) -> Result<()> {
        let run = match self.grace.as_mut().and_then(|g| g.probe_runs.remove(&partition)) {
            Some(run) => run,
            // No probe rows ever hit this partition: nothing to join (the
            // build run is cleaned up when the table drops).
            None => return Ok(()),
        };
        let probe_pages = run.into_pages()?;
        let build_pages = table.spilled_build_pages(partition)?;
        self.join_grace_pair(build_pages, probe_pages, table.partition_bits, 0)
    }

    /// Join restored pages, sub-partitioning by the next radix bits while
    /// the build side exceeds the grace partition limit.
    fn join_grace_pair(
        &mut self,
        build: Vec<Page>,
        probe: Vec<Page>,
        consumed_bits: u32,
        depth: u32,
    ) -> Result<()> {
        if probe.iter().map(Page::row_count).sum::<usize>() == 0 {
            return Ok(());
        }
        let grace = self.grace.as_ref().expect("grace armed (caller checked)");
        let limit = grace.partition_limit;
        let build_keys = grace.build_keys.clone();
        let build_bytes: usize = build.iter().map(Page::size_in_bytes).sum();
        if build_bytes > limit
            && depth < GRACE_MAX_DEPTH
            && consumed_bits + GRACE_BITS < 64
        {
            let sub_build = split_by_hash(&build, &build_keys, consumed_bits, GRACE_BITS);
            let sub_probe = split_by_hash(&probe, &self.probe_keys, consumed_bits, GRACE_BITS);
            drop(build);
            drop(probe);
            for (b, p) in sub_build.into_iter().zip(sub_probe) {
                self.join_grace_pair(b, p, consumed_bits + GRACE_BITS, depth + 1)?;
            }
            return Ok(());
        }
        // Leaf: build an in-memory table over this pair and stream the
        // probe pages through the normal (LEFT-aware) join path.
        let sub_table = JoinHashTable::for_grace_partition(build, build_keys);
        // The dictionary-probe memo is table-specific; never reuse entries
        // resolved against a different table.
        self.dict_probe = None;
        for page in probe {
            if page.row_count() == 0 {
                continue;
            }
            let out = self.join_page(&sub_table, &page)?;
            if out.row_count() > 0 {
                self.rows_out += out.row_count() as u64;
                let grace = self.grace.as_mut().expect("grace armed");
                grace.outputs.push_back(out);
            }
        }
        self.dict_probe = None;
        Ok(())
    }
}

/// Split pages by the next `bits` radix bits of their key hash (the parent
/// level already consumed the top `consumed_bits`).
fn split_by_hash(
    pages: &[Page],
    keys: &[usize],
    consumed_bits: u32,
    bits: u32,
) -> Vec<Vec<Page>> {
    let parts = 1usize << bits;
    let mut out: Vec<Vec<Page>> = (0..parts).map(|_| Vec::new()).collect();
    let mut cache = DictionaryHashCache::new();
    for page in pages {
        let hashes = hash_columns_cached(page, keys, &mut cache);
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (ri, &h) in hashes.iter().enumerate() {
            rows[sub_partition_of(h, consumed_bits, bits)].push(ri as u32);
        }
        for (s, r) in rows.into_iter().enumerate() {
            if !r.is_empty() {
                out[s].push(page.filter(&r));
            }
        }
    }
    out
}

impl Operator for LookupJoinOperator {
    fn name(&self) -> &'static str {
        "LookupJoin"
    }

    fn needs_input(&self) -> bool {
        !self.input_done && self.pending.is_none() && self.bridge.table().is_some()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        let table = self
            .bridge
            .table()
            .ok_or_else(|| PrestoError::internal("probe before build finished"))?;
        if table.has_spill() {
            if self.grace.is_none() {
                return Err(PrestoError::internal(
                    "build side spilled but probe has no spill manager",
                ));
            }
            return self.add_input_grace(&table, page);
        }
        let out = self.join_page(&table, &page)?;
        if out.row_count() > 0 {
            self.rows_out += out.row_count() as u64;
            self.pending = Some(out);
        }
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if let Some(p) = self.pending.take() {
            return Ok(Some(p));
        }
        if !self.input_done {
            return Ok(None);
        }
        // Grace pair phase: once streaming input is done, join the spilled
        // (build, probe) partition pairs, one partition per pass.
        let Some(grace) = &mut self.grace else {
            return Ok(None);
        };
        if let Some(p) = grace.outputs.pop_front() {
            return Ok(Some(p));
        }
        if !grace.pairs_started {
            grace.pairs_started = true;
            let mut queue: Vec<usize> = grace.probe_runs.keys().copied().collect();
            queue.sort_unstable();
            // Popped back-to-front; sort descending so low partitions go
            // first (determinism only — any order is correct).
            queue.reverse();
            grace.pair_queue = queue;
        }
        loop {
            let next = match self.grace.as_mut().expect("grace set above").pair_queue.pop() {
                Some(p) => p,
                None => return Ok(None),
            };
            let table = self
                .bridge
                .table()
                .ok_or_else(|| PrestoError::internal("pair phase before build finished"))?;
            self.process_pair(&table, next)?;
            let grace = self.grace.as_mut().expect("grace set above");
            if let Some(p) = grace.outputs.pop_front() {
                return Ok(Some(p));
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.input_done
            && self.pending.is_none()
            && self.grace.as_ref().is_none_or(|g| {
                g.outputs.is_empty()
                    && g.pair_queue.is_empty()
                    && (g.pairs_started || g.probe_runs.is_empty())
            })
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if self.bridge.table().is_none() {
            Some(BlockedReason::WaitingForBuild)
        } else {
            None
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let (spilled_bytes, spill_events) = self
            .grace
            .as_ref()
            .map_or((0, 0), |g| (g.spilled_bytes, g.spill_events));
        vec![
            ("dict_probe_hits", self.dict_probe_hits),
            ("rle_probe_rows", self.rle_probe_rows),
            ("spilled_bytes", spilled_bytes),
            ("spill_events", spill_events),
        ]
    }
}

/// Index-nested-loop join (§IV-B3-3): probe rows look up a connector index.
pub struct IndexJoinOperator {
    index: Box<dyn presto_connector::IndexSource>,
    probe_keys: Vec<usize>,
    key_types: Vec<DataType>,
    probe_schema: Schema,
    pending: Option<Page>,
    input_done: bool,
}

impl IndexJoinOperator {
    pub fn new(
        index: Box<dyn presto_connector::IndexSource>,
        probe_keys: Vec<usize>,
        key_types: Vec<DataType>,
        probe_schema: Schema,
    ) -> IndexJoinOperator {
        IndexJoinOperator {
            index,
            probe_keys,
            key_types,
            probe_schema,
            pending: None,
            input_done: false,
        }
    }
}

impl Operator for IndexJoinOperator {
    fn name(&self) -> &'static str {
        "IndexJoin"
    }

    fn needs_input(&self) -> bool {
        !self.input_done && self.pending.is_none()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        // Project the probe keys into the lookup page.
        let keys = page.project(&self.probe_keys);
        let _ = &self.key_types;
        let (matches, key_indices) = self.index.lookup(&keys)?;
        if matches.row_count() == 0 {
            return Ok(());
        }
        // Gather probe columns for each matched output row.
        let probe_side = page.filter(&key_indices);
        let combined = probe_side.append_columns(&matches);
        debug_assert_eq!(
            combined.column_count(),
            self.probe_schema.len() + matches.column_count()
        );
        self.pending = Some(combined);
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.pending.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.pending.is_none()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::Value;

    fn kv_page(rows: &[(i64, &str)]) -> Page {
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        Page::from_rows(
            &schema,
            &rows
                .iter()
                .map(|&(k, s)| vec![Value::Bigint(k), Value::varchar(s)])
                .collect::<Vec<_>>(),
        )
    }

    fn build_table(rows: &[(i64, &str)]) -> Arc<JoinBridge> {
        let bridge = JoinBridge::new(vec![0], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(rows)).unwrap();
        b.finish();
        bridge
    }

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)])
    }

    fn drain_rows(op: &mut LookupJoinOperator) -> Vec<(i64, String, i64, String)> {
        let mut out = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                out.push((
                    p.block(0).i64_at(i),
                    p.block(1).str_at(i).to_string(),
                    if p.block(2).is_null(i) {
                        -1
                    } else {
                        p.block(2).i64_at(i)
                    },
                    if p.block(3).is_null(i) {
                        "-".into()
                    } else {
                        p.block(3).str_at(i).to_string()
                    },
                ));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn inner_join_matches_keys() {
        let bridge = build_table(&[(1, "a"), (2, "b"), (2, "b2")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            None,
        );
        probe.add_input(kv_page(&[(2, "x"), (3, "y")])).unwrap();
        let rows = drain_rows(&mut probe);
        // key 2 matches both build rows; key 3 matches none.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.0 == 2 && r.2 == 2));
        probe.finish();
        assert!(probe.is_finished());
    }

    #[test]
    fn left_join_pads_unmatched() {
        let bridge = build_table(&[(1, "a")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Left,
            vec![0],
            schema(),
            schema(),
            None,
        );
        probe.add_input(kv_page(&[(1, "x"), (9, "z")])).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, "x".into(), 1, "a".into()));
        assert_eq!(rows[1], (9, "z".into(), -1, "-".into()));
    }

    #[test]
    fn null_keys_never_match_but_survive_left_join() {
        let bridge = build_table(&[(1, "a")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Left,
            vec![0],
            schema(),
            schema(),
            None,
        );
        let schema2 = schema();
        let p = Page::from_rows(
            &schema2,
            &[
                vec![Value::Null, Value::varchar("n")],
                vec![Value::Bigint(1), Value::varchar("m")],
            ],
        );
        probe.add_input(p).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 2);
        // NULL key row survives null-padded.
        assert!(rows.iter().any(|r| r.1 == "n" && r.2 == -1));
    }

    #[test]
    fn null_build_keys_never_match() {
        let bridge = JoinBridge::new(vec![0], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        let s = schema();
        b.add_input(Page::from_rows(
            &s,
            &[
                vec![Value::Null, Value::varchar("null-build")],
                vec![Value::Bigint(7), Value::varchar("seven")],
            ],
        ))
        .unwrap();
        b.finish();
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            None,
        );
        // A NULL probe key must not meet the NULL build key.
        let p = Page::from_rows(
            &s,
            &[
                vec![Value::Null, Value::varchar("null-probe")],
                vec![Value::Bigint(7), Value::varchar("x")],
            ],
        );
        probe.add_input(p).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].3, "seven");
    }

    #[test]
    fn residual_filter_applies_to_pairs() {
        let bridge = build_table(&[(1, "keep"), (1, "drop")]);
        // filter: build.s = 'keep' (channel 3 of the combined schema)
        let filter = Expr::cmp(
            presto_expr::CmpOp::Eq,
            Expr::column(3, DataType::Varchar),
            Expr::literal("keep"),
        );
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            Some(&filter),
        );
        probe.add_input(kv_page(&[(1, "x")])).unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].3, "keep");
    }

    #[test]
    fn probe_blocks_until_build_done() {
        let bridge = JoinBridge::new(vec![0], 1);
        let probe = LookupJoinOperator::new(
            Arc::clone(&bridge),
            ProbeJoinType::Inner,
            vec![0],
            schema(),
            schema(),
            None,
        );
        assert_eq!(probe.blocked(), Some(BlockedReason::WaitingForBuild));
        assert!(!probe.needs_input());
        let mut b = HashBuilderOperator::new(bridge);
        b.finish();
        assert!(probe.blocked().is_none());
        assert!(probe.needs_input());
    }

    #[test]
    fn cross_join_produces_product() {
        let bridge = JoinBridge::new(vec![], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(&[(10, "a"), (20, "b")])).unwrap();
        b.finish();
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Cross,
            vec![],
            schema(),
            schema(),
            None,
        );
        probe
            .add_input(kv_page(&[(1, "x"), (2, "y"), (3, "z")]))
            .unwrap();
        let rows = drain_rows(&mut probe);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn multiple_builders_merge() {
        let bridge = JoinBridge::new(vec![0], 2);
        let mut b1 = HashBuilderOperator::new(Arc::clone(&bridge));
        let mut b2 = HashBuilderOperator::new(Arc::clone(&bridge));
        b1.add_input(kv_page(&[(1, "a")])).unwrap();
        b2.add_input(kv_page(&[(2, "b")])).unwrap();
        b1.finish();
        assert!(bridge.table().is_none(), "waits for all builders");
        assert!(!b1.is_finished(), "builder waits for the table");
        assert_eq!(b1.blocked(), Some(BlockedReason::WaitingForBuild));
        b2.finish();
        assert_eq!(bridge.table().unwrap().row_count(), 2);
        assert!(b1.is_finished() && b2.is_finished());
    }

    #[test]
    fn finalize_runs_off_the_bridge_lock() {
        // builder_finished() must only queue work: the table appears only
        // after claim_and_build_one() calls, and table() polls in between
        // return instantly with None instead of blocking on a finalize
        // critical section.
        let bridge = JoinBridge::new(vec![0], 1);
        let rows: Vec<(i64, String)> = (0..100).map(|i| (i, format!("v{i}"))).collect();
        let borrowed: Vec<(i64, &str)> = rows.iter().map(|(k, s)| (*k, s.as_str())).collect();
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(&borrowed)).unwrap();
        // Go through the bridge directly so no operator drains the queue.
        bridge.builder_finished_with(None);
        assert!(bridge.table().is_none(), "nothing built under the lock");
        let mut built = 0;
        while bridge.claim_and_build_one() {
            built += 1;
            if bridge.table().is_none() {
                // Poll mid-finalize: must not deadlock or publish early.
                assert!(built < 64 + 1);
            }
        }
        assert!(built >= 8, "keyed builds use multiple partitions");
        assert_eq!(bridge.table().unwrap().row_count(), 100);
    }

    #[test]
    fn parallel_finalize_uses_multiple_threads() {
        // Two threads each claim at least one partition: the partition work
        // queue serves claimants concurrently (> 1 thread finalize).
        let bridge = JoinBridge::new(vec![0], 2);
        let rows: Vec<(i64, String)> = (0..256).map(|i| (i, format!("v{i}"))).collect();
        let borrowed: Vec<(i64, &str)> = rows.iter().map(|(k, s)| (*k, s.as_str())).collect();
        let mut b1 = HashBuilderOperator::new(Arc::clone(&bridge));
        let mut b2 = HashBuilderOperator::new(Arc::clone(&bridge));
        b1.add_input(kv_page(&borrowed[..128])).unwrap();
        b2.add_input(kv_page(&borrowed[128..])).unwrap();
        // Finish via the bridge so the operators don't drain the queue
        // single-threadedly first.
        bridge.builder_finished_with(None);
        bridge.builder_finished_with(None);
        let barrier = std::sync::Barrier::new(2);
        let claims: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let bridge = Arc::clone(&bridge);
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        bridge.claim_and_build_one()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            claims.iter().all(|&c| c),
            "both threads claimed a partition: {claims:?}"
        );
        // Drain the rest and verify the table.
        while bridge.claim_and_build_one() {}
        assert_eq!(bridge.table().unwrap().row_count(), 256);
        drop((b1, b2));
    }

    #[test]
    fn exact_memory_accounting_from_flat_layout() {
        let rows: Vec<(i64, String)> = (0..1000).map(|i| (i % 100, format!("s{i}"))).collect();
        let borrowed: Vec<(i64, &str)> = rows.iter().map(|(k, s)| (*k, s.as_str())).collect();
        let bridge = build_table(&borrowed);
        let table = bridge.table().unwrap();
        // memory_bytes is the exact sum of page bytes and the per-partition
        // flat layouts — no estimate constants.
        let page_bytes: usize = table.pages().iter().map(Page::size_in_bytes).sum();
        let layout: usize = table
            .partitions
            .iter()
            .map(|p| p.rows.capacity() * 8 + p.table.memory_bytes())
            .sum();
        assert_eq!(table.memory_bytes(), page_bytes + layout);
        assert_eq!(table.hash_layout_bytes(), layout);
        // The bridge reports the table's exact size once built.
        assert_eq!(bridge.build_bytes(), table.memory_bytes());
        // Every row is addressable.
        assert_eq!(table.iter_rows().count(), 1000);
    }

    #[test]
    fn dictionary_probe_caches_entry_matches() {
        use presto_page::blocks::{DictionaryBlock, VarcharBlock};
        let bridge = JoinBridge::new(vec![0], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        let s = Schema::of(&[("k", DataType::Varchar), ("v", DataType::Bigint)]);
        b.add_input(Page::from_rows(
            &s,
            &[
                vec![Value::varchar("a"), Value::Bigint(1)],
                vec![Value::varchar("b"), Value::Bigint(2)],
            ],
        ))
        .unwrap();
        b.finish();
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            Schema::of(&[("k", DataType::Varchar)]),
            s,
            None,
        );
        let dict = Arc::new(Block::from(VarcharBlock::from_strs(&["a", "b", "zz"])));
        // 6 rows over 3 entries; repeats hit the cache.
        let p1 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![0, 1, 2, 0, 1, 2],
        ))]);
        probe.add_input(p1).unwrap();
        let out = probe.output().unwrap().unwrap();
        assert_eq!(out.row_count(), 4, "a and b match twice each");
        assert_eq!(probe.dict_probe_hits(), 3);
        // Second page sharing the dictionary: all rows served by the cache.
        let p2 = Page::new(vec![Block::Dictionary(DictionaryBlock::new(
            Arc::clone(&dict),
            vec![1, 1, 0],
        ))]);
        probe.add_input(p2).unwrap();
        assert_eq!(probe.output().unwrap().unwrap().row_count(), 3);
        assert_eq!(probe.dict_probe_hits(), 6);
    }

    #[test]
    fn rle_probe_resolves_once_per_page() {
        let bridge = build_table(&[(5, "five"), (6, "six")]);
        let mut probe = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            Schema::of(&[("k", DataType::Bigint)]),
            schema(),
            None,
        );
        let rle = Page::new(vec![Block::rle(
            Block::single(DataType::Bigint, &Value::Bigint(5)),
            4,
        )]);
        probe.add_input(rle).unwrap();
        let out = probe.output().unwrap().unwrap();
        assert_eq!(out.row_count(), 4);
        assert!((0..4).all(|i| out.block(2).str_at(i) == "five"));
        assert_eq!(probe.rle_probe_rows(), 4);
        // An RLE run of NULLs matches nothing.
        let null_rle = Page::new(vec![Block::rle(
            Block::single(DataType::Bigint, &Value::Null),
            3,
        )]);
        probe.add_input(null_rle).unwrap();
        assert!(probe.output().unwrap().is_none());
    }

    #[test]
    fn build_publishes_dynamic_filter() {
        use crate::dynfilter::{DynamicFilterRegistry, DynamicFilterSource};
        let registry = DynamicFilterRegistry::new();
        let join = presto_common::PlanNodeId(42);
        let bridge = JoinBridge::new(vec![0], 1);
        bridge.enable_dynamic_filter(DynamicFilterSource {
            join,
            registry: Arc::clone(&registry),
            key_types: vec![DataType::Bigint],
            max_values: 100,
        });
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        let s = schema();
        // A NULL key must not widen the published domain.
        b.add_input(Page::from_rows(
            &s,
            &[
                vec![Value::Bigint(5), Value::varchar("a")],
                vec![Value::Null, Value::varchar("n")],
                vec![Value::Bigint(9), Value::varchar("b")],
            ],
        ))
        .unwrap();
        b.finish();
        let f = registry.completed(join).unwrap();
        assert_eq!(f.rows, 2, "null-key rows are not collected");
        match &f.domains[0] {
            Some(presto_connector::Domain::Set(v)) => {
                assert_eq!(v, &vec![Value::Bigint(5), Value::Bigint(9)]);
            }
            other => panic!("expected set, got {other:?}"),
        }
        // The table itself still builds normally.
        assert_eq!(bridge.table().unwrap().row_count(), 2);
    }

    /// Invert the splitmix64 finalizer used by `presto_page::hash` so the
    /// test can manufacture genuine 64-bit hash collisions.
    fn inv_mix(mut h: u64) -> u64 {
        fn unshift(mut v: u64, s: u32) -> u64 {
            // Invert v ^= v >> s by reapplying until all bits recovered.
            let mut r = v;
            while v > 0 {
                v >>= s;
                r ^= v;
            }
            r
        }
        fn mul_inverse(a: u64) -> u64 {
            // Newton iteration: works for any odd multiplier mod 2^64.
            let mut x = a;
            for _ in 0..6 {
                x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
            }
            x
        }
        h = unshift(h, 31);
        h = h.wrapping_mul(mul_inverse(0x94D0_49BB_1331_11EB));
        h = unshift(h, 27);
        h = h.wrapping_mul(mul_inverse(0xBF58_476D_1CE4_E5B9));
        unshift(h, 30)
    }

    /// Two distinct (a, b) bigint key pairs with identical row hashes.
    fn collision_pair() -> ((i64, i64), (i64, i64)) {
        use presto_page::hash::hash_i64;
        let (a1, a2) = (0i64, 1i64);
        let (b1, _) = (42i64, ());
        // Row hash is mix(mix(hash(a)) * SEED ^ hash(b)); solve for b2 so
        // the pre-mix values collide.
        const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
        let c1 = combine_hashes(0, hash_i64(a1)).wrapping_mul(SEED);
        let c2 = combine_hashes(0, hash_i64(a2)).wrapping_mul(SEED);
        let b2 = inv_mix(hash_i64(b1) ^ c1 ^ c2) as i64;
        ((a1, b1), (a2, b2))
    }

    #[test]
    fn hash_collisions_do_not_cross_join() {
        use presto_page::hash::hash_columns;
        let ((a1, b1), (a2, b2)) = collision_pair();
        assert_ne!((a1, b1), (a2, b2));
        let s = Schema::of(&[("a", DataType::Bigint), ("b", DataType::Bigint)]);
        let build = Page::from_rows(&s, &[vec![Value::Bigint(a1), Value::Bigint(b1)]]);
        let probe_page = Page::from_rows(&s, &[vec![Value::Bigint(a2), Value::Bigint(b2)]]);
        // Verify this really is a full 64-bit collision.
        assert_eq!(
            hash_columns(&build, &[0, 1])[0],
            hash_columns(&probe_page, &[0, 1])[0],
            "constructed keys collide"
        );
        let bridge = JoinBridge::new(vec![0, 1], 1);
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(build).unwrap();
        b.finish();
        let mut probe = LookupJoinOperator::new(
            Arc::clone(&bridge),
            ProbeJoinType::Inner,
            vec![0, 1],
            s.clone(),
            s.clone(),
            None,
        );
        probe.add_input(probe_page).unwrap();
        assert!(
            probe.output().unwrap().is_none(),
            "colliding but unequal keys must not join"
        );
        // The equal key still joins.
        let mut probe2 = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0, 1],
            s.clone(),
            s.clone(),
            None,
        );
        probe2
            .add_input(Page::from_rows(
                &s,
                &[vec![Value::Bigint(a1), Value::Bigint(b1)]],
            ))
            .unwrap();
        assert_eq!(probe2.output().unwrap().unwrap().row_count(), 1);
    }

    /// A spill-armed bridge + probe joined over `build`/`probe` rows with a
    /// forced revocation after `revoke_after` build pages; returns the
    /// drained rows plus the total memory freed by revocations.
    fn grace_run(
        build: &[Vec<(i64, &str)>],
        probe_pages: &[Vec<(i64, &str)>],
        join_type: ProbeJoinType,
        revoke: bool,
    ) -> (Vec<(i64, String, i64, String)>, u64) {
        let dir = std::env::temp_dir().join(format!(
            "presto-grace-test-{}-{}",
            std::process::id(),
            NEXT_TEST_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let manager = SpillManager::new(Some(dir.clone()), 0);
        let bridge = JoinBridge::new(vec![0], 1);
        if revoke {
            bridge.enable_spill(Arc::clone(&manager));
        }
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        let mut freed_total = 0;
        for rows in build {
            b.add_input(kv_page(rows)).unwrap();
            if revoke {
                assert!(b.can_revoke_memory());
                let freed = b.revoke_memory().unwrap();
                assert!(freed > 0, "revocation frees build memory");
                freed_total += freed;
            }
        }
        b.finish();
        let mut op = LookupJoinOperator::new(
            Arc::clone(&bridge),
            join_type,
            vec![0],
            schema(),
            schema(),
            None,
        )
        .with_spill(Arc::clone(&manager))
        .with_grace_partition_limit(1); // force recursion on every pair
        let mut rows = Vec::new();
        let drain = |op: &mut LookupJoinOperator, out: &mut Vec<_>| {
            while let Some(p) = op.output().unwrap() {
                for i in 0..p.row_count() {
                    out.push((
                        p.block(0).i64_at(i),
                        p.block(1).str_at(i).to_string(),
                        if p.block(2).is_null(i) {
                            -1
                        } else {
                            p.block(2).i64_at(i)
                        },
                        if p.block(3).is_null(i) {
                            "-".into()
                        } else {
                            p.block(3).str_at(i).to_string()
                        },
                    ));
                }
            }
        };
        for page_rows in probe_pages {
            op.add_input(kv_page(page_rows)).unwrap();
            drain(&mut op, &mut rows);
        }
        op.finish();
        drain(&mut op, &mut rows);
        rows.sort();
        assert!(op.is_finished());
        drop(op);
        drop(bridge);
        manager.remove_all();
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "no spill files leaked"
        );
        std::fs::remove_dir_all(&dir).ok();
        (rows, freed_total)
    }

    static NEXT_TEST_DIR: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn grace_join_matches_in_memory_inner_and_left() {
        // Enough distinct keys to populate many radix partitions; probe
        // includes matching, non-matching, and repeated keys.
        let build: Vec<Vec<(i64, String)>> = (0..4)
            .map(|c| (0..200).map(|i| (c * 200 + i, format!("b{c}_{i}"))).collect())
            .collect();
        let probe: Vec<Vec<(i64, String)>> = (0..3)
            .map(|c| {
                (0..150)
                    .map(|i| (c * 137 + i * 7 % 900, format!("p{c}_{i}")))
                    .collect()
            })
            .collect();
        let build_ref: Vec<Vec<(i64, &str)>> = build
            .iter()
            .map(|v| v.iter().map(|(k, s)| (*k, s.as_str())).collect())
            .collect();
        let probe_ref: Vec<Vec<(i64, &str)>> = probe
            .iter()
            .map(|v| v.iter().map(|(k, s)| (*k, s.as_str())).collect())
            .collect();
        for join_type in [ProbeJoinType::Inner, ProbeJoinType::Left] {
            let (spilled, freed) = grace_run(&build_ref, &probe_ref, join_type, true);
            let (plain, _) = grace_run(&build_ref, &probe_ref, join_type, false);
            assert!(freed > 0);
            assert_eq!(spilled, plain, "{join_type:?} grace join identical");
        }
    }

    #[test]
    fn grace_join_hash_collisions_do_not_cross_join() {
        let ((a1, b1), (a2, b2)) = collision_pair();
        // Single-column collision is impossible to manufacture here, so use
        // the two-key collision with both channels as keys and spill.
        let s = Schema::of(&[("a", DataType::Bigint), ("b", DataType::Bigint)]);
        let manager = SpillManager::new(None, 0);
        let bridge = JoinBridge::new(vec![0, 1], 1);
        bridge.enable_spill(Arc::clone(&manager));
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(Page::from_rows(
            &s,
            &[vec![Value::Bigint(a1), Value::Bigint(b1)]],
        ))
        .unwrap();
        assert!(b.revoke_memory().unwrap() > 0, "whole build spills");
        b.finish();
        let table = bridge.table().unwrap();
        assert!(table.has_spill());
        assert_eq!(table.row_count(), 0, "all rows on disk");
        let mut probe = LookupJoinOperator::new(
            Arc::clone(&bridge),
            ProbeJoinType::Inner,
            vec![0, 1],
            s.clone(),
            s.clone(),
            None,
        )
        .with_spill(Arc::clone(&manager));
        probe
            .add_input(Page::from_rows(
                &s,
                &[
                    vec![Value::Bigint(a2), Value::Bigint(b2)],
                    vec![Value::Bigint(a1), Value::Bigint(b1)],
                ],
            ))
            .unwrap();
        probe.finish();
        let mut rows = 0;
        while let Some(p) = probe.output().unwrap() {
            for i in 0..p.row_count() {
                assert_eq!(p.block(0).i64_at(i), a1);
                assert_eq!(p.block(1).i64_at(i), b1);
            }
            rows += p.row_count();
        }
        assert_eq!(rows, 1, "colliding but unequal keys must not join");
        assert!(probe.is_finished());
    }

    #[test]
    fn revocation_is_a_noop_after_finalize_starts() {
        let manager = SpillManager::new(None, 0);
        let bridge = JoinBridge::new(vec![0], 1);
        bridge.enable_spill(Arc::clone(&manager));
        let mut b = HashBuilderOperator::new(Arc::clone(&bridge));
        b.add_input(kv_page(&[(1, "a"), (2, "b")])).unwrap();
        b.finish();
        assert!(bridge.table().is_some());
        assert!(!b.can_revoke_memory());
        assert_eq!(b.revoke_memory().unwrap(), 0);
        assert!(!bridge.table().unwrap().has_spill());
    }

    #[test]
    fn cross_join_bridge_never_arms_spill() {
        let manager = SpillManager::new(None, 0);
        let bridge = JoinBridge::new(vec![], 1);
        bridge.enable_spill(Arc::clone(&manager));
        assert!(!bridge.spill_armed(), "cross joins are spill-ineligible");
    }
}
