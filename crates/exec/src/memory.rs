//! Memory accounting plumbing between operators and the node memory pool.
//!
//! §IV-F2: "All non-trivial memory allocations in Presto must be classified
//! as user or system memory, and reserve memory in the corresponding memory
//! pool." Operators report retained sizes after every driver quanta; the
//! driver reconciles the deltas against the task's [`TaskMemoryContext`],
//! which forwards to whatever [`MemoryPool`] the worker installed (the real
//! general/reserved pool arbitration lives in `presto-cluster`).

use presto_common::{QueryId, Result};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a reservation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationResult {
    /// Reservation granted.
    Granted,
    /// Pool exhausted: the task must stall (and possibly spill) until
    /// memory frees up — "query memory reservations are blocked by halting
    /// processing for tasks".
    Blocked,
}

/// One driver's *revocable* reservation, registered with the node pool.
///
/// The driver publishes how many of its reserved bytes are held by
/// operators that can spill (§IV-F2 "revocable memory"). When the general
/// pool is exhausted, the arbiter picks the largest revocable reservation
/// and flags it here instead of promoting to the reserved pool or killing;
/// the owning driver observes the flag at its next quantum and spills.
#[derive(Debug, Default)]
pub struct RevocationHandle {
    /// Bytes currently revocable (spillable operator state).
    bytes: AtomicU64,
    /// Set by the arbiter; cleared by the driver when it spills.
    requested: AtomicBool,
}

impl RevocationHandle {
    pub fn new() -> Arc<RevocationHandle> {
        Arc::new(RevocationHandle::default())
    }

    /// Publish the current revocable byte count (driver reconcile).
    pub fn set_bytes(&self, bytes: u64) {
        self.bytes.store(bytes, Ordering::Relaxed);
    }

    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Arbiter side: ask the owner to spill.
    pub fn request(&self) {
        self.requested.store(true, Ordering::SeqCst);
    }

    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::SeqCst)
    }

    /// Driver side: consume a pending spill request, if any.
    pub fn take_request(&self) -> bool {
        self.requested.swap(false, Ordering::SeqCst)
    }
}

/// A node-level memory pool the task reserves against.
pub trait MemoryPool: Send + Sync {
    /// Try to adjust the query's reservation by `user_delta`/`system_delta`
    /// bytes (negative frees). Errors kill the query (limit exceeded).
    fn reserve(
        &self,
        query: QueryId,
        user_delta: i64,
        system_delta: i64,
    ) -> Result<ReservationResult>;

    /// Make a revocable reservation visible to the pool's arbiter. Pools
    /// that do not arbitrate (tests, [`UnlimitedPool`]) ignore it.
    fn register_revocable(&self, _query: QueryId, _handle: Arc<RevocationHandle>) {}

    /// Remove a revocable reservation (driver teardown).
    fn unregister_revocable(&self, _query: QueryId, _handle: &Arc<RevocationHandle>) {}
}

/// A pool that always grants — for tests and single-process embedding.
#[derive(Debug, Default)]
pub struct UnlimitedPool;

impl MemoryPool for UnlimitedPool {
    fn reserve(&self, _query: QueryId, _u: i64, _s: i64) -> Result<ReservationResult> {
        Ok(ReservationResult::Granted)
    }
}

/// Per-task ledger of reserved memory, shared by the task's drivers.
pub struct TaskMemoryContext {
    query: QueryId,
    pool: Arc<dyn MemoryPool>,
    user: AtomicI64,
    system: AtomicI64,
    revocation: Arc<RevocationHandle>,
}

impl TaskMemoryContext {
    pub fn new(query: QueryId, pool: Arc<dyn MemoryPool>) -> Arc<TaskMemoryContext> {
        let revocation = RevocationHandle::new();
        pool.register_revocable(query, Arc::clone(&revocation));
        Arc::new(TaskMemoryContext {
            query,
            pool,
            user: AtomicI64::new(0),
            system: AtomicI64::new(0),
            revocation,
        })
    }

    /// This context's revocable-reservation handle (shared with the pool's
    /// arbiter).
    pub fn revocation(&self) -> &Arc<RevocationHandle> {
        &self.revocation
    }

    /// Reconcile current retained sizes against the pool. Returns `Blocked`
    /// when the pool cannot grant the growth.
    pub fn update(&self, user_now: usize, system_now: usize) -> Result<ReservationResult> {
        let user_delta = user_now as i64 - self.user.load(Ordering::Relaxed);
        let system_delta = system_now as i64 - self.system.load(Ordering::Relaxed);
        if user_delta == 0 && system_delta == 0 {
            return Ok(ReservationResult::Granted);
        }
        match self.pool.reserve(self.query, user_delta, system_delta)? {
            ReservationResult::Granted => {
                self.user.store(user_now as i64, Ordering::Relaxed);
                self.system.store(system_now as i64, Ordering::Relaxed);
                Ok(ReservationResult::Granted)
            }
            ReservationResult::Blocked if user_delta <= 0 && system_delta <= 0 => {
                // Frees always apply even when the pool is blocked.
                self.user.store(user_now as i64, Ordering::Relaxed);
                self.system.store(system_now as i64, Ordering::Relaxed);
                Ok(ReservationResult::Granted)
            }
            ReservationResult::Blocked => Ok(ReservationResult::Blocked),
        }
    }

    /// Release everything (task end).
    pub fn release_all(&self) {
        self.revocation.set_bytes(0);
        let user = self.user.swap(0, Ordering::Relaxed);
        let system = self.system.swap(0, Ordering::Relaxed);
        if user != 0 || system != 0 {
            let _ = self.pool.reserve(self.query, -user, -system);
        }
    }

    pub fn reserved_user(&self) -> i64 {
        self.user.load(Ordering::Relaxed)
    }

    pub fn reserved_system(&self) -> i64 {
        self.system.load(Ordering::Relaxed)
    }

    pub fn query(&self) -> QueryId {
        self.query
    }
}

impl Drop for TaskMemoryContext {
    fn drop(&mut self) {
        self.release_all();
        self.pool.unregister_revocable(self.query, &self.revocation);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Pool with a hard cap, granting FIFO.
    struct CappedPool {
        cap: i64,
        used: Mutex<i64>,
    }

    impl MemoryPool for CappedPool {
        fn reserve(&self, _q: QueryId, u: i64, s: i64) -> Result<ReservationResult> {
            let mut used = self.used.lock();
            let next = *used + u + s;
            if next > self.cap && (u + s) > 0 {
                return Ok(ReservationResult::Blocked);
            }
            *used = next;
            Ok(ReservationResult::Granted)
        }
    }

    #[test]
    fn update_reports_deltas_and_blocks() {
        let pool = Arc::new(CappedPool {
            cap: 100,
            used: Mutex::new(0),
        });
        let ctx = TaskMemoryContext::new(QueryId(1), Arc::clone(&pool) as Arc<dyn MemoryPool>);
        assert_eq!(ctx.update(60, 0).unwrap(), ReservationResult::Granted);
        assert_eq!(ctx.update(90, 20).unwrap(), ReservationResult::Blocked);
        // Shrinking succeeds even while blocked.
        assert_eq!(ctx.update(10, 0).unwrap(), ReservationResult::Granted);
        assert_eq!(*pool.used.lock(), 10);
        ctx.release_all();
        assert_eq!(*pool.used.lock(), 0);
    }

    #[test]
    fn drop_releases() {
        let pool = Arc::new(CappedPool {
            cap: 100,
            used: Mutex::new(0),
        });
        {
            let ctx = TaskMemoryContext::new(QueryId(2), Arc::clone(&pool) as Arc<dyn MemoryPool>);
            ctx.update(50, 10).unwrap();
        }
        assert_eq!(*pool.used.lock(), 0);
    }
}
