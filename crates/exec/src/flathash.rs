//! Shared vectorized flat hash-table layout for the join and aggregation
//! kernels (§V-E).
//!
//! The paper's hottest loops — hash-join probe and group-by lookup — win by
//! avoiding per-key allocations: the table is a power-of-two bucket array
//! (`heads`) over one flat entry array. Every entry stores its full 64-bit
//! hash next to its chain link, so each chain step costs a single random
//! memory access and skips non-matching entries with one integer compare
//! before any key comparison runs. Collisions chain through `next` (array
//! chaining), so inserting N keys costs N appends to two flat vectors — no
//! `Vec<u32>` per key, no node allocations.
//!
//! [`KeyArena`] is the companion layout for group-by keys: every distinct
//! key's canonical byte encoding is appended once to a single contiguous
//! buffer, addressed by an offsets array, replacing one `Vec<u8>` per group.

/// Sentinel for "no entry" in `heads` / `next`.
const EMPTY: u32 = u32::MAX;

/// Minimum bucket count (power of two).
const MIN_BUCKETS: usize = 16;

/// One table entry: the stored hash and the chain link, interleaved so a
/// chain walk touches one cache line per step.
#[derive(Debug, Clone, Copy)]
struct Entry {
    hash: u64,
    /// Next entry in the same bucket, `EMPTY` at chain end.
    next: u32,
}

/// A flat, append-only hash table: entries are dense indices `0..len`, each
/// with a stored 64-bit hash, chained per bucket through flat arrays.
#[derive(Debug, Default)]
pub struct FlatHashTable {
    /// Bucket array (power-of-two length); holds the entry index of the
    /// chain head or `EMPTY`.
    heads: Vec<u32>,
    /// Entry index → (stored hash, chain link).
    entries: Vec<Entry>,
}

impl FlatHashTable {
    /// Public sentinel for "no entry", for callers driving batched
    /// (breadth-first) chain walks through [`head`](Self::head) /
    /// [`entry_at`](Self::entry_at).
    pub const EMPTY: u32 = EMPTY;

    pub fn new() -> FlatHashTable {
        FlatHashTable::with_capacity(0)
    }

    /// A table pre-sized for `entries` insertions without rehashing.
    pub fn with_capacity(entries: usize) -> FlatHashTable {
        let buckets = Self::buckets_for(entries);
        FlatHashTable {
            heads: vec![EMPTY; buckets],
            entries: Vec::with_capacity(entries),
        }
    }

    fn buckets_for(entries: usize) -> usize {
        // Keep the load factor under 3/4 so chains stay short.
        ((entries * 4 / 3).max(MIN_BUCKETS)).next_power_of_two()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact retained bytes (memory-arbitration accounting).
    pub fn memory_bytes(&self) -> usize {
        self.heads.capacity() * 4 + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    #[inline]
    fn bucket(&self, hash: u64) -> usize {
        // Buckets index by the mixed low bits; partitioned layouts use the
        // *high* bits to pick a partition, so the two never alias.
        (hash as usize) & (self.heads.len() - 1)
    }

    /// Append a new entry with `hash`, returning its dense entry index.
    /// The caller owns the mapping from entry index to payload (a build-row
    /// address, a group id, …).
    #[inline]
    pub fn insert(&mut self, hash: u64) -> u32 {
        if self.entries.len() * 4 >= self.heads.len() * 3 {
            self.grow();
        }
        let entry = self.entries.len() as u32;
        let bucket = self.bucket(hash);
        self.entries.push(Entry {
            hash,
            next: self.heads[bucket],
        });
        self.heads[bucket] = entry;
        entry
    }

    /// All entries whose stored hash equals `hash`, newest first. Callers
    /// must still verify key equality — distinct keys can share a hash.
    #[inline]
    pub fn probe(&self, hash: u64) -> ProbeIter<'_> {
        ProbeIter {
            table: self,
            hash,
            entry: self.heads[self.bucket(hash)],
        }
    }

    /// First entry matching `hash` for which `eq` holds.
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        self.probe(hash).find(|&e| eq(e))
    }

    /// Chain-head entry index for `hash`'s bucket ([`Self::EMPTY`] if the
    /// bucket is empty). With [`entry_at`](Self::entry_at) this lets batch
    /// probes walk many chains breadth-first, so the per-step cache misses
    /// of different rows overlap instead of serializing.
    #[inline]
    pub fn head(&self, hash: u64) -> u32 {
        self.heads[self.bucket(hash)]
    }

    /// `(stored hash, next link)` of entry `e`.
    #[inline]
    pub fn entry_at(&self, e: u32) -> (u64, u32) {
        let slot = self.entries[e as usize];
        (slot.hash, slot.next)
    }

    fn grow(&mut self) {
        let buckets = (self.heads.len() * 2).max(MIN_BUCKETS);
        self.heads.clear();
        self.heads.resize(buckets, EMPTY);
        // Relink every entry; chains rebuild in reverse insertion order,
        // which preserves the newest-first probe order.
        for (i, e) in self.entries.iter_mut().enumerate() {
            let bucket = (e.hash as usize) & (buckets - 1);
            e.next = self.heads[bucket];
            self.heads[bucket] = i as u32;
        }
    }
}

/// Iterator over hash-matching entries of one bucket chain.
pub struct ProbeIter<'a> {
    table: &'a FlatHashTable,
    hash: u64,
    entry: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.entry != EMPTY {
            let e = self.entry;
            let slot = self.table.entries[e as usize];
            self.entry = slot.next;
            if slot.hash == self.hash {
                return Some(e);
            }
        }
        None
    }
}

/// Append-only arena of byte-encoded keys: one contiguous buffer plus an
/// offsets array (offsets.len() == keys + 1).
#[derive(Debug)]
pub struct KeyArena {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
}

impl Default for KeyArena {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyArena {
    pub fn new() -> KeyArena {
        KeyArena {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one key, returning its dense index.
    pub fn push(&mut self, key: &[u8]) -> u32 {
        let id = self.len() as u32;
        self.bytes.extend_from_slice(key);
        self.offsets.push(self.bytes.len() as u32);
        id
    }

    #[inline]
    pub fn get(&self, i: u32) -> &[u8] {
        &self.bytes[self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize]
    }

    /// Exact retained bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bytes.capacity() + self.offsets.capacity() * 4
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_probe_round_trip() {
        let mut t = FlatHashTable::new();
        let keys: Vec<u64> = (0..1000).map(|i| i * 0x9E37_79B9).collect();
        for &k in &keys {
            t.insert(k);
        }
        assert_eq!(t.len(), 1000);
        for (i, &k) in keys.iter().enumerate() {
            let found: Vec<u32> = t.probe(k).collect();
            assert!(found.contains(&(i as u32)), "entry {i} reachable");
        }
    }

    #[test]
    fn equal_hashes_chain_and_stay_distinct() {
        let mut t = FlatHashTable::new();
        // Three entries with an identical hash must all surface on probe.
        let h = 0xDEAD_BEEF_u64;
        let a = t.insert(h);
        let b = t.insert(h);
        let c = t.insert(h);
        let found: Vec<u32> = t.probe(h).collect();
        assert_eq!(found, vec![c, b, a], "newest first, all present");
        // find() resolves by caller-side equality, not by hash alone.
        assert_eq!(t.find(h, |e| e == b), Some(b));
        assert_eq!(t.find(h, |_| false), None);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = FlatHashTable::with_capacity(4);
        for i in 0..10_000u64 {
            t.insert(i.wrapping_mul(0x100_0000_01B3));
        }
        for i in 0..10_000u64 {
            let h = i.wrapping_mul(0x100_0000_01B3);
            assert!(t.probe(h).next().is_some(), "entry {i} survives growth");
        }
    }

    #[test]
    fn probe_skips_different_hashes_in_same_bucket() {
        let mut t = FlatHashTable::with_capacity(4);
        // Same bucket (low bits equal), different full hashes.
        let h1 = 0x0000_0000_0000_0001_u64;
        let h2 = 0x1000_0000_0000_0001_u64;
        t.insert(h1);
        t.insert(h2);
        assert_eq!(t.probe(h1).count(), 1);
        assert_eq!(t.probe(h2).count(), 1);
    }

    #[test]
    fn arena_round_trip_and_sizes() {
        let mut a = KeyArena::new();
        let k0 = a.push(b"alpha");
        let k1 = a.push(b"");
        let k2 = a.push(b"beta");
        assert_eq!(a.get(k0), b"alpha");
        assert_eq!(a.get(k1), b"");
        assert_eq!(a.get(k2), b"beta");
        assert_eq!(a.len(), 3);
        assert!(a.memory_bytes() >= 9 + 4 * 4);
    }

    #[test]
    fn memory_bytes_reflects_capacity() {
        let t = FlatHashTable::with_capacity(100);
        let expected =
            t.heads.capacity() * 4 + t.entries.capacity() * std::mem::size_of::<Entry>();
        assert_eq!(t.memory_bytes(), expected);
        assert!(t.memory_bytes() >= 128 * 4 + 100 * 12);
    }
}
