//! Task construction: compiling one plan fragment into executable
//! pipelines wired to splits, exchanges, and the output buffer.

use parking_lot::Mutex;
use presto_common::{DataType, PlanNodeId, PrestoError, Result, Schema, Session, TaskId};
use presto_connector::{CatalogManager, TupleDomain};
use presto_expr::Expr;
use presto_page::Page;
use presto_planner::plan::{AggregateStep, JoinType, PlanNode};
use presto_planner::{OutputPartitioning, PlanFragment};
use presto_shuffle::{ExchangeClient, OutputBuffer};
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::time::Duration;

use crate::agg::{specs_from_planner, AggPhase, HashAggregationOperator};
use crate::driver::Driver;
use crate::exchange::{ExchangeSourceOperator, OutputRouting, PartitionedOutputOperator};
use crate::filter::{FilterProjectOperator, LimitOperator, ValuesOperator};
use crate::join::{HashBuilderOperator, JoinBridge, LookupJoinOperator, ProbeJoinType};
use crate::memory::{MemoryPool, TaskMemoryContext};
use crate::pipeline::{LocalQueue, LocalQueueSink, LocalQueueSource, OpFactory, Pipeline};
use crate::scan::{ScanOperator, SplitQueue};
use crate::sort::{SortOperator, TopNOperator};
use crate::spill::{SpillFault, SpillManager};
use crate::stats::{PipelineMeta, TaskStats, TaskStatsCollector};
use crate::window::WindowOperator;
use crate::writer::TableWriterOperator;

/// Everything a task needs from its environment.
#[derive(Clone)]
pub struct TaskContext {
    pub task_id: TaskId,
    pub session: Session,
    pub catalogs: CatalogManager,
    pub memory_pool: Arc<dyn MemoryPool>,
    /// Number of tasks in the consumer stage (output buffer partitions).
    pub consumer_count: usize,
    /// Parallel drivers for split-driven leaf pipelines (§IV-C4).
    pub leaf_parallelism: usize,
    pub output_buffer_bytes: usize,
    pub exchange_buffer_bytes: usize,
    /// Simulated network latency per exchange poll.
    pub exchange_poll_latency: Duration,
    /// Optional shared timeline: split and page events from this task's
    /// operators land here (pid = query id, tid = fragment id).
    pub trace: Option<Arc<presto_common::TraceBuffer>>,
    /// Dynamic-filter registry + specs for this query (`None` disables
    /// dynamic filtering for the task).
    pub dynamic_filters: Option<Arc<crate::dynfilter::TaskDynamicFilters>>,
}

/// A scan inside a task: the coordinator feeds its split queue.
pub struct ScanSource {
    pub node_id: PlanNodeId,
    pub catalog: String,
    pub table: String,
    pub layout: String,
    pub predicate: TupleDomain,
    pub queue: Arc<SplitQueue>,
}

/// An exchange input of a task: the coordinator attaches upstream buffers.
/// The client is internally synchronized (all methods take `&self`).
pub struct ExchangeInput {
    pub source_fragment: u32,
    pub client: Arc<ExchangeClient>,
    pub no_more_sources: Arc<AtomicBool>,
}

/// One executable task. Drivers sit behind a mutex so the task itself can
/// be shared (`Arc<Task>`) while the worker takes ownership of the drivers
/// for scheduling.
pub struct Task {
    pub id: TaskId,
    pub output: Arc<OutputBuffer>,
    pub scans: Vec<ScanSource>,
    pub exchanges: Vec<ExchangeInput>,
    pub drivers: Mutex<Vec<Driver>>,
    pub memory: Arc<TaskMemoryContext>,
    /// Task-owned spill coordinator shared by every spilling operator
    /// (§IV-F2). Abort calls [`SpillManager::remove_all`] so no run file
    /// outlives the task.
    pub spill: Arc<SpillManager>,
    /// Per-driver statistics recorded by the worker as drivers retire.
    pub stats: TaskStatsCollector,
}

impl Task {
    /// Snapshot this task's statistics: everything drivers have reported
    /// so far plus the task-level data-plane counters (output buffer and
    /// exchange clients are shared across the task's drivers, so they are
    /// read here exactly once rather than summed per driver).
    pub fn stats_snapshot(&self) -> TaskStats {
        let pipelines = self.stats.pipelines();
        let cpu_time = pipelines.iter().map(|p| p.cpu_time).sum();
        let (output_pages, _) = self.output.totals();
        let (output_wire_bytes, output_logical_bytes) = self.output.byte_totals();
        TaskStats {
            task: self.id,
            cpu_time,
            pipelines,
            output_pages,
            output_wire_bytes,
            output_logical_bytes,
            exchange_bytes_received: self
                .exchanges
                .iter()
                .map(|e| e.client.bytes_received())
                .sum(),
        }
    }
}

/// The spill manager a session configures: directory, disk budget, and
/// (for the chaos harness) an injected IO fault.
fn spill_manager_for(session: &Session) -> Arc<SpillManager> {
    let fault = match (
        session.spill_chaos_write_error_after,
        session.spill_chaos_disk_capacity,
    ) {
        (Some(after_writes), _) => Some(SpillFault::WriteError { after_writes }),
        (None, Some(capacity_bytes)) => Some(SpillFault::DiskFull { capacity_bytes }),
        (None, None) => None,
    };
    SpillManager::with_fault(session.spill_dir.clone(), session.spill_max_bytes, fault)
}

/// Compile `fragment` into a [`Task`].
pub fn create_task(fragment: &PlanFragment, ctx: &TaskContext) -> Result<Task> {
    let output = OutputBuffer::with_compression(
        ctx.consumer_count.max(1),
        ctx.output_buffer_bytes,
        ctx.session.shuffle_compression_min_bytes,
    );
    let memory = TaskMemoryContext::new(ctx.task_id.stage.query, Arc::clone(&ctx.memory_pool));
    let spill = spill_manager_for(&ctx.session);
    let mut compiler = Compiler {
        ctx,
        spill: Arc::clone(&spill),
        scans: Vec::new(),
        exchanges: Vec::new(),
        pipelines: Vec::new(),
    };
    let chain = compiler.compile(&fragment.root)?;
    // Append the output sink.
    let routing = match &fragment.output {
        OutputPartitioning::Gather | OutputPartitioning::None => OutputRouting::Gather,
        OutputPartitioning::Hash { channels, .. } => OutputRouting::Hash {
            channels: channels.clone(),
        },
        OutputPartitioning::Broadcast => OutputRouting::Broadcast,
        OutputPartitioning::RoundRobin => OutputRouting::RoundRobin,
    };
    let driver_count = chain.driver_count(ctx.leaf_parallelism);
    let close_group = Arc::new(AtomicUsize::new(driver_count));
    let buffer = Arc::clone(&output);
    let mut factories = chain.factories;
    let routing_for_factory = routing.clone();
    let target_rows = ctx.session.target_page_rows;
    let target_bytes = ctx.session.shuffle_target_page_bytes;
    let trace = ctx.trace.clone();
    let trace_pid = ctx.task_id.stage.query.0 as u32;
    let trace_tid = ctx.task_id.stage.stage;
    factories.push(Arc::new(move || {
        let mut op = PartitionedOutputOperator::new(
            Arc::clone(&buffer),
            routing_for_factory.clone(),
        )
        .with_targets(target_rows, target_bytes)
        .with_close_group(Arc::clone(&close_group));
        if let Some(trace) = &trace {
            op = op.with_trace(Arc::clone(trace), trace_pid, trace_tid);
        }
        Ok(Box::new(op) as Box<dyn crate::operator::Operator>)
    }));
    compiler.pipelines.push(Pipeline {
        factories,
        driver_count,
        description: format!("{} -> Output", chain.description),
    });

    // Instantiate drivers for every pipeline. Each driver gets its OWN
    // memory context: contexts reconcile retained-size deltas, and a
    // context shared across concurrently-running drivers would interleave
    // reads and writes of the stored totals, drifting the pool accounting.
    // All contexts charge the same query on the same pool.
    let mut drivers = Vec::new();
    for (pipeline_index, pipeline) in compiler.pipelines.iter().enumerate() {
        for _ in 0..pipeline.driver_count {
            let operators = pipeline.instantiate()?;
            let ctx = TaskMemoryContext::new(ctx.task_id.stage.query, Arc::clone(&ctx.memory_pool));
            drivers.push(Driver::new(operators, ctx).with_pipeline(pipeline_index));
        }
    }
    let stats = TaskStatsCollector::new(
        compiler
            .pipelines
            .iter()
            .map(|p| PipelineMeta {
                description: p.description.clone(),
                driver_count: p.driver_count,
            })
            .collect(),
    );
    Ok(Task {
        id: ctx.task_id,
        output,
        scans: compiler.scans,
        exchanges: compiler.exchanges,
        drivers: Mutex::new(drivers),
        memory,
        spill,
        stats,
    })
}

/// A partially-built pipeline chain.
struct Chain {
    factories: Vec<OpFactory>,
    /// Split-driven and safe to instantiate in parallel.
    parallel: bool,
    description: String,
}

impl Chain {
    fn driver_count(&self, leaf_parallelism: usize) -> usize {
        if self.parallel {
            leaf_parallelism.max(1)
        } else {
            1
        }
    }

    fn push(&mut self, name: &str, factory: OpFactory) {
        self.factories.push(factory);
        self.description.push_str(" -> ");
        self.description.push_str(name);
    }

    /// Operators that must see the whole input serialize the pipeline.
    fn force_single_driver(&mut self) {
        self.parallel = false;
    }
}

struct Compiler<'a> {
    ctx: &'a TaskContext,
    /// Task-level spill coordinator handed to every spilling operator.
    spill: Arc<SpillManager>,
    scans: Vec<ScanSource>,
    exchanges: Vec<ExchangeInput>,
    pipelines: Vec<Pipeline>,
}

impl<'a> Compiler<'a> {
    fn compile(&mut self, node: &PlanNode) -> Result<Chain> {
        // Pipeline fusion: a supported `TableScan → Filter → Project
        // [→ partial Aggregate]` chain compiles to one fused operator.
        // Unsupported chains (or `pipeline_fusion = false`) fall through to
        // the discrete operators below with identical results.
        if let Some(chain) = self.try_compile_fused(node)? {
            return Ok(chain);
        }
        match node {
            PlanNode::Output { input, .. } => self.compile(input),
            PlanNode::TableScan { .. } => self.compile_scan(node, None, None),
            PlanNode::Filter {
                input, predicate, ..
            } => {
                if matches!(input.as_ref(), PlanNode::TableScan { .. }) {
                    // Fused ScanFilterProject (Fig. 4).
                    return self.compile_scan(input, Some(predicate.clone()), None);
                }
                let mut chain = self.compile(input)?;
                let input_schema = input.output_schema();
                let projections = identity_projections(&input_schema);
                let predicate = predicate.clone();
                let session = self.ctx.session.clone();
                chain.push(
                    "FilterProject",
                    Arc::new(move || {
                        Ok(Box::new(FilterProjectOperator::new(
                            Some(&predicate),
                            &projections,
                            &session,
                        )))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Project {
                input, expressions, ..
            } => {
                match input.as_ref() {
                    PlanNode::TableScan { .. } => {
                        return self.compile_scan(input, None, Some(expressions.clone()))
                    }
                    PlanNode::Filter {
                        input: scan,
                        predicate,
                        ..
                    } if matches!(scan.as_ref(), PlanNode::TableScan { .. }) => {
                        return self.compile_scan(
                            scan,
                            Some(predicate.clone()),
                            Some(expressions.clone()),
                        )
                    }
                    _ => {}
                }
                let mut chain = self.compile(input)?;
                let expressions = expressions.clone();
                let session = self.ctx.session.clone();
                chain.push(
                    "Project",
                    Arc::new(move || {
                        Ok(Box::new(FilterProjectOperator::new(
                            None,
                            &expressions,
                            &session,
                        )))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggregates,
                step,
                ..
            } => {
                let mut chain = self.compile(input)?;
                let input_schema = input.output_schema();
                let phase = match step {
                    AggregateStep::Single => AggPhase::Single,
                    AggregateStep::Partial => AggPhase::Partial,
                    AggregateStep::Final => AggPhase::Final,
                };
                // Partial aggregation is per-driver-safe; Single/Final must
                // see all rows of their partition in one instance.
                if phase != AggPhase::Partial {
                    chain.force_single_driver();
                }
                let group_channels = group_by.clone();
                let group_types: Vec<DataType> = group_by
                    .iter()
                    .map(|&c| input_schema.data_type(c))
                    .collect();
                let specs = specs_from_planner(aggregates)?;
                let spill = self.ctx.session.spill_enabled;
                let spill_manager = Arc::clone(&self.spill);
                chain.push(
                    "Aggregate",
                    Arc::new(move || {
                        Ok(Box::new(
                            HashAggregationOperator::new(
                                phase,
                                group_channels.clone(),
                                group_types.clone(),
                                specs.clone(),
                                spill,
                            )
                            .with_spill_manager(Arc::clone(&spill_manager)),
                        ))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Join {
                id,
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                filter,
                distribution,
                ..
            } => {
                let probe_chain = self.compile(left)?;
                // Build side becomes its own pipeline.
                let mut build_chain = self.compile(right)?;
                let build_drivers = build_chain.driver_count(self.ctx.leaf_parallelism);
                let bridge = JoinBridge::new(right_keys.clone(), build_drivers);
                // Grace-join spill: keyed joins only (the bridge ignores
                // the call for cross joins, which keep the in-memory path).
                let join_spill = self.ctx.session.spill_enabled && !right_keys.is_empty();
                if join_spill {
                    bridge.enable_spill(Arc::clone(&self.spill));
                }
                if let Some(df) = &self.ctx.dynamic_filters {
                    if df.produces_for_join(*id) {
                        let build_schema = right.output_schema();
                        bridge.enable_dynamic_filter(crate::dynfilter::DynamicFilterSource {
                            join: *id,
                            registry: Arc::clone(&df.registry),
                            key_types: right_keys
                                .iter()
                                .map(|&c| build_schema.data_type(c))
                                .collect(),
                            max_values: self.ctx.session.dynamic_filter_max_values,
                        });
                    }
                }
                {
                    let bridge = Arc::clone(&bridge);
                    build_chain.push(
                        "HashBuilder",
                        Arc::new(move || {
                            Ok(Box::new(HashBuilderOperator::new(Arc::clone(&bridge))))
                        }),
                    );
                }
                let desc = format!("{} (build)", build_chain.description);
                self.pipelines.push(Pipeline {
                    factories: build_chain.factories,
                    driver_count: build_drivers,
                    description: desc,
                });
                // Probe continues in the current pipeline.
                let mut chain = probe_chain;
                let probe_type = match join_type {
                    // An inner join with no equi keys (a cross join whose
                    // predicate became a residual filter) must take the
                    // full-pairing probe path: the keyed path hashes zero
                    // columns and would match nothing.
                    JoinType::Inner if left_keys.is_empty() => ProbeJoinType::Cross,
                    JoinType::Inner => ProbeJoinType::Inner,
                    JoinType::Left => ProbeJoinType::Left,
                    JoinType::Cross => ProbeJoinType::Cross,
                };
                let probe_keys = left_keys.clone();
                let probe_schema = left.output_schema();
                let build_schema = right.output_schema();
                let filter = filter.clone();
                let _ = distribution;
                let spill_manager = join_spill.then(|| Arc::clone(&self.spill));
                chain.push(
                    "LookupJoin",
                    Arc::new(move || {
                        let mut op = LookupJoinOperator::new(
                            Arc::clone(&bridge),
                            probe_type,
                            probe_keys.clone(),
                            probe_schema.clone(),
                            build_schema.clone(),
                            filter.as_ref(),
                        );
                        if let Some(spill) = &spill_manager {
                            op = op.with_spill(Arc::clone(spill));
                        }
                        Ok(Box::new(op))
                    }),
                );
                Ok(chain)
            }
            PlanNode::IndexJoin {
                probe,
                catalog,
                table,
                probe_keys,
                index_keys,
                output_columns,
                table_schema,
                ..
            } => {
                let mut chain = self.compile(probe)?;
                let connector = self.ctx.catalogs.catalog(catalog)?;
                let probe_keys = probe_keys.clone();
                let index_keys = index_keys.clone();
                let output_columns = output_columns.clone();
                let table = table.clone();
                let probe_schema = probe.output_schema();
                let key_types: Vec<DataType> = probe_keys
                    .iter()
                    .map(|&c| probe_schema.data_type(c))
                    .collect();
                let _ = table_schema;
                chain.push(
                    "IndexJoin",
                    Arc::new(move || {
                        let index = connector
                            .index_source(&table, &index_keys, &output_columns)?
                            .ok_or_else(|| {
                                PrestoError::internal(format!(
                                    "planner chose an index join but '{table}' has no index"
                                ))
                            })?;
                        Ok(Box::new(crate::join::IndexJoinOperator::new(
                            index,
                            probe_keys.clone(),
                            key_types.clone(),
                            probe_schema.clone(),
                        )))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Sort { input, keys, .. } => {
                let mut chain = self.compile(input)?;
                chain.force_single_driver();
                let keys = keys.clone();
                let spill = self.ctx.session.spill_enabled;
                let spill_manager = Arc::clone(&self.spill);
                chain.push(
                    "Sort",
                    Arc::new(move || {
                        Ok(Box::new(
                            SortOperator::new(keys.clone(), spill)
                                .with_spill_manager(Arc::clone(&spill_manager)),
                        ))
                    }),
                );
                Ok(chain)
            }
            PlanNode::TopN {
                input, keys, count, ..
            } => {
                // Per-driver TopN is safe: the final fragment re-ranks.
                let mut chain = self.compile(input)?;
                let keys = keys.clone();
                let count = *count;
                chain.push(
                    "TopN",
                    Arc::new(move || Ok(Box::new(TopNOperator::new(keys.clone(), count)))),
                );
                Ok(chain)
            }
            PlanNode::Limit { input, count, .. } => {
                let mut chain = self.compile(input)?;
                let count = *count;
                chain.push(
                    "Limit",
                    Arc::new(move || Ok(Box::new(LimitOperator::new(count)))),
                );
                Ok(chain)
            }
            PlanNode::Window {
                input,
                partition_by,
                order_by,
                functions,
                ..
            } => {
                let mut chain = self.compile(input)?;
                chain.force_single_driver();
                let partition_by = partition_by.clone();
                let order_by = order_by.clone();
                let functions = functions.clone();
                chain.push(
                    "Window",
                    Arc::new(move || {
                        Ok(Box::new(WindowOperator::new(
                            partition_by.clone(),
                            order_by.clone(),
                            functions.clone(),
                        )))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Union { inputs, .. } => {
                // Children run as independent pipelines into a local queue.
                let queue = LocalQueue::new(inputs.len(), 4 << 20);
                // Register producers up-front with exact count.
                for input in inputs {
                    let mut child = self.compile(input)?;
                    let q = Arc::clone(&queue);
                    child.push(
                        "LocalQueueSink",
                        Arc::new(move || Ok(Box::new(LocalQueueSink::new(Arc::clone(&q))))),
                    );
                    // A multi-driver union branch would register too many
                    // producers; serialize branches.
                    child.force_single_driver();
                    let desc = format!("{} (union branch)", child.description);
                    self.pipelines.push(Pipeline {
                        factories: child.factories,
                        driver_count: 1,
                        description: desc,
                    });
                }
                let q = Arc::clone(&queue);
                Ok(Chain {
                    factories: vec![Arc::new(move || {
                        Ok(Box::new(LocalQueueSource::new(Arc::clone(&q))))
                    })],
                    parallel: false,
                    description: "Union".to_string(),
                })
            }
            PlanNode::TableWrite {
                input,
                catalog,
                table,
                ..
            } => {
                let mut chain = self.compile(input)?;
                let connector = self.ctx.catalogs.catalog(catalog)?;
                let table = table.clone();
                chain.push(
                    "TableWriter",
                    Arc::new(move || {
                        let sink = connector
                            .page_sink_factory()
                            .ok_or_else(|| PrestoError::user("target catalog is read-only"))?
                            .create_sink(&table)?;
                        Ok(Box::new(TableWriterOperator::new(sink)))
                    }),
                );
                Ok(chain)
            }
            PlanNode::Values { schema, rows, .. } => {
                let page = if schema.is_empty() {
                    Page::zero_column(rows.len())
                } else {
                    Page::from_rows(schema, rows)
                };
                Ok(Chain {
                    factories: vec![Arc::new(move || {
                        Ok(Box::new(ValuesOperator::new(vec![page.clone()])))
                    })],
                    parallel: false,
                    description: "Values".to_string(),
                })
            }
            PlanNode::RemoteSource { fragment, .. } => {
                let client = Arc::new(ExchangeClient::with_config(
                    self.ctx.exchange_buffer_bytes,
                    self.ctx.exchange_poll_latency,
                    self.ctx.session.exchange_concurrency,
                    self.ctx.session.max_transient_retries,
                ));
                if self.ctx.session.exchange_chaos_decode_every > 0 {
                    client.set_chaos_decode_every(self.ctx.session.exchange_chaos_decode_every);
                }
                let no_more = Arc::new(AtomicBool::new(false));
                self.exchanges.push(ExchangeInput {
                    source_fragment: *fragment,
                    client: Arc::clone(&client),
                    no_more_sources: Arc::clone(&no_more),
                });
                let trace = self.ctx.trace.clone();
                let trace_pid = self.ctx.task_id.stage.query.0 as u32;
                let trace_tid = self.ctx.task_id.stage.stage;
                Ok(Chain {
                    factories: vec![Arc::new(move || {
                        let mut op = ExchangeSourceOperator::new(
                            Arc::clone(&client),
                            Arc::clone(&no_more),
                        );
                        if let Some(trace) = &trace {
                            op = op.with_trace(Arc::clone(trace), trace_pid, trace_tid);
                        }
                        Ok(Box::new(op) as Box<dyn crate::operator::Operator>)
                    })],
                    parallel: false,
                    description: format!("Exchange({fragment})"),
                })
            }
        }
    }

    /// Lower a fusable chain rooted at `node` into a
    /// [`FusedPipelineOperator`](crate::fused::FusedPipelineOperator), or
    /// return `None` when the chain shape, the session, or
    /// [`presto_planner::fusion::chain_fallback`] (shared with the planner's
    /// EXPLAIN annotation) says it must stay on the discrete operators.
    fn try_compile_fused(&mut self, node: &PlanNode) -> Result<Option<Chain>> {
        if !self.ctx.session.pipeline_fusion || !self.ctx.session.compiled_expressions {
            return Ok(None);
        }
        // Peel optional partial aggregate → projection → filter, exactly as
        // the planner's chain matcher does.
        let (agg, below) = match node {
            PlanNode::Aggregate {
                input,
                group_by,
                aggregates,
                step: AggregateStep::Partial,
                ..
            } => (
                Some((group_by, aggregates, input.output_schema())),
                input.as_ref(),
            ),
            other => (None, other),
        };
        let (projections, below) = match below {
            PlanNode::Project {
                input, expressions, ..
            } => (Some(expressions), input.as_ref()),
            other => (None, other),
        };
        let (filter, below) = match below {
            PlanNode::Filter {
                input, predicate, ..
            } => (Some(predicate), input.as_ref()),
            other => (None, other),
        };
        let scan = match below {
            s @ PlanNode::TableScan { .. } => s,
            _ => return Ok(None),
        };
        if agg.is_none() && projections.is_none() && filter.is_none() {
            return Ok(None); // a bare scan has nothing to fuse
        }
        if presto_planner::fusion::chain_fallback(
            filter,
            projections.map(|p| p.as_slice()),
            agg.as_ref().map(|(g, a, _)| (g.as_slice(), a.as_slice())),
        )
        .is_some()
        {
            return Ok(None);
        }
        let PlanNode::TableScan {
            id,
            catalog,
            table,
            layout,
            table_schema,
            columns,
            predicate,
        } = scan
        else {
            unreachable!("matched above");
        };
        let connector = self.ctx.catalogs.catalog(catalog)?;
        let queue = SplitQueue::new();
        self.scans.push(ScanSource {
            node_id: *id,
            catalog: catalog.clone(),
            table: table.clone(),
            layout: layout.clone(),
            predicate: predicate.clone(),
            queue: Arc::clone(&queue),
        });
        let scan_schema = table_schema.project(columns);
        let fused_agg = agg
            .map(|(group_by, aggregates, agg_input)| -> Result<_> {
                Ok(crate::fused::FusedAggStage {
                    group_channels: group_by.clone(),
                    group_types: group_by
                        .iter()
                        .map(|&c| agg_input.data_type(c))
                        .collect(),
                    specs: specs_from_planner(aggregates)?,
                })
            })
            .transpose()?;
        let chain_spec = crate::fused::FusedChain {
            filter: filter.cloned(),
            explicit_project: projections.is_some(),
            projections: projections
                .cloned()
                .unwrap_or_else(|| identity_projections(&scan_schema)),
            agg: fused_agg,
        };
        let columns = columns.clone();
        let predicate = predicate.clone();
        let session = self.ctx.session.clone();
        let trace = self.ctx.trace.clone();
        let trace_pid = self.ctx.task_id.stage.query.0 as u32;
        let trace_tid = self.ctx.task_id.stage.stage;
        let dyn_filters = self.ctx.dynamic_filters.as_ref().and_then(|df| {
            let specs = df.specs_for_scan(*id);
            if specs.is_empty() {
                None
            } else {
                Some((Arc::clone(&df.registry), specs))
            }
        });
        let factory: OpFactory = Arc::new(move || {
            let mut op = crate::fused::FusedPipelineOperator::new(
                Arc::clone(&connector),
                Arc::clone(&queue),
                columns.clone(),
                predicate.clone(),
                &chain_spec,
                &session,
            );
            if let Some(trace) = &trace {
                op = op.with_trace(Arc::clone(trace), trace_pid, trace_tid);
            }
            if let Some((registry, specs)) = &dyn_filters {
                op = op.with_dynamic_filter(crate::dynfilter::ScanDynamicFilter::new(
                    Arc::clone(registry),
                    specs.clone(),
                    session.dynamic_filter_wait,
                ));
            }
            Ok(Box::new(op) as Box<dyn crate::operator::Operator>)
        });
        Ok(Some(Chain {
            factories: vec![factory],
            parallel: true,
            description: "FusedPipeline".to_string(),
        }))
    }

    /// A (possibly fused) scan pipeline start.
    fn compile_scan(
        &mut self,
        scan: &PlanNode,
        filter: Option<Expr>,
        projections: Option<Vec<Expr>>,
    ) -> Result<Chain> {
        let PlanNode::TableScan {
            id,
            catalog,
            table,
            layout,
            table_schema,
            columns,
            predicate,
        } = scan
        else {
            return Err(PrestoError::internal("compile_scan on non-scan node"));
        };
        let connector = self.ctx.catalogs.catalog(catalog)?;
        let queue = SplitQueue::new();
        self.scans.push(ScanSource {
            node_id: *id,
            catalog: catalog.clone(),
            table: table.clone(),
            layout: layout.clone(),
            predicate: predicate.clone(),
            queue: Arc::clone(&queue),
        });
        let scan_schema = table_schema.project(columns);
        let projections = projections.unwrap_or_else(|| identity_projections(&scan_schema));
        let columns = columns.clone();
        let predicate = predicate.clone();
        let session = self.ctx.session.clone();
        let trace = self.ctx.trace.clone();
        let trace_pid = self.ctx.task_id.stage.query.0 as u32;
        let trace_tid = self.ctx.task_id.stage.stage;
        // Dynamic filters targeting this scan (one consumer handle per
        // operator instance: counters stay per-driver, the deadline starts
        // at instantiation).
        let dyn_filters = self.ctx.dynamic_filters.as_ref().and_then(|df| {
            let specs = df.specs_for_scan(*id);
            if specs.is_empty() {
                None
            } else {
                Some((Arc::clone(&df.registry), specs))
            }
        });
        let factory: OpFactory = Arc::new(move || {
            let mut op = ScanOperator::new(
                Arc::clone(&connector),
                Arc::clone(&queue),
                columns.clone(),
                predicate.clone(),
                filter.as_ref(),
                &projections,
                &session,
            );
            if let Some(trace) = &trace {
                op = op.with_trace(Arc::clone(trace), trace_pid, trace_tid);
            }
            if let Some((registry, specs)) = &dyn_filters {
                op = op.with_dynamic_filter(crate::dynfilter::ScanDynamicFilter::new(
                    Arc::clone(registry),
                    specs.clone(),
                    session.dynamic_filter_wait,
                ));
            }
            Ok(Box::new(op) as Box<dyn crate::operator::Operator>)
        });
        Ok(Chain {
            factories: vec![factory],
            parallel: true,
            description: "ScanFilterProject".to_string(),
        })
    }
}

fn identity_projections(schema: &Schema) -> Vec<Expr> {
    schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| Expr::column(i, f.data_type))
        .collect()
}
