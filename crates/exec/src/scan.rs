//! The table-scan operator: split-driven, fused with filter + projection.
//!
//! Profiling in the paper (§IV-D2) shows most CPU goes to "decompressing,
//! decoding, filtering and applying transformations to data read from
//! connectors" — so the scan operator fuses the connector read with the
//! page processor (the `ScanFilterHash`/`ScanFilterProject` fusion of
//! Fig. 4), and leaf pipelines run many drivers sharing one
//! [`SplitQueue`].

use crossbeam::queue::SegQueue;
use presto_common::{Result, Session};
use presto_connector::{Connector, ScanOptions, Split};
use presto_expr::{Expr, PageProcessor};
use presto_page::Page;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::dynfilter::{split_pruned, ScanDynamicFilter};
use crate::operator::{BlockedReason, Operator};

/// Shared queue of splits assigned to a task. The coordinator appends
/// batches as the connector enumerates them (§IV-D3); scan drivers pull.
#[derive(Debug, Default)]
pub struct SplitQueue {
    splits: SegQueue<Split>,
    no_more: AtomicBool,
    queued: AtomicUsize,
    /// Completed split count + CPU, reported to the coordinator for the
    /// shortest-queue assignment heuristic.
    completed: AtomicU64,
}

impl SplitQueue {
    pub fn new() -> Arc<SplitQueue> {
        Arc::new(SplitQueue::default())
    }

    pub fn add(&self, split: Split) {
        // Note: retried splits may be re-added after no_more_splits; the
        // re-add happens before the exhaustion check, so no split is lost.
        self.splits.push(split);
        self.queued.fetch_add(1, Ordering::SeqCst);
    }

    pub fn no_more_splits(&self) {
        self.no_more.store(true, Ordering::SeqCst);
    }

    pub fn pop(&self) -> Option<Split> {
        let s = self.splits.pop();
        if s.is_some() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        s
    }

    /// Splits waiting to run — the coordinator assigns new splits to the
    /// task with the shortest queue (§IV-D3).
    pub fn queued_len(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    pub fn is_exhausted(&self) -> bool {
        self.no_more.load(Ordering::SeqCst) && self.splits.is_empty()
    }

    pub fn mark_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }
}

/// Fused scan → filter → project operator.
pub struct ScanOperator {
    connector: Arc<dyn Connector>,
    queue: Arc<SplitQueue>,
    options: ScanOptions,
    processor: PageProcessor,
    current: Option<Box<dyn presto_connector::PageSource>>,
    current_split: Option<Split>,
    retries_remaining: u32,
    max_retries: u32,
    finished: bool,
    rows_produced: u64,
    splits_processed: u64,
    /// Optional timeline: (buffer, pid, tid) for split start/finish events.
    trace: Option<(Arc<presto_common::TraceBuffer>, u32, u32)>,
    /// Join build-side domains pushed into this scan (dynamic filtering).
    dyn_filter: Option<Arc<ScanDynamicFilter>>,
}

impl ScanOperator {
    /// `filter`/`projections` operate over the scanned columns (the scan
    /// output channel space).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        connector: Arc<dyn Connector>,
        queue: Arc<SplitQueue>,
        columns: Vec<usize>,
        predicate: presto_connector::TupleDomain,
        filter: Option<&Expr>,
        projections: &[Expr],
        session: &Session,
    ) -> ScanOperator {
        let options = ScanOptions {
            columns,
            predicate,
            lazy: session.lazy_loading,
            target_page_rows: session.target_page_rows,
            dynamic_filter: None,
        };
        ScanOperator {
            connector,
            queue,
            options,
            processor: PageProcessor::new(filter, projections, session),
            current: None,
            current_split: None,
            retries_remaining: session.max_transient_retries,
            max_retries: session.max_transient_retries,
            finished: false,
            rows_produced: 0,
            splits_processed: 0,
            trace: None,
            dyn_filter: None,
        }
    }

    /// Attach a dynamic filter: the scan waits (bounded) for the join
    /// build-side domains, prunes splits/stripes/rows against them, and
    /// forwards the filter to the connector for stripe-level re-checks.
    pub fn with_dynamic_filter(mut self, filter: Arc<ScanDynamicFilter>) -> ScanOperator {
        self.options.dynamic_filter =
            Some(Arc::clone(&filter) as Arc<dyn presto_connector::DynamicFilter>);
        self.dyn_filter = Some(filter);
        self
    }

    pub fn with_trace(
        mut self,
        trace: Arc<presto_common::TraceBuffer>,
        pid: u32,
        tid: u32,
    ) -> ScanOperator {
        self.trace = Some((trace, pid, tid));
        self
    }

    pub fn rows_produced(&self) -> u64 {
        self.rows_produced
    }

    fn trace_split(&self, kind: presto_common::TraceKind) {
        if let Some((trace, pid, tid)) = &self.trace {
            trace.record(kind, *pid, *tid, self.splits_processed, 0);
        }
    }

    fn open_next_split(&mut self) -> Result<bool> {
        let split = loop {
            let Some(split) = self.queue.pop() else {
                return Ok(false);
            };
            // Re-prune assigned splits against the dynamic domain: filters
            // that arrived after split assignment still skip whole files.
            if let (Some(df), Some(summary)) = (&self.dyn_filter, &split.domain) {
                if let Some(dynamic) = df.table_domain() {
                    if split_pruned(&dynamic, summary) {
                        self.queue.mark_completed();
                        self.splits_processed += 1;
                        df.note_splits_pruned(1);
                        continue;
                    }
                }
            }
            break split;
        };
        match self
            .connector
            .page_source_factory()
            .create_source(&split, &self.options)
        {
            Ok(source) => {
                self.current = Some(source);
                self.current_split = Some(split);
                self.retries_remaining = self.max_retries;
                self.trace_split(presto_common::TraceKind::SplitStart);
                Ok(true)
            }
            Err(e) if e.is_retryable() && self.retries_remaining > 0 => {
                // Low-level retry (§IV-G): requeue the split and try again.
                self.retries_remaining -= 1;
                self.queue.add(split);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

impl Operator for ScanOperator {
    fn name(&self) -> &'static str {
        "ScanFilterProject"
    }

    fn needs_input(&self) -> bool {
        false // source operator: driven by splits, not pages
    }

    fn add_input(&mut self, _page: Page) -> Result<()> {
        unreachable!("scan operators take no input")
    }

    fn finish(&mut self) {
        // Sources finish when the split queue is exhausted.
    }

    fn output(&mut self) -> Result<Option<Page>> {
        loop {
            if self.finished {
                return Ok(None);
            }
            if let Some(df) = &self.dyn_filter {
                if !df.ready() {
                    // Bounded wait for build-side domains; blocked() keeps
                    // the driver polling, so an expired deadline simply
                    // resumes the scan unpruned.
                    return Ok(None);
                }
                if df.provably_empty() {
                    // Empty build side: the join emits nothing, so drain
                    // the queue without reading a byte.
                    while self.queue.pop().is_some() {
                        self.queue.mark_completed();
                        self.splits_processed += 1;
                        df.note_splits_pruned(1);
                    }
                    self.current = None;
                    self.current_split = None;
                    if self.queue.is_exhausted() {
                        self.finished = true;
                    }
                    return Ok(None);
                }
            }
            if self.current.is_none() && !self.open_next_split()? {
                if self.queue.is_exhausted() {
                    self.finished = true;
                }
                return Ok(None);
            }
            let source = self.current.as_mut().expect("split open");
            match source.next_page() {
                Ok(Some(page)) => {
                    let page = match &self.dyn_filter {
                        // Row-level membership check before any downstream
                        // work (filter/project, shuffle, probe).
                        Some(df) => df.prune_rows(page),
                        None => page,
                    };
                    if page.row_count() == 0 {
                        continue;
                    }
                    let processed = self.processor.process(&page)?;
                    if processed.is_empty() && processed.column_count() > 0 {
                        continue; // fully filtered; pull the next page
                    }
                    if processed.row_count() == 0 {
                        continue;
                    }
                    self.rows_produced += processed.row_count() as u64;
                    return Ok(Some(processed));
                }
                Ok(None) => {
                    self.current = None;
                    self.current_split = None;
                    self.queue.mark_completed();
                    self.splits_processed += 1;
                    self.trace_split(presto_common::TraceKind::SplitFinish);
                    continue;
                }
                Err(e) if e.is_retryable() && self.retries_remaining > 0 => {
                    // Retry the whole split from scratch.
                    self.retries_remaining -= 1;
                    let split = self.current_split.take().expect("split open");
                    self.current = None;
                    self.queue.add(split);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if !self.finished {
            if let Some(df) = &self.dyn_filter {
                if !df.ready() {
                    return Some(BlockedReason::WaitingForInput);
                }
            }
        }
        if !self.finished && self.current.is_none() && self.queue.queued_len() == 0 {
            Some(BlockedReason::WaitingForInput)
        } else {
            None
        }
    }

    fn system_memory_bytes(&self) -> usize {
        // Connector read buffers: charge a token per open source.
        if self.current.is_some() {
            64 * 1024
        } else {
            0
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut counters = vec![
            ("splits_processed", self.splits_processed),
            ("rows_produced", self.rows_produced),
        ];
        if let Some(df) = &self.dyn_filter {
            counters.extend(df.counters());
        }
        counters
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};
    use presto_connectors::{ChaosConnector, MemoryConnector};
    use presto_expr::CmpOp;

    fn data_connector(rows: i64) -> Arc<MemoryConnector> {
        let c = MemoryConnector::new();
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| vec![Value::Bigint(i), Value::Bigint(i * 10)])
            .collect();
        // several pages so the split queue has multiple entries
        let pages: Vec<Page> = data
            .chunks(100)
            .map(|chunk| Page::from_rows(&schema, chunk))
            .collect();
        c.load_table("t", schema, pages);
        c
    }

    fn feed_splits(c: &dyn Connector, queue: &SplitQueue) {
        let mut src = c
            .split_source("t", "default", &presto_connector::TupleDomain::all())
            .unwrap();
        while !src.is_finished() {
            for s in src.next_batch(16).unwrap() {
                queue.add(s);
            }
        }
        queue.no_more_splits();
    }

    #[test]
    fn scans_and_filters() {
        let c = data_connector(1000);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let session = Session::default();
        let filter = Expr::cmp(
            CmpOp::Ge,
            Expr::column(0, DataType::Bigint),
            Expr::literal(990i64),
        );
        let proj = vec![Expr::column(1, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            presto_connector::TupleDomain::all(),
            Some(&filter),
            &proj,
            &session,
        );
        let mut rows = 0;
        while !scan.is_finished() {
            if let Some(page) = scan.output().unwrap() {
                rows += page.row_count();
                assert!(page.block(0).i64_at(0) >= 9900);
            }
        }
        assert_eq!(rows, 10);
    }

    #[test]
    fn transient_failures_are_retried() {
        let c = data_connector(2000); // several pages → several splits
        let chaos = ChaosConnector::new(c as Arc<dyn Connector>, 2, 0);
        let queue = SplitQueue::new();
        feed_splits(chaos.as_ref(), &queue);
        let session = Session::default();
        let proj = vec![Expr::column(0, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            Arc::clone(&chaos) as Arc<dyn Connector>,
            queue,
            vec![0],
            presto_connector::TupleDomain::all(),
            None,
            &proj,
            &session,
        );
        let mut rows = 0;
        let mut guard = 0;
        while !scan.is_finished() {
            guard += 1;
            assert!(guard < 10_000, "scan did not converge");
            if let Some(page) = scan.output().unwrap() {
                rows += page.row_count();
            }
        }
        assert_eq!(rows, 2000, "all rows survive injected transient failures");
        assert!(chaos.injected_failures() > 0);
    }

    #[test]
    fn blocked_until_splits_arrive() {
        let c = data_connector(10);
        let queue = SplitQueue::new();
        let session = Session::default();
        let proj = vec![Expr::column(0, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            Arc::clone(&c) as Arc<dyn Connector>,
            Arc::clone(&queue),
            vec![0],
            presto_connector::TupleDomain::all(),
            None,
            &proj,
            &session,
        );
        assert!(scan.output().unwrap().is_none());
        assert_eq!(scan.blocked(), Some(BlockedReason::WaitingForInput));
        assert!(!scan.is_finished());
        feed_splits(c.as_ref(), &queue);
        let mut rows = 0;
        while !scan.is_finished() {
            if let Some(p) = scan.output().unwrap() {
                rows += p.row_count();
            }
        }
        assert_eq!(rows, 10);
    }

    use presto_common::PlanNodeId;

    fn scan_spec(join: PlanNodeId) -> presto_planner::DynamicFilterSpec {
        presto_planner::DynamicFilterSpec {
            join,
            join_fragment: 0,
            scan: PlanNodeId(2),
            scan_fragment: 1,
            broadcast: false,
            keys: vec![Some(presto_planner::DynamicFilterKey {
                key_index: 0,
                scan_channel: 0,
                table_column: 0,
                data_type: DataType::Bigint,
            })],
        }
    }

    fn report_build_keys(
        registry: &crate::dynfilter::DynamicFilterRegistry,
        join: PlanNodeId,
        keys: &[i64],
    ) {
        use crate::dynfilter::DomainCollector;
        let schema = Schema::of(&[("k", DataType::Bigint)]);
        let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Bigint(k)]).collect();
        let mut collector = DomainCollector::new(vec![0], vec![DataType::Bigint], 100);
        if !rows.is_empty() {
            let page = Page::from_rows(&schema, &rows);
            let hashes = presto_page::hash::hash_columns(&page, &[0]);
            for (i, &h) in hashes.iter().enumerate() {
                collector.add_row(&page, i, h);
            }
        }
        registry.report(join, collector.finish());
    }

    #[test]
    fn dynamic_filter_gates_then_prunes_rows() {
        use crate::dynfilter::{DynamicFilterRegistry, ScanDynamicFilter};
        use presto_common::PlanNodeId;
        let c = data_connector(1000);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let session = Session::default();
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(1);
        registry.register(join, 1);
        let df = ScanDynamicFilter::new(
            Arc::clone(&registry),
            vec![scan_spec(join)],
            std::time::Duration::from_secs(5),
        );
        let proj = vec![Expr::column(0, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            presto_connector::TupleDomain::all(),
            None,
            &proj,
            &session,
        )
        .with_dynamic_filter(Arc::clone(&df));
        // Gate: domains not published yet → the scan yields, blocked.
        assert!(scan.output().unwrap().is_none());
        assert_eq!(scan.blocked(), Some(BlockedReason::WaitingForInput));
        assert!(!scan.is_finished());
        report_build_keys(&registry, join, &[5, 42]);
        let mut rows = 0;
        while !scan.is_finished() {
            if let Some(p) = scan.output().unwrap() {
                rows += p.row_count();
            }
        }
        assert_eq!(rows, 2, "only build-side keys survive the scan");
        let counters = scan.counters();
        let filtered = counters
            .iter()
            .find(|(n, _)| *n == "df_rows_filtered")
            .map(|&(_, v)| v);
        assert_eq!(filtered, Some(998));
    }

    #[test]
    fn empty_build_side_makes_scan_noop() {
        use crate::dynfilter::{DynamicFilterRegistry, ScanDynamicFilter};
        use presto_common::PlanNodeId;
        let c = data_connector(500);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let splits = queue.queued_len() as u64;
        assert!(splits > 0);
        let session = Session::default();
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(1);
        registry.register(join, 1);
        report_build_keys(&registry, join, &[]);
        let df = ScanDynamicFilter::new(
            Arc::clone(&registry),
            vec![scan_spec(join)],
            std::time::Duration::from_secs(5),
        );
        let proj = vec![Expr::column(0, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            Arc::clone(&c) as Arc<dyn Connector>,
            Arc::clone(&queue),
            vec![0, 1],
            presto_connector::TupleDomain::all(),
            None,
            &proj,
            &session,
        )
        .with_dynamic_filter(Arc::clone(&df));
        while !scan.is_finished() {
            assert!(scan.output().unwrap().is_none(), "no page is ever read");
        }
        assert_eq!(queue.completed(), splits, "splits completed without reads");
        let counters = scan.counters();
        let pruned = counters
            .iter()
            .find(|(n, _)| *n == "df_splits_pruned")
            .map(|&(_, v)| v);
        assert_eq!(pruned, Some(splits));
    }

    #[test]
    fn expired_wait_deadline_scans_unpruned() {
        use crate::dynfilter::{DynamicFilterRegistry, ScanDynamicFilter};
        use presto_common::PlanNodeId;
        let c = data_connector(100);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let session = Session::default();
        let registry = DynamicFilterRegistry::new();
        let join = PlanNodeId(1);
        registry.register(join, 1); // never reported: the "failed worker" case
        let df = ScanDynamicFilter::new(
            Arc::clone(&registry),
            vec![scan_spec(join)],
            std::time::Duration::from_millis(20),
        );
        let proj = vec![Expr::column(0, DataType::Bigint)];
        let mut scan = ScanOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            presto_connector::TupleDomain::all(),
            None,
            &proj,
            &session,
        )
        .with_dynamic_filter(df);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut rows = 0;
        while !scan.is_finished() {
            if let Some(p) = scan.output().unwrap() {
                rows += p.row_count();
            }
        }
        assert_eq!(rows, 100, "deadline expiry falls back to a full scan");
    }

    #[test]
    fn shortest_queue_metric() {
        let queue = SplitQueue::new();
        assert_eq!(queue.queued_len(), 0);
        let c = data_connector(300);
        feed_splits(c.as_ref(), &queue);
        assert!(queue.queued_len() > 0);
    }
}
