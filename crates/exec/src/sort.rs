//! Sorting: full sort (with spill-to-disk runs) and bounded TopN.

use presto_common::Result;
use presto_page::Page;
use presto_planner::SortKey;
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::operator::Operator;
use crate::spill::{SpillManager, SpillRun};

/// Compare two rows (possibly across pages) under a key set.
pub fn compare_rows(a: &Page, arow: usize, b: &Page, brow: usize, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let (ab, bb) = (a.block(k.channel), b.block(k.channel));
        let (an, bn) = (ab.is_null(arow), bb.is_null(brow));
        let ord = match (an, bn) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let natural = ab.compare_at(arow, bb, brow);
                if k.ascending {
                    natural
                } else {
                    natural.reverse()
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a single page by keys, returning the permuted page.
pub fn sort_page(page: &Page, keys: &[SortKey]) -> Page {
    let mut order: Vec<u32> = (0..page.row_count() as u32).collect();
    order.sort_by(|&a, &b| compare_rows(page, a as usize, page, b as usize, keys));
    page.filter(&order)
}

/// Full in-memory sort with optional spill of sorted runs (§IV-F2: "Presto
/// supports spilling for … aggregations"; sorts use the same mechanism).
pub struct SortOperator {
    keys: Vec<SortKey>,
    buffered: Vec<Page>,
    buffered_bytes: usize,
    input_done: bool,
    outputs: VecDeque<Page>,
    produced: bool,
    spill_enabled: bool,
    spill: Arc<SpillManager>,
    spill_runs: Vec<SpillRun>,
    spilled_bytes_total: u64,
    spill_events: u64,
}

impl SortOperator {
    pub fn new(keys: Vec<SortKey>, spill_enabled: bool) -> SortOperator {
        SortOperator {
            keys,
            buffered: Vec::new(),
            buffered_bytes: 0,
            input_done: false,
            outputs: VecDeque::new(),
            produced: false,
            spill_enabled,
            spill: SpillManager::new(None, 0),
            spill_runs: Vec::new(),
            spilled_bytes_total: 0,
            spill_events: 0,
        }
    }

    /// Spill through the task's shared [`SpillManager`] (directory, disk
    /// budget, abort cleanup) instead of a private default one.
    pub fn with_spill_manager(mut self, spill: Arc<SpillManager>) -> SortOperator {
        self.spill = spill;
        self
    }

    fn sorted_buffered(&mut self) -> Page {
        let all = Page::concat(&self.buffered);
        self.buffered.clear();
        self.buffered_bytes = 0;
        sort_page(&all, &self.keys)
    }

    fn chunk_out(&mut self, page: Page) {
        let chunk = 8192usize;
        let mut start = 0;
        while start < page.row_count() {
            let end = (start + chunk).min(page.row_count());
            let positions: Vec<u32> = (start as u32..end as u32).collect();
            self.outputs.push_back(page.filter(&positions));
            start = end;
        }
        if page.row_count() == 0 {
            self.outputs.push_back(page);
        }
    }
}

impl Operator for SortOperator {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.buffered_bytes += page.size_in_bytes();
        self.buffered.push(page.load_all());
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if let Some(p) = self.outputs.pop_front() {
            return Ok(Some(p));
        }
        if !self.input_done || self.produced {
            return Ok(None);
        }
        self.produced = true;
        let in_memory = self.sorted_buffered();
        if self.spill_runs.is_empty() {
            if in_memory.row_count() > 0 {
                self.chunk_out(in_memory);
            }
            return Ok(self.outputs.pop_front());
        }
        // Merge spilled sorted runs with the in-memory run. Empty runs are
        // dropped — a zero-row page has no column layout to contribute.
        let mut runs: Vec<Page> = Vec::new();
        if in_memory.row_count() > 0 {
            runs.push(in_memory);
        }
        for run in std::mem::take(&mut self.spill_runs) {
            // Checksums verified per record; the file is deleted on consume
            // (or by the run's drop if an error unwinds out of here).
            let pages = run.into_pages()?;
            runs.push(Page::concat(&pages));
        }
        // K-way merge by repeatedly taking the least head.
        let mut cursors = vec![0usize; runs.len()];
        let total: usize = runs.iter().map(Page::row_count).sum();
        let mut order: Vec<(usize, u32)> = Vec::with_capacity(total); // (run, row)
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (r, run) in runs.iter().enumerate() {
                if cursors[r] >= run.row_count() {
                    continue;
                }
                best = Some(match best {
                    None => r,
                    Some(b) => {
                        if compare_rows(run, cursors[r], &runs[b], cursors[b], &self.keys)
                            == Ordering::Less
                        {
                            r
                        } else {
                            b
                        }
                    }
                });
            }
            let r = best.expect("rows remaining");
            order.push((r, cursors[r] as u32));
            cursors[r] += 1;
        }
        // Materialize per-run gathers, then interleave.
        // Simpler: build one concatenated page and a global permutation.
        let offsets: Vec<u32> = {
            let mut off = Vec::with_capacity(runs.len());
            let mut acc = 0u32;
            for run in &runs {
                off.push(acc);
                acc += run.row_count() as u32;
            }
            off
        };
        let combined = Page::concat(&runs);
        let permutation: Vec<u32> = order.iter().map(|&(r, row)| offsets[r] + row).collect();
        let merged = combined.filter(&permutation);
        if merged.row_count() > 0 {
            self.chunk_out(merged);
        }
        Ok(self.outputs.pop_front())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.produced && self.outputs.is_empty()
    }

    fn user_memory_bytes(&self) -> usize {
        self.buffered_bytes
    }

    fn can_revoke_memory(&self) -> bool {
        self.spill_enabled && !self.buffered.is_empty()
    }

    fn revoke_memory(&mut self) -> Result<u64> {
        if !self.can_revoke_memory() {
            return Ok(0);
        }
        let freed = self.buffered_bytes as u64;
        let sorted = self.sorted_buffered();
        let mut run = self.spill.create_run("sort");
        self.spilled_bytes_total += run.append(&sorted)?;
        self.spill_events += 1;
        self.spill_runs.push(run);
        Ok(freed)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("spilled_bytes", self.spilled_bytes_total),
            ("spill_events", self.spill_events),
        ]
    }
}

/// Bounded TopN: keeps only the best N rows seen so far.
pub struct TopNOperator {
    keys: Vec<SortKey>,
    count: usize,
    /// Current candidates, re-compacted as input arrives.
    current: Option<Page>,
    input_done: bool,
    produced: bool,
}

impl TopNOperator {
    pub fn new(keys: Vec<SortKey>, count: u64) -> TopNOperator {
        TopNOperator {
            keys,
            count: count as usize,
            current: None,
            input_done: false,
            produced: false,
        }
    }
}

impl Operator for TopNOperator {
    fn name(&self) -> &'static str {
        "TopN"
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        let combined = match self.current.take() {
            Some(cur) => Page::concat(&[cur, page.load_all()]),
            None => page.load_all(),
        };
        let sorted = sort_page(&combined, &self.keys);
        self.current = Some(sorted.truncate(self.count));
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if !self.input_done || self.produced {
            return Ok(None);
        }
        self.produced = true;
        Ok(self.current.take())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.produced
    }

    fn user_memory_bytes(&self) -> usize {
        self.current.as_ref().map_or(0, Page::size_in_bytes)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::Schema;
    use presto_common::{DataType, Value};

    fn page(vals: &[Option<i64>]) -> Page {
        let schema = Schema::of(&[("x", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &vals
                .iter()
                .map(|v| vec![v.map(Value::Bigint).unwrap_or(Value::Null)])
                .collect::<Vec<_>>(),
        )
    }

    fn key(asc: bool, nulls_first: bool) -> Vec<SortKey> {
        vec![SortKey {
            channel: 0,
            ascending: asc,
            nulls_first,
        }]
    }

    fn drain(op: &mut dyn Operator) -> Vec<Option<i64>> {
        let mut out = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                out.push(if p.block(0).is_null(i) {
                    None
                } else {
                    Some(p.block(0).i64_at(i))
                });
            }
        }
        out
    }

    #[test]
    fn sorts_with_null_placement() {
        let mut op = SortOperator::new(key(true, false), false);
        op.add_input(page(&[Some(3), None, Some(1)])).unwrap();
        op.add_input(page(&[Some(2)])).unwrap();
        op.finish();
        assert_eq!(drain(&mut op), vec![Some(1), Some(2), Some(3), None]);
        let mut op = SortOperator::new(key(false, true), false);
        op.add_input(page(&[Some(3), None, Some(1)])).unwrap();
        op.finish();
        assert_eq!(drain(&mut op), vec![None, Some(3), Some(1)]);
    }

    #[test]
    fn spilled_sort_matches_in_memory() {
        let data: Vec<Option<i64>> = (0..1000).map(|i| Some((i * 37) % 500)).collect();
        let run = |spill: bool| -> Vec<Option<i64>> {
            let mut op = SortOperator::new(key(true, false), spill);
            op.add_input(page(&data[..400])).unwrap();
            if spill {
                assert!(op.revoke_memory().unwrap() > 0);
                assert_eq!(op.user_memory_bytes(), 0);
            }
            op.add_input(page(&data[400..800])).unwrap();
            if spill {
                op.revoke_memory().unwrap();
            }
            op.add_input(page(&data[800..])).unwrap();
            op.finish();
            drain(&mut op)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn topn_keeps_best_bounded() {
        let mut op = TopNOperator::new(key(false, false), 3);
        op.add_input(page(&[Some(5), Some(1), Some(9)])).unwrap();
        op.add_input(page(&[Some(7), Some(2)])).unwrap();
        // Memory stays bounded by N rows regardless of input size.
        assert!(op.user_memory_bytes() < 1024);
        op.finish();
        assert_eq!(drain(&mut op), vec![Some(9), Some(7), Some(5)]);
    }

    #[test]
    fn empty_input_sorts_to_nothing() {
        let mut op = SortOperator::new(key(true, false), false);
        op.finish();
        assert_eq!(drain(&mut op), Vec::<Option<i64>>::new());
        assert!(op.is_finished());
    }
}
