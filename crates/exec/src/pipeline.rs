//! Fragment → pipelines compilation (Fig. 4).
//!
//! "A task may have multiple pipelines within it … a task performing a
//! hash-join must contain at least two pipelines; one to build the hash
//! table (build pipeline), and one to stream data from the probe side and
//! perform the join (probe pipeline). When the optimizer determines that
//! part of a pipeline would benefit from increased local parallelism, it
//! can split up the pipeline and parallelize that part independently."
//!
//! Pipelines are described as *operator factories* so that a pipeline can
//! be instantiated once per driver: leaf (split-driven) pipelines run
//! [`Pipeline::driver_count`] parallel drivers sharing the split queue —
//! the intra-node parallelism of §IV-C4.

use parking_lot::Mutex;
use presto_common::Result;
use presto_page::Page;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::operator::{BlockedReason, Operator};

/// Builds one operator instance for one driver.
pub type OpFactory = Arc<dyn Fn() -> Result<Box<dyn Operator>> + Send + Sync>;

/// One pipeline: a chain of operator factories plus its parallelism.
pub struct Pipeline {
    pub factories: Vec<OpFactory>,
    pub driver_count: usize,
    /// Human-readable chain, for EXPLAIN ANALYZE-style output.
    pub description: String,
}

impl Pipeline {
    /// Instantiate the operator chain for one driver.
    pub fn instantiate(&self) -> Result<Vec<Box<dyn Operator>>> {
        self.factories.iter().map(|f| f()).collect()
    }
}

/// A local, in-task page queue linking pipelines (the "local shuffle" of
/// Fig. 4 and the merge point for UNION ALL).
pub struct LocalQueue {
    pages: Mutex<VecDeque<Page>>,
    producers: AtomicUsize,
    bytes: AtomicUsize,
    capacity: usize,
}

impl LocalQueue {
    pub fn new(producers: usize, capacity: usize) -> Arc<LocalQueue> {
        Arc::new(LocalQueue {
            pages: Mutex::new(VecDeque::new()),
            producers: AtomicUsize::new(producers.max(1)),
            bytes: AtomicUsize::new(0),
            capacity,
        })
    }

    fn push(&self, page: Page) {
        self.bytes
            .fetch_add(page.size_in_bytes(), Ordering::Relaxed);
        self.pages.lock().push_back(page);
    }

    fn pop(&self) -> Option<Page> {
        let page = self.pages.lock().pop_front()?;
        self.bytes
            .fetch_sub(page.size_in_bytes(), Ordering::Relaxed);
        Some(page)
    }

    fn has_capacity(&self) -> bool {
        self.bytes.load(Ordering::Relaxed) < self.capacity
    }

    fn producer_done(&self) {
        self.producers.fetch_sub(1, Ordering::SeqCst);
    }

    fn all_producers_done(&self) -> bool {
        self.producers.load(Ordering::SeqCst) == 0
    }
}

/// Sink writing into a [`LocalQueue`].
pub struct LocalQueueSink {
    queue: Arc<LocalQueue>,
    done: bool,
}

impl LocalQueueSink {
    pub fn new(queue: Arc<LocalQueue>) -> LocalQueueSink {
        LocalQueueSink { queue, done: false }
    }
}

impl Operator for LocalQueueSink {
    fn name(&self) -> &'static str {
        "LocalQueueSink"
    }

    fn needs_input(&self) -> bool {
        !self.done && self.queue.has_capacity()
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.queue.push(page);
        Ok(())
    }

    fn finish(&mut self) {
        if !self.done {
            self.done = true;
            self.queue.producer_done();
        }
    }

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(None)
    }

    fn is_finished(&self) -> bool {
        self.done
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if !self.done && !self.queue.has_capacity() {
            Some(BlockedReason::OutputFull)
        } else {
            None
        }
    }
}

/// Source reading from a [`LocalQueue`].
pub struct LocalQueueSource {
    queue: Arc<LocalQueue>,
}

impl LocalQueueSource {
    pub fn new(queue: Arc<LocalQueue>) -> LocalQueueSource {
        LocalQueueSource { queue }
    }
}

impl Operator for LocalQueueSource {
    fn name(&self) -> &'static str {
        "LocalQueueSource"
    }

    fn needs_input(&self) -> bool {
        false
    }

    fn add_input(&mut self, _page: Page) -> Result<()> {
        unreachable!("local queue sources take no direct input")
    }

    fn finish(&mut self) {}

    fn output(&mut self) -> Result<Option<Page>> {
        Ok(self.queue.pop())
    }

    fn is_finished(&self) -> bool {
        self.queue.all_producers_done() && self.queue.pages.lock().is_empty()
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if self.is_finished() {
            None
        } else {
            Some(BlockedReason::WaitingForInput)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn page(v: i64) -> Page {
        Page::from_rows(
            &Schema::of(&[("x", DataType::Bigint)]),
            &[vec![Value::Bigint(v)]],
        )
    }

    #[test]
    fn queue_links_producers_to_consumer() {
        let q = LocalQueue::new(2, 1 << 20);
        let mut s1 = LocalQueueSink::new(Arc::clone(&q));
        let mut s2 = LocalQueueSink::new(Arc::clone(&q));
        let mut src = LocalQueueSource::new(Arc::clone(&q));
        s1.add_input(page(1)).unwrap();
        s2.add_input(page(2)).unwrap();
        s1.finish();
        assert!(!src.is_finished(), "still one producer open");
        s2.finish();
        let mut got = Vec::new();
        while let Some(p) = src.output().unwrap() {
            got.push(p.block(0).i64_at(0));
        }
        assert_eq!(got.len(), 2);
        assert!(src.is_finished());
    }

    #[test]
    fn queue_backpressure() {
        let q = LocalQueue::new(1, 16);
        let mut sink = LocalQueueSink::new(Arc::clone(&q));
        while sink.needs_input() {
            sink.add_input(page(7)).unwrap();
        }
        assert_eq!(sink.blocked(), Some(BlockedReason::OutputFull));
        q.pop();
        // Draining below capacity unblocks eventually.
        while q.pop().is_some() {}
        assert!(sink.needs_input());
    }
}
