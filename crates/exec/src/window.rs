//! The window operator: partitions, sorts, and evaluates window functions.

use presto_common::Result;
use presto_page::{Block, Page};
use presto_planner::plan::WindowFnSpec;
use presto_planner::SortKey;
use std::collections::VecDeque;

use crate::operator::Operator;
use crate::sort::{compare_rows, sort_page};

/// Accumulates its input (one hash partition of the data), then sorts by
/// (partition keys, order keys) and evaluates each function per partition.
pub struct WindowOperator {
    partition_by: Vec<usize>,
    order_by: Vec<SortKey>,
    functions: Vec<WindowFnSpec>,
    buffered: Vec<Page>,
    buffered_bytes: usize,
    input_done: bool,
    outputs: VecDeque<Page>,
    produced: bool,
}

impl WindowOperator {
    pub fn new(
        partition_by: Vec<usize>,
        order_by: Vec<SortKey>,
        functions: Vec<WindowFnSpec>,
    ) -> WindowOperator {
        WindowOperator {
            partition_by,
            order_by,
            functions,
            buffered: Vec::new(),
            buffered_bytes: 0,
            input_done: false,
            outputs: VecDeque::new(),
            produced: false,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let all = Page::concat(&std::mem::take(&mut self.buffered));
        self.buffered_bytes = 0;
        if all.row_count() == 0 {
            return Ok(());
        }
        // Sort by partition keys then order keys.
        let mut keys: Vec<SortKey> = self
            .partition_by
            .iter()
            .map(|&c| SortKey {
                channel: c,
                ascending: true,
                nulls_first: false,
            })
            .collect();
        keys.extend(self.order_by.iter().copied());
        let sorted = sort_page(&all, &keys);
        let rows = sorted.row_count();
        // Partition boundaries.
        let partition_keys: Vec<SortKey> = self
            .partition_by
            .iter()
            .map(|&c| SortKey {
                channel: c,
                ascending: true,
                nulls_first: false,
            })
            .collect();
        let mut boundaries = vec![0usize];
        for i in 1..rows {
            if compare_rows(&sorted, i - 1, &sorted, i, &partition_keys)
                != std::cmp::Ordering::Equal
            {
                boundaries.push(i);
            }
        }
        boundaries.push(rows);
        // Peer groups within partitions (equal order keys).
        let mut fn_columns: Vec<Vec<Block>> = vec![Vec::new(); self.functions.len()];
        for w in boundaries.windows(2) {
            let (start, end) = (w[0], w[1]);
            let len = end - start;
            let mut peers = vec![0u32; len];
            let mut group = 0u32;
            for i in 1..len {
                if compare_rows(&sorted, start + i - 1, &sorted, start + i, &self.order_by)
                    != std::cmp::Ordering::Equal
                {
                    group += 1;
                }
                peers[i] = group;
            }
            let positions: Vec<u32> = (start as u32..end as u32).collect();
            for (fi, f) in self.functions.iter().enumerate() {
                let input = f.input.map(|c| sorted.block(c).filter(&positions));
                let block = f.function.evaluate_partition(len, &peers, input.as_ref())?;
                fn_columns[fi].push(block);
            }
        }
        // Assemble output: sorted input columns + one appended column per fn.
        let mut blocks: Vec<Block> = sorted.blocks().to_vec();
        for cols in fn_columns {
            // Concatenate this function's per-partition blocks in order.
            let pages: Vec<Page> = cols.into_iter().map(|b| Page::new(vec![b])).collect();
            let merged = Page::concat(&pages);
            blocks.push(merged.block(0).clone());
        }
        self.outputs.push_back(Page::new(blocks));
        Ok(())
    }
}

impl Operator for WindowOperator {
    fn name(&self) -> &'static str {
        "Window"
    }

    fn needs_input(&self) -> bool {
        !self.input_done
    }

    fn add_input(&mut self, page: Page) -> Result<()> {
        self.buffered_bytes += page.size_in_bytes();
        self.buffered.push(page.load_all());
        Ok(())
    }

    fn finish(&mut self) {
        self.input_done = true;
    }

    fn output(&mut self) -> Result<Option<Page>> {
        if let Some(p) = self.outputs.pop_front() {
            return Ok(Some(p));
        }
        if !self.input_done || self.produced {
            return Ok(None);
        }
        self.produced = true;
        self.compute()?;
        Ok(self.outputs.pop_front())
    }

    fn is_finished(&self) -> bool {
        self.input_done && self.produced && self.outputs.is_empty()
    }

    fn user_memory_bytes(&self) -> usize {
        self.buffered_bytes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};
    use presto_expr::WindowFunction;

    fn sales_page() -> Page {
        let schema = Schema::of(&[("region", DataType::Varchar), ("amount", DataType::Bigint)]);
        Page::from_rows(
            &schema,
            &[
                vec![Value::varchar("east"), Value::Bigint(10)],
                vec![Value::varchar("west"), Value::Bigint(30)],
                vec![Value::varchar("east"), Value::Bigint(20)],
                vec![Value::varchar("west"), Value::Bigint(30)],
                vec![Value::varchar("west"), Value::Bigint(5)],
            ],
        )
    }

    #[test]
    fn rank_per_partition() {
        let mut op = WindowOperator::new(
            vec![0],
            vec![SortKey {
                channel: 1,
                ascending: false,
                nulls_first: false,
            }],
            vec![WindowFnSpec {
                function: WindowFunction::Rank,
                input: None,
                name: "r".into(),
            }],
        );
        op.add_input(sales_page()).unwrap();
        op.finish();
        let p = op.output().unwrap().unwrap();
        assert_eq!(p.column_count(), 3);
        // Collect (region, amount, rank) triples.
        let mut rows: Vec<(String, i64, i64)> = (0..p.row_count())
            .map(|i| {
                (
                    p.block(0).str_at(i).to_string(),
                    p.block(1).i64_at(i),
                    p.block(2).i64_at(i),
                )
            })
            .collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                ("east".into(), 10, 2),
                ("east".into(), 20, 1),
                ("west".into(), 5, 3),
                ("west".into(), 30, 1),
                ("west".into(), 30, 1), // ties share a rank
            ]
        );
    }

    #[test]
    fn cumulative_sum_over_partition() {
        let mut op = WindowOperator::new(
            vec![0],
            vec![SortKey {
                channel: 1,
                ascending: true,
                nulls_first: false,
            }],
            vec![WindowFnSpec {
                function: WindowFunction::Aggregate(
                    presto_expr::AggregateFunction::new(
                        presto_expr::AggregateKind::Sum,
                        Some(DataType::Bigint),
                    )
                    .unwrap(),
                ),
                input: Some(1),
                name: "s".into(),
            }],
        );
        op.add_input(sales_page()).unwrap();
        op.finish();
        let p = op.output().unwrap().unwrap();
        let mut rows: Vec<(String, i64, i64)> = (0..p.row_count())
            .map(|i| {
                (
                    p.block(0).str_at(i).to_string(),
                    p.block(1).i64_at(i),
                    p.block(2).i64_at(i),
                )
            })
            .collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                ("east".into(), 10, 10),
                ("east".into(), 20, 30),
                ("west".into(), 5, 5),
                ("west".into(), 30, 65), // peers (30, 30) share the total
                ("west".into(), 30, 65),
            ]
        );
    }

    #[test]
    fn empty_input_produces_nothing() {
        let mut op = WindowOperator::new(vec![], vec![], vec![]);
        op.finish();
        assert!(op.output().unwrap().is_none());
        assert!(op.is_finished());
    }
}
