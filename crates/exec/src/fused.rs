//! Whole-pipeline fused compiled execution.
//!
//! [`FusedPipelineOperator`] runs a planner-marked `TableScan → Filter →
//! Project [→ partial Aggregate]` chain (see `presto_planner::fusion`) as
//! one operator: the compiled filter produces a selection vector, the
//! monomorphized gather kernels below compact only the channels the
//! projections need, projections evaluate over surviving rows, and the
//! partial group-by is fed pages whose key hashes were computed while the
//! gathered values were still hot — via
//! [`GroupByHash::group_ids_prehashed`](crate::agg::GroupByHash::group_ids_prehashed).
//! No intermediate page ever crosses a driver-visible operator boundary,
//! and the selection/hash/id scratch buffers are reused across pages (one
//! allocation per split instead of one per page).
//!
//! Eligibility is decided by `presto_planner::fusion::chain_fallback`,
//! shared with the task compiler: chains the fused loop does not support
//! fall back to the discrete operators, so fusion is never
//! correctness-bearing (same discipline as dynamic filtering). The gather
//! kernels in [`kernels`] are the stage-kernel seam: a SIMD or accelerator
//! backend replaces these per-physical-type loops without touching the
//! split lifecycle or the aggregation hand-off.

use presto_common::{DataType, Result, Session};
use presto_connector::{Connector, ScanOptions, Split, TupleDomain};
use presto_expr::{CompiledExpr, Expr, PageProcessor};
use presto_page::hash::{hash_block_into, DictionaryHashCache};
use presto_page::{Block, Page};
use std::sync::Arc;

use crate::agg::{AggPhase, AggSpec, HashAggregationOperator};
use crate::dynfilter::{split_pruned, ScanDynamicFilter};
use crate::operator::{BlockedReason, Operator};
use crate::scan::SplitQueue;

/// The expressions of one fused chain, in the scan's channel space.
/// `projections` is never empty of meaning: chains without an explicit
/// projection node pass identity projections over the scan schema and set
/// `explicit_project` false (stage accounting only).
pub struct FusedChain {
    pub filter: Option<Expr>,
    pub projections: Vec<Expr>,
    pub explicit_project: bool,
    pub agg: Option<FusedAggStage>,
}

/// The partial-aggregation stage of a fused chain. Channels index the
/// projection output (the aggregate's input schema).
pub struct FusedAggStage {
    pub group_channels: Vec<usize>,
    pub group_types: Vec<DataType>,
    pub specs: Vec<AggSpec>,
}

/// Monomorphized gather kernels: one tight per-physical-type loop moving
/// surviving rows into a compacted block. Encoded blocks keep their
/// encoding — dictionaries gather ids and share the dictionary, RLE runs
/// re-wrap with the surviving count, lazy blocks compose position lists
/// without loading — so downstream dictionary/RLE fast paths (projection
/// speculation, group-by entry caches) still fire.
mod kernels {
    use presto_page::blocks::{
        BoolBlock, DoubleBlock, LongBlock, NullMask, RleBlock, VarcharBlock,
    };
    use presto_page::Block;
    use std::sync::Arc;

    fn gather_nulls(mask: &NullMask, sel: &[u32]) -> NullMask {
        let m = mask.as_ref()?;
        let mut out = Vec::with_capacity(sel.len());
        let mut any = false;
        for &p in sel {
            let n = m[p as usize];
            any |= n;
            out.push(n);
        }
        if any {
            Some(out)
        } else {
            None
        }
    }

    /// One monomorphized value loop per flat block type.
    macro_rules! gather_flat {
        ($b:expr, $sel:expr, $variant:ident, $Block:ident) => {{
            let mut values = Vec::with_capacity($sel.len());
            for &p in $sel {
                values.push($b.values[p as usize]);
            }
            Block::$variant($Block {
                values,
                nulls: gather_nulls(&$b.nulls, $sel),
            })
        }};
    }

    pub fn gather_block(block: &Block, sel: &[u32]) -> Block {
        match block {
            Block::Long(b) => gather_flat!(b, sel, Long, LongBlock),
            Block::Double(b) => gather_flat!(b, sel, Double, DoubleBlock),
            Block::Bool(b) => gather_flat!(b, sel, Bool, BoolBlock),
            Block::Varchar(b) => {
                let mut offsets = Vec::with_capacity(sel.len() + 1);
                let mut bytes = Vec::new();
                offsets.push(0u32);
                for &p in sel {
                    let (s, e) = (
                        b.offsets[p as usize] as usize,
                        b.offsets[p as usize + 1] as usize,
                    );
                    bytes.extend_from_slice(&b.bytes[s..e]);
                    offsets.push(bytes.len() as u32);
                }
                Block::Varchar(VarcharBlock {
                    offsets,
                    bytes,
                    nulls: gather_nulls(&b.nulls, sel),
                })
            }
            Block::Rle(r) => Block::Rle(RleBlock {
                value: Arc::clone(&r.value),
                count: sel.len(),
            }),
            Block::Dictionary(d) => Block::Dictionary(d.filter(sel)),
            Block::Lazy(l) => Block::Lazy(l.filter_lazy(sel)),
        }
    }
}

/// Embedded partial-aggregation stage state.
struct FusedAgg {
    op: HashAggregationOperator,
    key_channels: Vec<usize>,
    /// Reused per-page row-hash buffer (keys hashed right after the gather,
    /// while the compacted blocks are hot).
    hash_buf: Vec<u64>,
    /// Reused all-zeros id buffer for the global-aggregation fast path: a
    /// group-by over no keys skips the hash table entirely.
    zero_ids: Vec<u32>,
    hash_cache: DictionaryHashCache,
    rows_in: u64,
}

/// Source operator executing a whole fused chain. Split lifecycle, dynamic
/// filtering, transient retries, and tracing mirror
/// [`ScanOperator`](crate::scan::ScanOperator) exactly; the per-page inner
/// loop replaces the discrete operator hand-offs.
pub struct FusedPipelineOperator {
    connector: Arc<dyn Connector>,
    queue: Arc<SplitQueue>,
    options: ScanOptions,
    filter: Option<CompiledExpr>,
    /// Scan channels referenced by the projections, ascending.
    needed: Vec<usize>,
    /// Whether `needed` is exactly `0..scan_columns` (gather is a move).
    needed_is_identity: bool,
    /// Projections remapped into the gathered channel space; evaluated by
    /// the page processor so its dictionary/RLE fast paths apply.
    projector: PageProcessor,
    agg: Option<FusedAgg>,
    /// Reused selection buffer.
    sel_buf: Vec<u32>,
    stage_count: u64,
    current: Option<Box<dyn presto_connector::PageSource>>,
    current_split: Option<Split>,
    retries_remaining: u32,
    max_retries: u32,
    finished: bool,
    scan_rows: u64,
    filter_rows: u64,
    project_rows: u64,
    rows_produced: u64,
    splits_processed: u64,
    trace: Option<(Arc<presto_common::TraceBuffer>, u32, u32)>,
    dyn_filter: Option<Arc<ScanDynamicFilter>>,
}

impl FusedPipelineOperator {
    pub fn new(
        connector: Arc<dyn Connector>,
        queue: Arc<SplitQueue>,
        columns: Vec<usize>,
        predicate: TupleDomain,
        chain: &FusedChain,
        session: &Session,
    ) -> FusedPipelineOperator {
        let scan_width = columns.len();
        let options = ScanOptions {
            columns,
            predicate,
            lazy: session.lazy_loading,
            target_page_rows: session.target_page_rows,
            dynamic_filter: None,
        };
        // Channels the projections actually read; filter-only channels are
        // never gathered.
        let mut needed: Vec<usize> = chain
            .projections
            .iter()
            .flat_map(|e| e.referenced_columns())
            .collect();
        needed.sort_unstable();
        needed.dedup();
        let mut map = vec![usize::MAX; scan_width];
        for (compact, &c) in needed.iter().enumerate() {
            map[c] = compact;
        }
        let remapped: Vec<Expr> = chain
            .projections
            .iter()
            .map(|e| e.remap_columns(&|c| map[c]))
            .collect();
        let needed_is_identity = needed.len() == scan_width;
        let stage_count = 1
            + u64::from(chain.filter.is_some())
            + u64::from(chain.explicit_project)
            + u64::from(chain.agg.is_some());
        let agg = chain.agg.as_ref().map(|a| FusedAgg {
            op: HashAggregationOperator::new(
                AggPhase::Partial,
                a.group_channels.clone(),
                a.group_types.clone(),
                a.specs.clone(),
                false,
            ),
            key_channels: a.group_channels.clone(),
            hash_buf: Vec::new(),
            zero_ids: Vec::new(),
            hash_cache: DictionaryHashCache::new(),
            rows_in: 0,
        });
        FusedPipelineOperator {
            connector,
            queue,
            options,
            filter: chain.filter.as_ref().map(CompiledExpr::compile),
            needed,
            needed_is_identity,
            projector: PageProcessor::new(None, &remapped, session),
            agg,
            sel_buf: Vec::new(),
            stage_count,
            current: None,
            current_split: None,
            retries_remaining: session.max_transient_retries,
            max_retries: session.max_transient_retries,
            finished: false,
            scan_rows: 0,
            filter_rows: 0,
            project_rows: 0,
            rows_produced: 0,
            splits_processed: 0,
            trace: None,
            dyn_filter: None,
        }
    }

    /// See [`ScanOperator::with_dynamic_filter`](crate::scan::ScanOperator::with_dynamic_filter).
    pub fn with_dynamic_filter(mut self, filter: Arc<ScanDynamicFilter>) -> FusedPipelineOperator {
        self.options.dynamic_filter =
            Some(Arc::clone(&filter) as Arc<dyn presto_connector::DynamicFilter>);
        self.dyn_filter = Some(filter);
        self
    }

    pub fn with_trace(
        mut self,
        trace: Arc<presto_common::TraceBuffer>,
        pid: u32,
        tid: u32,
    ) -> FusedPipelineOperator {
        self.trace = Some((trace, pid, tid));
        self
    }

    pub fn rows_produced(&self) -> u64 {
        self.rows_produced
    }

    fn trace_split(&self, kind: presto_common::TraceKind) {
        if let Some((trace, pid, tid)) = &self.trace {
            trace.record(kind, *pid, *tid, self.splits_processed, 0);
        }
    }

    fn open_next_split(&mut self) -> Result<bool> {
        let split = loop {
            let Some(split) = self.queue.pop() else {
                return Ok(false);
            };
            if let (Some(df), Some(summary)) = (&self.dyn_filter, &split.domain) {
                if let Some(dynamic) = df.table_domain() {
                    if split_pruned(&dynamic, summary) {
                        self.queue.mark_completed();
                        self.splits_processed += 1;
                        df.note_splits_pruned(1);
                        continue;
                    }
                }
            }
            break split;
        };
        match self
            .connector
            .page_source_factory()
            .create_source(&split, &self.options)
        {
            Ok(source) => {
                self.current = Some(source);
                self.current_split = Some(split);
                self.retries_remaining = self.max_retries;
                self.trace_split(presto_common::TraceKind::SplitStart);
                Ok(true)
            }
            Err(e) if e.is_retryable() && self.retries_remaining > 0 => {
                self.retries_remaining -= 1;
                self.queue.add(split);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Compact `page` to the needed channels under the current selection.
    /// `survivors == rows` moves blocks instead of gathering.
    fn compact(&self, page: Page, survivors: usize) -> Page {
        let rows = page.row_count();
        if self.needed.is_empty() {
            return Page::zero_column(survivors);
        }
        if survivors == rows {
            if self.needed_is_identity {
                return page;
            }
            let mut blocks: Vec<Option<Block>> =
                page.into_blocks().into_iter().map(Some).collect();
            return Page::new(
                self.needed
                    .iter()
                    .map(|&c| blocks[c].take().expect("each channel gathered once"))
                    .collect(),
            );
        }
        Page::new(
            self.needed
                .iter()
                .map(|&c| kernels::gather_block(page.block(c), &self.sel_buf))
                .collect(),
        )
    }

    /// The fused inner loop: filter → gather → project → partial aggregate.
    /// Returns a page only for chains without an aggregation stage; the
    /// aggregate's output is drained from [`Self::output`]'s loop head.
    fn process_page(&mut self, page: Page) -> Result<Option<Page>> {
        let rows = page.row_count();
        self.scan_rows += rows as u64;
        let survivors = match &self.filter {
            Some(f) => {
                f.eval_selection_into(&page, &mut self.sel_buf)?;
                self.sel_buf.len()
            }
            None => rows,
        };
        self.filter_rows += survivors as u64;
        if survivors == 0 {
            return Ok(None);
        }
        let compacted = self.compact(page, survivors);
        let projected = self.projector.process(&compacted)?;
        self.project_rows += projected.row_count() as u64;
        let Some(agg) = self.agg.as_mut() else {
            if projected.row_count() == 0 {
                return Ok(None);
            }
            self.rows_produced += projected.row_count() as u64;
            return Ok(Some(projected));
        };
        let agg_rows = projected.row_count();
        agg.rows_in += agg_rows as u64;
        if agg.key_channels.is_empty() {
            // Global aggregation: every row is group 0; skip the hash table.
            agg.zero_ids.clear();
            agg.zero_ids.resize(agg_rows, 0);
            agg.op.add_input_grouped(&projected, &agg.zero_ids)?;
        } else {
            // Hash the keys now, while the gathered blocks are hot, and
            // hand the hashes straight to the group-by (one sweep saved).
            agg.hash_buf.clear();
            agg.hash_buf.resize(agg_rows, 0);
            for &c in &agg.key_channels {
                hash_block_into(projected.block(c), &mut agg.hash_buf, &mut agg.hash_cache);
            }
            agg.op.add_input_prehashed(&projected, &agg.hash_buf)?;
        }
        Ok(None)
    }
}

impl Operator for FusedPipelineOperator {
    fn name(&self) -> &'static str {
        "FusedPipeline"
    }

    fn needs_input(&self) -> bool {
        false // source operator: driven by splits, not pages
    }

    fn add_input(&mut self, _page: Page) -> Result<()> {
        unreachable!("fused pipeline operators take no input")
    }

    fn finish(&mut self) {
        // Sources finish when the split queue is exhausted.
    }

    fn output(&mut self) -> Result<Option<Page>> {
        loop {
            if self.finished {
                return Ok(None);
            }
            // Drain the aggregation stage first: adaptive partial flushes
            // mid-stream and the final flush after the queue exhausts.
            if let Some(agg) = self.agg.as_mut() {
                if let Some(p) = agg.op.output()? {
                    self.rows_produced += p.row_count() as u64;
                    return Ok(Some(p));
                }
                if agg.op.is_finished() {
                    self.finished = true;
                    return Ok(None);
                }
            }
            if let Some(df) = &self.dyn_filter {
                if !df.ready() {
                    return Ok(None);
                }
                if df.provably_empty() {
                    while self.queue.pop().is_some() {
                        self.queue.mark_completed();
                        self.splits_processed += 1;
                        df.note_splits_pruned(1);
                    }
                    self.current = None;
                    self.current_split = None;
                    if self.queue.is_exhausted() {
                        match self.agg.as_mut() {
                            // A global aggregate still emits its empty-input
                            // row: flush through the loop head.
                            Some(agg) => {
                                agg.op.finish();
                                continue;
                            }
                            None => self.finished = true,
                        }
                    }
                    return Ok(None);
                }
            }
            if self.current.is_none() && !self.open_next_split()? {
                if self.queue.is_exhausted() {
                    match self.agg.as_mut() {
                        Some(agg) => {
                            agg.op.finish();
                            continue;
                        }
                        None => self.finished = true,
                    }
                }
                return Ok(None);
            }
            let source = self.current.as_mut().expect("split open");
            match source.next_page() {
                Ok(Some(page)) => {
                    let page = match &self.dyn_filter {
                        Some(df) => df.prune_rows(page),
                        None => page,
                    };
                    if page.row_count() == 0 {
                        continue;
                    }
                    if let Some(out) = self.process_page(page)? {
                        return Ok(Some(out));
                    }
                    continue;
                }
                Ok(None) => {
                    self.current = None;
                    self.current_split = None;
                    self.queue.mark_completed();
                    self.splits_processed += 1;
                    self.trace_split(presto_common::TraceKind::SplitFinish);
                    continue;
                }
                Err(e) if e.is_retryable() && self.retries_remaining > 0 => {
                    self.retries_remaining -= 1;
                    let split = self.current_split.take().expect("split open");
                    self.current = None;
                    self.queue.add(split);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn blocked(&self) -> Option<BlockedReason> {
        if !self.finished {
            if let Some(df) = &self.dyn_filter {
                if !df.ready() {
                    return Some(BlockedReason::WaitingForInput);
                }
            }
        }
        if !self.finished && self.current.is_none() && self.queue.queued_len() == 0 {
            Some(BlockedReason::WaitingForInput)
        } else {
            None
        }
    }

    fn user_memory_bytes(&self) -> usize {
        self.agg.as_ref().map_or(0, |a| a.op.user_memory_bytes())
    }

    fn system_memory_bytes(&self) -> usize {
        let source = if self.current.is_some() { 64 * 1024 } else { 0 };
        let scratch = self.sel_buf.capacity() * 4
            + self.agg.as_ref().map_or(0, |a| {
                a.hash_buf.capacity() * 8 + a.zero_ids.capacity() * 4
            });
        source + scratch
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut counters = vec![
            ("fused_stages", self.stage_count),
            ("fused_scan_rows", self.scan_rows),
            ("fused_filter_rows", self.filter_rows),
            ("fused_project_rows", self.project_rows),
            ("splits_processed", self.splits_processed),
            ("rows_produced", self.rows_produced),
        ];
        if let Some(agg) = &self.agg {
            counters.push(("fused_agg_rows", agg.rows_in));
            counters.extend(agg.op.counters());
        }
        if let Some(df) = &self.dyn_filter {
            counters.extend(df.counters());
        }
        counters
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{Schema, Value};
    use presto_connectors::MemoryConnector;
    use presto_expr::{AggregateFunction, AggregateKind, CmpOp};

    fn data_connector(rows: i64) -> Arc<MemoryConnector> {
        let c = MemoryConnector::new();
        let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| vec![Value::Bigint(i % 7), Value::Bigint(i)])
            .collect();
        let pages: Vec<Page> = data
            .chunks(100)
            .map(|chunk| Page::from_rows(&schema, chunk))
            .collect();
        c.load_table("t", schema, pages);
        c
    }

    fn feed_splits(c: &dyn Connector, queue: &SplitQueue) {
        let mut src = c
            .split_source("t", "default", &TupleDomain::all())
            .unwrap();
        while !src.is_finished() {
            for s in src.next_batch(16).unwrap() {
                queue.add(s);
            }
        }
        queue.no_more_splits();
    }

    fn drain(op: &mut FusedPipelineOperator) -> Vec<Page> {
        let mut out = Vec::new();
        let mut guard = 0;
        while !op.is_finished() {
            guard += 1;
            assert!(guard < 100_000, "fused pipeline did not converge");
            if let Some(p) = op.output().unwrap() {
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn filter_project_without_agg() {
        let c = data_connector(1000);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let chain = FusedChain {
            filter: Some(Expr::cmp(
                CmpOp::Ge,
                Expr::column(1, DataType::Bigint),
                Expr::literal(990i64),
            )),
            projections: vec![Expr::column(1, DataType::Bigint)],
            explicit_project: true,
            agg: None,
        };
        let mut op = FusedPipelineOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            TupleDomain::all(),
            &chain,
            &Session::default(),
        );
        let pages = drain(&mut op);
        let rows: usize = pages.iter().map(Page::row_count).sum();
        assert_eq!(rows, 10);
        for p in &pages {
            assert_eq!(p.column_count(), 1);
            assert!(p.block(0).i64_at(0) >= 990);
        }
        let counters = op.counters();
        let get = |n: &str| {
            counters
                .iter()
                .find(|(c, _)| *c == n)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(get("fused_scan_rows"), 1000);
        assert_eq!(get("fused_filter_rows"), 10);
        assert_eq!(get("fused_project_rows"), 10);
    }

    #[test]
    fn grouped_partial_aggregation_matches_discrete() {
        let c = data_connector(1000);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let chain = FusedChain {
            filter: Some(Expr::cmp(
                CmpOp::Lt,
                Expr::column(1, DataType::Bigint),
                Expr::literal(700i64),
            )),
            projections: vec![
                Expr::column(0, DataType::Bigint),
                Expr::column(1, DataType::Bigint),
            ],
            explicit_project: true,
            agg: Some(FusedAggStage {
                group_channels: vec![0],
                group_types: vec![DataType::Bigint],
                specs: vec![AggSpec {
                    function: AggregateFunction::new(
                        AggregateKind::Sum,
                        Some(DataType::Bigint),
                    )
                    .unwrap(),
                    input: Some(1),
                }],
            }),
        };
        let mut op = FusedPipelineOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            TupleDomain::all(),
            &chain,
            &Session::default(),
        );
        let pages = drain(&mut op);
        let mut got: Vec<(i64, i64)> = pages
            .iter()
            .flat_map(|p| {
                (0..p.row_count()).map(|i| (p.block(0).i64_at(i), p.block(1).i64_at(i)))
            })
            .collect();
        got.sort_unstable();
        // Reference: plain iteration.
        let mut want = std::collections::BTreeMap::new();
        for i in 0..700i64 {
            *want.entry(i % 7).or_insert(0) += i;
        }
        let want: Vec<(i64, i64)> = want.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let c = data_connector(100);
        let queue = SplitQueue::new();
        feed_splits(c.as_ref(), &queue);
        let chain = FusedChain {
            // Filter that drops every row.
            filter: Some(Expr::cmp(
                CmpOp::Lt,
                Expr::column(1, DataType::Bigint),
                Expr::literal(-1i64),
            )),
            projections: vec![
                Expr::column(0, DataType::Bigint),
                Expr::column(1, DataType::Bigint),
            ],
            explicit_project: false,
            agg: Some(FusedAggStage {
                group_channels: vec![],
                group_types: vec![],
                specs: vec![AggSpec {
                    function: AggregateFunction::new(AggregateKind::Count, None).unwrap(),
                    input: None,
                }],
            }),
        };
        let mut op = FusedPipelineOperator::new(
            c as Arc<dyn Connector>,
            queue,
            vec![0, 1],
            TupleDomain::all(),
            &chain,
            &Session::default(),
        );
        let pages = drain(&mut op);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].row_count(), 1);
        assert_eq!(pages[0].block(0).i64_at(0), 0, "COUNT of nothing is 0");
    }
}
