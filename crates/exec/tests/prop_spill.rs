#![allow(clippy::unwrap_used)]
//! Differential property tests for the spill framework (§IV-F2): join,
//! aggregation, and sort driven under a forced tiny memory budget — a
//! revocation after every input page, the grace partition limit at one
//! byte — must produce results identical to the unconstrained run.
//! Inputs cover NULL keys, NaN/∞ aggregates, dictionary- and RLE-encoded
//! pages, and collision-heavy key domains. Every run also asserts that
//! no spill file outlives its manager.

use presto_common::{DataType, Schema, Value};
use presto_exec::agg::{AggPhase, AggSpec, HashAggregationOperator};
use presto_exec::join::{HashBuilderOperator, JoinBridge, LookupJoinOperator, ProbeJoinType};
use presto_exec::sort::SortOperator;
use presto_exec::{Operator, SpillManager};
use presto_expr::{AggregateFunction, AggregateKind};
use presto_page::blocks::DictionaryBlock;
use presto_page::{Block, Page};
use presto_planner::SortKey;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::of(&[("k", DataType::Bigint), ("v", DataType::Double)])
}

/// One generated row: nullable collision-heavy key, double value that may
/// be NaN or ±∞.
type Row = (Option<i64>, f64);

fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        6 => (-100i64..100).prop_map(|v| v as f64),
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            // A 6-value key domain packs many duplicates into the same
            // hash buckets and radix partitions (collision-heavy).
            prop_oneof![5 => (0i64..6).prop_map(Some), 1 => Just(None)],
            arb_value(),
        ),
        0..max,
    )
}

/// Physical encoding of a generated page; the differential must hold
/// regardless of layout because both runs consume the same pages.
#[derive(Debug, Clone, Copy)]
enum Encoding {
    Flat,
    /// Key channel dictionary-encoded over the page's distinct keys.
    Dict,
    /// First row repeated as RLE runs on both channels.
    Rle,
}

fn arb_encoding() -> impl Strategy<Value = Encoding> {
    prop_oneof![
        3 => Just(Encoding::Flat),
        1 => Just(Encoding::Dict),
        1 => Just(Encoding::Rle),
    ]
}

fn page_of(rows: &[Row], encoding: Encoding) -> Page {
    let values: Vec<Vec<Value>> = rows
        .iter()
        .map(|(k, v)| {
            vec![
                k.map(Value::Bigint).unwrap_or(Value::Null),
                Value::Double(*v),
            ]
        })
        .collect();
    let flat = Page::from_rows(&schema(), &values);
    match encoding {
        Encoding::Flat => flat,
        Encoding::Dict => {
            let mut entries: Vec<Value> = Vec::new();
            let mut ids = Vec::with_capacity(rows.len());
            for (k, _) in rows {
                let v = k.map(Value::Bigint).unwrap_or(Value::Null);
                let id = entries.iter().position(|e| *e == v).unwrap_or_else(|| {
                    entries.push(v);
                    entries.len() - 1
                });
                ids.push(id as u32);
            }
            let dictionary = Arc::new(Block::from_values(DataType::Bigint, &entries));
            Page::new(vec![
                Block::Dictionary(DictionaryBlock::new(dictionary, ids)),
                flat.block(1).clone(),
            ])
        }
        Encoding::Rle => {
            let (k, v) = rows[0];
            let count = rows.len();
            Page::new(vec![
                Block::rle(
                    Block::single(DataType::Bigint, &k.map(Value::Bigint).unwrap_or(Value::Null)),
                    count,
                ),
                Block::rle(Block::single(DataType::Double, &Value::Double(v)), count),
            ])
        }
    }
}

/// RLE pages repeat their first row, so mirror that in the row model the
/// reference run consumes.
fn effective_rows(rows: &[Row], encoding: Encoding) -> Vec<Row> {
    match encoding {
        Encoding::Rle => vec![rows[0]; rows.len()],
        _ => rows.to_vec(),
    }
}

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "presto-prop-spill-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_dir_empty_and_remove(dir: &std::path::Path) {
    assert_eq!(
        std::fs::read_dir(dir).unwrap().count(),
        0,
        "spill files leaked in {}",
        dir.display()
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Render output rows in a NaN-safe comparable form (Value's NaN is not
/// equal to itself; the Debug text is).
fn render(pages: &[Page], types: &[DataType]) -> Vec<String> {
    let mut out = Vec::new();
    for p in pages {
        assert_eq!(p.column_count(), types.len());
        for i in 0..p.row_count() {
            let mut row = String::new();
            for (c, t) in types.iter().enumerate() {
                row.push_str(&format!("{:?}|", p.block(c).value_at(*t, i)));
            }
            out.push(row);
        }
    }
    out
}

fn drain(op: &mut dyn Operator, out: &mut Vec<Page>) {
    while let Some(p) = op.output().unwrap() {
        out.push(p);
    }
}

/// Run a hash join over the given build/probe pages; `spill` forces a
/// revocation after every build page and a one-byte grace partition limit
/// on the probe.
fn join_run(
    build_pages: &[Page],
    probe_pages: &[Page],
    join_type: ProbeJoinType,
    spill: bool,
) -> Vec<String> {
    let dir = scratch_dir();
    let manager = SpillManager::new(Some(dir.clone()), 0);
    let bridge = JoinBridge::new(vec![0], 1);
    if spill {
        bridge.enable_spill(Arc::clone(&manager));
    }
    let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
    for p in build_pages {
        builder.add_input(p.clone()).unwrap();
        if spill {
            builder.revoke_memory().unwrap();
        }
    }
    builder.finish();
    let mut op = LookupJoinOperator::new(
        Arc::clone(&bridge),
        join_type,
        vec![0],
        schema(),
        schema(),
        None,
    );
    if spill {
        op = op
            .with_spill(Arc::clone(&manager))
            .with_grace_partition_limit(1);
    }
    let mut pages = Vec::new();
    for p in probe_pages {
        op.add_input(p.clone()).unwrap();
        drain(&mut op, &mut pages);
    }
    op.finish();
    drain(&mut op, &mut pages);
    assert!(op.is_finished());
    let mut rows = render(
        &pages,
        &[
            DataType::Bigint,
            DataType::Double,
            DataType::Bigint,
            DataType::Double,
        ],
    );
    rows.sort();
    drop(op);
    drop(bridge);
    manager.remove_all();
    drop(manager);
    assert_dir_empty_and_remove(&dir);
    rows
}

/// Run a single-phase SUM + COUNT aggregation; `spill` revokes (spills
/// the accumulated hash state) after every input page.
fn agg_run(pages: &[Page], spill: bool) -> Vec<String> {
    let dir = scratch_dir();
    let manager = SpillManager::new(Some(dir.clone()), 0);
    let sum = AggregateFunction::new(AggregateKind::Sum, Some(DataType::Double)).unwrap();
    let count = AggregateFunction::new(AggregateKind::Count, None).unwrap();
    let mut op = HashAggregationOperator::new(
        AggPhase::Single,
        vec![0],
        vec![DataType::Bigint],
        vec![
            AggSpec {
                function: sum,
                input: Some(1),
            },
            AggSpec {
                function: count,
                input: None,
            },
        ],
        spill,
    )
    .with_spill_manager(Arc::clone(&manager));
    for p in pages {
        op.add_input(p.clone()).unwrap();
        if spill {
            op.revoke_memory().unwrap();
        }
    }
    op.finish();
    let mut pages_out = Vec::new();
    drain(&mut op, &mut pages_out);
    let mut rows = render(
        &pages_out,
        &[DataType::Bigint, DataType::Double, DataType::Bigint],
    );
    rows.sort();
    drop(op);
    manager.remove_all();
    drop(manager);
    assert_dir_empty_and_remove(&dir);
    rows
}

/// Run a sort (key asc NULLs last, value desc); `spill` revokes (spills
/// the sorted run) after every input page.
fn sort_run(pages: &[Page], spill: bool) -> Vec<String> {
    let dir = scratch_dir();
    let manager = SpillManager::new(Some(dir.clone()), 0);
    let keys = vec![
        SortKey {
            channel: 0,
            ascending: true,
            nulls_first: false,
        },
        SortKey {
            channel: 1,
            ascending: false,
            nulls_first: false,
        },
    ];
    let mut op = SortOperator::new(keys, spill).with_spill_manager(Arc::clone(&manager));
    for p in pages {
        op.add_input(p.clone()).unwrap();
        if spill {
            op.revoke_memory().unwrap();
        }
    }
    op.finish();
    let mut pages_out = Vec::new();
    drain(&mut op, &mut pages_out);
    // Sorted output: order matters, no re-sort.
    let rows = render(&pages_out, &[DataType::Bigint, DataType::Double]);
    drop(op);
    manager.remove_all();
    drop(manager);
    assert_dir_empty_and_remove(&dir);
    rows
}

/// Generated page set: chunked rows with a physical encoding per chunk.
fn arb_pages(max_rows: usize) -> impl Strategy<Value = Vec<(Vec<Row>, Encoding)>> {
    proptest::collection::vec((arb_rows(max_rows), arb_encoding()), 0..4).prop_map(|chunks| {
        chunks
            .into_iter()
            .filter(|(rows, _)| !rows.is_empty())
            .collect()
    })
}

fn build_pages(chunks: &[(Vec<Row>, Encoding)]) -> Vec<Page> {
    chunks
        .iter()
        .map(|(rows, enc)| page_of(&effective_rows(rows, *enc), Encoding::Flat))
        .collect()
}

fn encoded_pages(chunks: &[(Vec<Row>, Encoding)]) -> Vec<Page> {
    chunks.iter().map(|(rows, enc)| page_of(rows, *enc)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grace hash join under forced spill ≡ in-memory hash join, for
    /// inner and left joins, across encodings, NULL keys, and NaN
    /// payloads.
    #[test]
    fn join_spill_differential(
        build in arb_pages(25),
        probe in arb_pages(25),
        left in any::<bool>(),
    ) {
        let join_type = if left { ProbeJoinType::Left } else { ProbeJoinType::Inner };
        // Encoded pages probe-side exercise the dict/RLE fast paths; the
        // build side uses the same logical rows flattened so both runs
        // observe identical inputs.
        let b = build_pages(&build);
        let p = encoded_pages(&probe);
        let spilled = join_run(&b, &p, join_type, true);
        let plain = join_run(&b, &p, join_type, false);
        prop_assert_eq!(spilled, plain);
    }

    /// Aggregation under forced spill ≡ unconstrained aggregation,
    /// including NaN/∞ sums and NULL group keys.
    #[test]
    fn agg_spill_differential(input in arb_pages(40)) {
        let pages = encoded_pages(&input);
        let spilled = agg_run(&pages, true);
        let plain = agg_run(&pages, false);
        prop_assert_eq!(spilled, plain);
    }

    /// External (spilling) sort ≡ in-memory sort, byte for byte, in
    /// output order.
    #[test]
    fn sort_spill_differential(input in arb_pages(40)) {
        let pages = encoded_pages(&input);
        let spilled = sort_run(&pages, true);
        let plain = sort_run(&pages, false);
        prop_assert_eq!(spilled, plain);
    }
}

/// Chaos: a spill write that fails mid-revocation surfaces a retryable
/// (transient) error, not a wrong answer or a panic.
#[test]
fn spill_write_failure_is_retryable() {
    use presto_exec::SpillFault;
    let dir = scratch_dir();
    let manager = SpillManager::with_fault(
        Some(dir.clone()),
        0,
        Some(SpillFault::WriteError { after_writes: 0 }),
    );
    let sum = AggregateFunction::new(AggregateKind::Sum, Some(DataType::Double)).unwrap();
    let mut op = HashAggregationOperator::new(
        AggPhase::Single,
        vec![0],
        vec![DataType::Bigint],
        vec![AggSpec {
            function: sum,
            input: Some(1),
        }],
        true,
    )
    .with_spill_manager(Arc::clone(&manager));
    let rows: Vec<Row> = (0..64).map(|i| (Some(i % 7), i as f64)).collect();
    op.add_input(page_of(&rows, Encoding::Flat)).unwrap();
    let err = op.revoke_memory().unwrap_err();
    assert!(err.is_retryable(), "spill write fault must be retryable: {err}");
    drop(op);
    manager.remove_all();
    drop(manager);
    assert_dir_empty_and_remove(&dir);
}
