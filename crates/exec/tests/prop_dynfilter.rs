#![allow(clippy::unwrap_used)]
//! Dynamic-filter soundness properties: a published filter must NEVER drop
//! a probe row that would have joined, whatever form the filter takes —
//! exact value set, overflowed min/max range, or Bloom membership — and
//! whatever the key types, including NULLs on either side and
//! non-self-comparable doubles (NaN).

use presto_common::{DataType, PlanNodeId, Schema, Value};
use presto_connector::{Domain, TupleDomain};
use presto_exec::dynfilter::{split_pruned, DomainCollector, DynamicFilterRegistry};
use presto_exec::ScanDynamicFilter;
use presto_page::hash::hash_columns;
use presto_page::Page;
use presto_planner::{DynamicFilterKey, DynamicFilterSpec};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const JOIN: PlanNodeId = PlanNodeId(7);
const SCAN: PlanNodeId = PlanNodeId(3);

/// SQL join equality: NULL joins nothing; NaN joins nothing (f64 `==`).
fn sql_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => false,
        (Value::Double(x), Value::Double(y)) => x == y,
        _ => a == b,
    }
}

/// A probe row joins iff some build row (with fully non-null keys) matches
/// on every key.
fn joins(probe_keys: &[Value], build_rows: &[Vec<Value>]) -> bool {
    build_rows.iter().any(|b| {
        b.iter().all(|v| !v.is_null())
            && probe_keys.iter().zip(b).all(|(p, q)| sql_eq(p, q))
    })
}

/// Collect the build side exactly as `HashBuilderOperator` does — combined
/// key hash per row, rows with any NULL key skipped — and publish it.
fn publish_build(
    registry: &Arc<DynamicFilterRegistry>,
    build: &Page,
    channels: &[usize],
    types: &[DataType],
    max_values: usize,
) {
    let hashes = hash_columns(build, channels);
    let mut collector = DomainCollector::new(channels.to_vec(), types.to_vec(), max_values);
    for row in 0..build.row_count() {
        let non_null = channels
            .iter()
            .zip(types)
            .all(|(&ch, &dt)| !build.block(ch).loaded().value_at(dt, row).is_null());
        if non_null {
            collector.add_row(build, row, hashes[row]);
        }
    }
    registry.report(JOIN, collector.finish());
}

/// One spec whose key `i` maps build key `i` onto probe channel `i` /
/// table column `i` (every key mapped, so the Bloom path is active).
fn spec(types: &[DataType]) -> DynamicFilterSpec {
    DynamicFilterSpec {
        join: JOIN,
        join_fragment: 1,
        scan: SCAN,
        scan_fragment: 0,
        broadcast: false,
        keys: types
            .iter()
            .enumerate()
            .map(|(i, &dt)| {
                Some(DynamicFilterKey {
                    key_index: i,
                    scan_channel: i,
                    table_column: i,
                    data_type: dt,
                })
            })
            .collect(),
    }
}

/// The property: filter the probe page through a freshly published filter
/// and check every joining row survived (and nothing foreign appeared).
fn assert_sound(
    build_rows: Vec<Vec<Value>>,
    probe_rows: Vec<Vec<Value>>,
    types: &[DataType],
    max_values: usize,
) -> std::result::Result<(), TestCaseError> {
    let key_count = types.len();
    let fields: Vec<(String, DataType)> = types
        .iter()
        .enumerate()
        .map(|(i, &dt)| (format!("k{i}"), dt))
        .collect();
    let named: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::of(&named);
    let channels: Vec<usize> = (0..key_count).collect();
    let registry = DynamicFilterRegistry::new();
    let build = Page::from_rows(&schema, &build_rows);
    publish_build(&registry, &build, &channels, types, max_values);
    let filter = ScanDynamicFilter::new(
        Arc::clone(&registry),
        vec![spec(types)],
        Duration::from_secs(5),
    );
    prop_assert!(filter.ready(), "completed filter must be ready");
    let probe = Page::from_rows(&schema, &probe_rows);
    let kept = filter.prune_rows(probe).to_rows(&schema);
    // Soundness: every row that joins survives the filter.
    let mut kept_iter = kept.iter();
    for row in &probe_rows {
        if joins(row, &build_rows) {
            prop_assert!(
                kept_iter.any(|k| k == row),
                "filter dropped joining row {row:?} (build {build_rows:?})"
            );
        }
    }
    // Sanity: the filter only removes rows, never invents or reorders.
    let mut probe_iter = probe_rows.iter();
    for k in &kept {
        prop_assert!(kept.len() <= probe_rows.len());
        prop_assert!(probe_iter.any(|p| p == k), "foreign row {k:?}");
    }
    Ok(())
}

fn arb_bigint() -> impl Strategy<Value = Value> {
    prop_oneof![
        6 => (0i64..25).prop_map(Value::Bigint),
        1 => Just(Value::Null),
    ]
}

fn arb_double() -> impl Strategy<Value = Value> {
    // Integer-valued doubles plus NaN and NULL. (-0.0 is deliberately not
    // generated: SQL equality pools it with 0.0 but bit-level hashing does
    // not, and the engine's writers never produce it.)
    prop_oneof![
        5 => (0i64..20).prop_map(|v| Value::Double(v as f64)),
        1 => Just(Value::Double(f64::NAN)),
        1 => Just(Value::Null),
    ]
}

fn arb_varchar() -> impl Strategy<Value = Value> {
    prop_oneof![
        5 => "[a-d]{1,3}".prop_map(Value::varchar),
        1 => Just(Value::Null),
    ]
}

fn rows_of(v: impl Strategy<Value = Value>, max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(v.prop_map(|x| vec![x]), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Small build sides publish exact value sets.
    #[test]
    fn value_set_filter_is_sound(
        build in rows_of(arb_bigint(), 30),
        probe in rows_of(arb_bigint(), 60),
    ) {
        assert_sound(build, probe, &[DataType::Bigint], 1000)?;
    }

    /// `max_values = 2` forces the set to overflow into a min/max range.
    #[test]
    fn range_filter_is_sound(
        build in rows_of(arb_bigint(), 30),
        probe in rows_of(arb_bigint(), 60),
    ) {
        assert_sound(build, probe, &[DataType::Bigint], 2)?;
    }

    /// Doubles, including NaN build keys: NaN escalates the domain to
    /// "unconstrained" (min/max cannot summarize it), never to a wrong
    /// range.
    #[test]
    fn double_filter_with_nan_is_sound(
        build in rows_of(arb_double(), 30),
        probe in rows_of(arb_double(), 60),
        max_values in prop_oneof![Just(2usize), Just(1000usize)],
    ) {
        assert_sound(build, probe, &[DataType::Double], max_values)?;
    }

    /// Varchar keys through both the set and range representations.
    #[test]
    fn varchar_filter_is_sound(
        build in rows_of(arb_varchar(), 30),
        probe in rows_of(arb_varchar(), 60),
        max_values in prop_oneof![Just(2usize), Just(1000usize)],
    ) {
        assert_sound(build, probe, &[DataType::Varchar], max_values)?;
    }

    /// Composite (bigint, varchar) keys: every key maps, so the combined-
    /// hash Bloom filter participates alongside the per-key domains.
    #[test]
    fn composite_key_bloom_filter_is_sound(
        build in proptest::collection::vec((arb_bigint(), arb_varchar()), 0..30),
        probe in proptest::collection::vec((arb_bigint(), arb_varchar()), 0..60),
        max_values in prop_oneof![Just(2usize), Just(1000usize)],
    ) {
        let build: Vec<Vec<Value>> = build.into_iter().map(|(a, b)| vec![a, b]).collect();
        let probe: Vec<Vec<Value>> = probe.into_iter().map(|(a, b)| vec![a, b]).collect();
        assert_sound(build, probe, &[DataType::Bigint, DataType::Varchar], max_values)?;
    }

    /// Split-level pruning: a split whose min/max summary covers any
    /// joining probe row must never be discarded.
    #[test]
    fn split_pruning_never_drops_a_joining_split(
        build in proptest::collection::vec(0i64..25, 0..30),
        split_rows in proptest::collection::vec(0i64..40, 1..40),
        max_values in prop_oneof![Just(2usize), Just(1000usize)],
    ) {
        let schema = Schema::of(&[("k0", DataType::Bigint)]);
        let build_rows: Vec<Vec<Value>> =
            build.iter().map(|&v| vec![Value::Bigint(v)]).collect();
        let registry = DynamicFilterRegistry::new();
        let page = Page::from_rows(&schema, &build_rows);
        publish_build(&registry, &page, &[0], &[DataType::Bigint], max_values);
        let filter = ScanDynamicFilter::new(
            Arc::clone(&registry),
            vec![spec(&[DataType::Bigint])],
            Duration::from_secs(5),
        );
        prop_assert!(filter.ready());
        let table_domain = filter.table_domain().expect("filter completed");
        // The split's footer summary: min/max of its rows on column 0.
        let (min, max) = (
            *split_rows.iter().min().unwrap(),
            *split_rows.iter().max().unwrap(),
        );
        let mut split_domain = TupleDomain::all();
        split_domain.constrain(
            0,
            Domain::Range {
                min: Some(Value::Bigint(min)),
                max: Some(Value::Bigint(max)),
            },
        );
        let any_joins = split_rows.iter().any(|&v| build.contains(&v));
        if any_joins {
            prop_assert!(
                !split_pruned(&table_domain, &split_domain),
                "pruned a split holding joining key(s): build={build:?} split=[{min},{max}]"
            );
        }
    }

    /// An all-NULL (or empty) build side proves the join is empty: the
    /// filter may drop every probe row, and `provably_empty` must say so.
    #[test]
    fn empty_build_side_proves_empty_probe(probe in rows_of(arb_bigint(), 40)) {
        let schema = Schema::of(&[("k0", DataType::Bigint)]);
        let build_rows: Vec<Vec<Value>> = vec![vec![Value::Null]; 5];
        let registry = DynamicFilterRegistry::new();
        let page = Page::from_rows(&schema, &build_rows);
        publish_build(&registry, &page, &[0], &[DataType::Bigint], 1000);
        let filter = ScanDynamicFilter::new(
            Arc::clone(&registry),
            vec![spec(&[DataType::Bigint])],
            Duration::from_secs(5),
        );
        prop_assert!(filter.ready());
        prop_assert!(filter.provably_empty());
        let kept = filter.prune_rows(Page::from_rows(&schema, &probe));
        prop_assert_eq!(kept.row_count(), 0);
    }
}
