#![allow(clippy::unwrap_used)]
//! Fused-pipeline differential properties: the [`FusedPipelineOperator`]
//! must produce exactly the same rows as the discrete operator chain
//! (ScanFilterProject [→ partial → final aggregation]) it replaces, for
//! every input the scan can serve — all column types, NULLs, NaN doubles,
//! dictionary- and RLE-encoded pages, and empty pages. Fusion is an
//! optimization, never a semantic change.

use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{Connector, TupleDomain};
use presto_connectors::MemoryConnector;
use presto_exec::agg::{AggPhase, AggSpec, HashAggregationOperator};
use presto_exec::fused::{FusedAggStage, FusedChain, FusedPipelineOperator};
use presto_exec::scan::{ScanOperator, SplitQueue};
use presto_exec::Operator;
use presto_expr::{AggregateFunction, AggregateKind, ArithOp, CmpOp, Expr};
use presto_page::blocks::DictionaryBlock;
use presto_page::{Block, Page};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated row: nullable bigint key, bigint value, double that may
/// be NaN or NULL, small nullable varchar.
type Row = (Option<i64>, i64, Option<f64>, Option<u8>);

fn schema() -> Schema {
    Schema::of(&[
        ("k", DataType::Bigint),
        ("v", DataType::Bigint),
        ("d", DataType::Double),
        ("s", DataType::Varchar),
    ])
}

fn value_row(r: &Row) -> Vec<Value> {
    vec![
        r.0.map(Value::Bigint).unwrap_or(Value::Null),
        Value::Bigint(r.1),
        r.2.map(Value::Double).unwrap_or(Value::Null),
        r.3.map(|c| Value::varchar(&format!("s{c}"))).unwrap_or(Value::Null),
    ]
}

/// How one generated page is physically encoded. The differential holds
/// whatever the layout, because both operators read the same pages.
#[derive(Debug, Clone)]
enum Chunk {
    /// Flat columnar blocks.
    Flat(Vec<Row>),
    /// The varchar column dictionary-encoded over the chunk's distinct
    /// values (ids shared, dictionary per page).
    Dict(Vec<Row>),
    /// One row repeated `count` times as RLE runs on every column.
    Rle(Row, usize),
    /// A zero-row page.
    Empty,
}

fn chunk_page(chunk: &Chunk) -> Page {
    match chunk {
        Chunk::Flat(rows) => {
            let rows: Vec<Vec<Value>> = rows.iter().map(value_row).collect();
            Page::from_rows(&schema(), &rows)
        }
        Chunk::Dict(rows) => {
            let flat = chunk_page(&Chunk::Flat(rows.clone()));
            // Distinct varchar values of the chunk become the dictionary;
            // every row's value indexes into it (NULL is an entry too).
            let mut entries: Vec<Value> = Vec::new();
            let mut ids = Vec::with_capacity(rows.len());
            for r in rows {
                let v = r.3.map(|c| Value::varchar(&format!("s{c}"))).unwrap_or(Value::Null);
                let id = entries.iter().position(|e| *e == v).unwrap_or_else(|| {
                    entries.push(v);
                    entries.len() - 1
                });
                ids.push(id as u32);
            }
            let dictionary = Arc::new(Block::from_values(DataType::Varchar, &entries));
            Page::new(vec![
                flat.block(0).clone(),
                flat.block(1).clone(),
                flat.block(2).clone(),
                Block::Dictionary(DictionaryBlock::new(dictionary, ids)),
            ])
        }
        Chunk::Rle(row, count) => {
            let values = value_row(row);
            let types = [
                DataType::Bigint,
                DataType::Bigint,
                DataType::Double,
                DataType::Varchar,
            ];
            Page::new(
                values
                    .iter()
                    .zip(types)
                    .map(|(v, t)| Block::rle(Block::single(t, v), *count))
                    .collect(),
            )
        }
        Chunk::Empty => Page::from_rows(&schema(), &[]),
    }
}

fn load(chunks: &[Chunk]) -> Arc<MemoryConnector> {
    let c = MemoryConnector::new();
    c.load_table("t", schema(), chunks.iter().map(chunk_page).collect());
    c
}

fn feed_splits(c: &dyn Connector, queue: &SplitQueue) {
    let mut src = c.split_source("t", "default", &TupleDomain::all()).unwrap();
    while !src.is_finished() {
        for s in src.next_batch(16).unwrap() {
            queue.add(s);
        }
    }
    queue.no_more_splits();
}

fn drain_source(op: &mut dyn Operator) -> Vec<Page> {
    let mut out = Vec::new();
    let mut guard = 0;
    while !op.is_finished() {
        guard += 1;
        assert!(guard < 100_000, "source operator did not converge");
        if let Some(p) = op.output().unwrap() {
            out.push(p);
        }
    }
    out
}

/// Final-phase specs over a partial output laid out as
/// `[groups..., spec0 state..., spec1 state...]`.
fn final_specs(group_count: usize, specs: &[AggSpec]) -> Vec<AggSpec> {
    let mut start = group_count;
    specs
        .iter()
        .map(|s| {
            let arity = s.function.intermediate_types().len();
            let out = AggSpec {
                function: s.function.clone(),
                input: Some(start),
            };
            start += arity;
            out
        })
        .collect()
}

/// Merge partial pages through a final aggregation and render the rows.
fn finalize(
    partials: Vec<Page>,
    agg: &FusedAggStage,
    out_schema: &Schema,
) -> Vec<String> {
    let mut finals = HashAggregationOperator::new(
        AggPhase::Final,
        (0..agg.group_channels.len()).collect(),
        agg.group_types.clone(),
        final_specs(agg.group_channels.len(), &agg.specs),
        false,
    );
    for p in partials {
        finals.add_input(p).unwrap();
    }
    finals.finish();
    let mut rows = Vec::new();
    while let Some(p) = finals.output().unwrap() {
        rows.extend(p.to_rows(out_schema).iter().map(|r| format!("{r:?}")));
    }
    rows.sort_unstable();
    rows
}

/// Run the fused operator and the discrete chain over identical pages and
/// return both row renderings (sorted — partial flush boundaries and group
/// order are not part of the contract).
fn run_both(chunks: &[Chunk], chain: &FusedChain, out_schema: &Schema) -> (Vec<String>, Vec<String>) {
    let session = Session::default();
    let columns = vec![0, 1, 2, 3];

    let connector = load(chunks);
    let fused_queue = SplitQueue::new();
    feed_splits(connector.as_ref(), &fused_queue);
    let mut fused = FusedPipelineOperator::new(
        Arc::clone(&connector) as Arc<dyn Connector>,
        fused_queue,
        columns.clone(),
        TupleDomain::all(),
        chain,
        &session,
    );
    let fused_pages = drain_source(&mut fused);

    let discrete_queue = SplitQueue::new();
    feed_splits(connector.as_ref(), &discrete_queue);
    let mut scan = ScanOperator::new(
        Arc::clone(&connector) as Arc<dyn Connector>,
        discrete_queue,
        columns,
        TupleDomain::all(),
        chain.filter.as_ref(),
        &chain.projections,
        &session,
    );
    let scanned = drain_source(&mut scan);

    match &chain.agg {
        None => {
            let render = |pages: Vec<Page>| {
                let mut rows: Vec<String> = pages
                    .iter()
                    .flat_map(|p| p.to_rows(out_schema))
                    .map(|r| format!("{r:?}"))
                    .collect();
                rows.sort_unstable();
                rows
            };
            (render(fused_pages), render(scanned))
        }
        Some(agg) => {
            let mut partial = HashAggregationOperator::new(
                AggPhase::Partial,
                agg.group_channels.clone(),
                agg.group_types.clone(),
                agg.specs.clone(),
                false,
            );
            for p in scanned {
                partial.add_input(p).unwrap();
            }
            partial.finish();
            let mut discrete_partials = Vec::new();
            while let Some(p) = partial.output().unwrap() {
                discrete_partials.push(p);
            }
            (
                finalize(fused_pages, agg, out_schema),
                finalize(discrete_partials, agg, out_schema),
            )
        }
    }
}

// --- generators ---------------------------------------------------------

fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![4 => (0i64..12).prop_map(Some), 1 => Just(None)],
        -40i64..40,
        prop_oneof![
            4 => (-8i64..8).prop_map(|v| Some(v as f64 * 0.5)),
            1 => Just(Some(f64::NAN)),
            1 => Just(None),
        ],
        prop_oneof![4 => (0u8..4).prop_map(Some), 1 => Just(None)],
    )
}

fn arb_chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        4 => proptest::collection::vec(arb_row(), 1..24).prop_map(Chunk::Flat),
        3 => proptest::collection::vec(arb_row(), 1..24).prop_map(Chunk::Dict),
        2 => (arb_row(), 1usize..24).prop_map(|(r, n)| Chunk::Rle(r, n)),
        1 => Just(Chunk::Empty),
    ]
}

fn arb_chunks() -> impl Strategy<Value = Vec<Chunk>> {
    proptest::collection::vec(arb_chunk(), 0..6)
}

/// A filter over every column type: `k < kt AND d < dt` (NaN compares
/// false, NULL propagates) optionally strengthened with `s = 's1'`.
fn filter_expr(kt: i64, dt: f64, on_s: bool) -> Expr {
    let mut conjuncts = vec![
        Expr::cmp(
            CmpOp::Lt,
            Expr::column(0, DataType::Bigint),
            Expr::literal(kt),
        ),
        Expr::cmp(
            CmpOp::Lt,
            Expr::column(2, DataType::Double),
            Expr::literal(dt),
        ),
    ];
    if on_s {
        conjuncts.push(Expr::cmp(
            CmpOp::Eq,
            Expr::column(3, DataType::Varchar),
            Expr::literal("s1"),
        ));
    }
    Expr::and(conjuncts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scan → Filter → Project without aggregation: projected rows match
    /// the discrete ScanFilterProject exactly.
    #[test]
    fn fused_filter_project_matches_discrete(
        chunks in arb_chunks(),
        kt in -2i64..14,
        dt in -5i64..5,
        on_s in any::<bool>(),
    ) {
        let chain = FusedChain {
            filter: Some(filter_expr(kt, dt as f64, on_s)),
            projections: vec![
                Expr::column(1, DataType::Bigint),
                Expr::arith(
                    ArithOp::Add,
                    Expr::column(1, DataType::Bigint),
                    Expr::column(0, DataType::Bigint),
                ),
                Expr::column(3, DataType::Varchar),
            ],
            explicit_project: true,
            agg: None,
        };
        let out = Schema::of(&[
            ("v", DataType::Bigint),
            ("vk", DataType::Bigint),
            ("s", DataType::Varchar),
        ]);
        let (fused, discrete) = run_both(&chunks, &chain, &out);
        prop_assert_eq!(fused, discrete);
    }

    /// Global aggregation (the zero-group fast path): COUNT/SUM over
    /// bigints and NaN-bearing doubles match the discrete partial+final.
    #[test]
    fn fused_global_agg_matches_discrete(
        chunks in arb_chunks(),
        kt in -2i64..14,
        dt in -5i64..5,
    ) {
        let chain = FusedChain {
            filter: Some(filter_expr(kt, dt as f64, false)),
            projections: vec![
                Expr::column(1, DataType::Bigint),
                Expr::column(2, DataType::Double),
            ],
            explicit_project: true,
            agg: Some(FusedAggStage {
                group_channels: vec![],
                group_types: vec![],
                specs: vec![
                    AggSpec {
                        function: AggregateFunction::new(AggregateKind::Count, None).unwrap(),
                        input: None,
                    },
                    AggSpec {
                        function: AggregateFunction::new(
                            AggregateKind::Sum,
                            Some(DataType::Bigint),
                        )
                        .unwrap(),
                        input: Some(0),
                    },
                    AggSpec {
                        function: AggregateFunction::new(
                            AggregateKind::Sum,
                            Some(DataType::Double),
                        )
                        .unwrap(),
                        input: Some(1),
                    },
                ],
            }),
        };
        let out = Schema::of(&[
            ("count", DataType::Bigint),
            ("sum_v", DataType::Bigint),
            ("sum_d", DataType::Double),
        ]);
        let (fused, discrete) = run_both(&chunks, &chain, &out);
        prop_assert_eq!(fused, discrete);
    }

    /// Grouped partial aggregation (the pre-hashed group-by hand-off):
    /// nullable bigint × varchar group keys across all encodings.
    #[test]
    fn fused_grouped_agg_matches_discrete(
        chunks in arb_chunks(),
        kt in -2i64..14,
    ) {
        let chain = FusedChain {
            filter: Some(Expr::cmp(
                CmpOp::Lt,
                Expr::column(0, DataType::Bigint),
                Expr::literal(kt),
            )),
            projections: vec![
                Expr::column(0, DataType::Bigint),
                Expr::column(3, DataType::Varchar),
                Expr::column(1, DataType::Bigint),
            ],
            explicit_project: true,
            agg: Some(FusedAggStage {
                group_channels: vec![0, 1],
                group_types: vec![DataType::Bigint, DataType::Varchar],
                specs: vec![
                    AggSpec {
                        function: AggregateFunction::new(AggregateKind::Count, None).unwrap(),
                        input: None,
                    },
                    AggSpec {
                        function: AggregateFunction::new(
                            AggregateKind::Sum,
                            Some(DataType::Bigint),
                        )
                        .unwrap(),
                        input: Some(2),
                    },
                ],
            }),
        };
        let out = Schema::of(&[
            ("k", DataType::Bigint),
            ("s", DataType::Varchar),
            ("count", DataType::Bigint),
            ("sum_v", DataType::Bigint),
        ]);
        let (fused, discrete) = run_both(&chunks, &chain, &out);
        prop_assert_eq!(fused, discrete);
    }

    /// No filter at all (scan → project → agg): the selection vector is
    /// the identity and the gather must still preserve every encoding.
    #[test]
    fn fused_unfiltered_agg_matches_discrete(chunks in arb_chunks()) {
        let chain = FusedChain {
            filter: None,
            projections: vec![
                Expr::column(0, DataType::Bigint),
                Expr::column(1, DataType::Bigint),
            ],
            explicit_project: false,
            agg: Some(FusedAggStage {
                group_channels: vec![0],
                group_types: vec![DataType::Bigint],
                specs: vec![AggSpec {
                    function: AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint))
                        .unwrap(),
                    input: Some(1),
                }],
            }),
        };
        let out = Schema::of(&[("k", DataType::Bigint), ("sum_v", DataType::Bigint)]);
        let (fused, discrete) = run_both(&chunks, &chain, &out);
        prop_assert_eq!(fused, discrete);
    }
}
