#![allow(clippy::unwrap_used)]
//! Property tests for execution operators against simple references:
//! sorting vs `slice::sort`, aggregation vs a HashMap fold, TopN vs
//! sort+truncate, joins vs nested loops, and partial/final vs single-phase.

use presto_common::{DataType, Schema, Value};
use presto_exec::agg::{AggPhase, AggSpec, HashAggregationOperator};
use presto_exec::join::{HashBuilderOperator, JoinBridge, LookupJoinOperator, ProbeJoinType};
use presto_exec::sort::{SortOperator, TopNOperator};
use presto_exec::Operator;
use presto_expr::{AggregateFunction, AggregateKind};
use presto_page::Page;
use presto_planner::SortKey;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn kv_schema() -> Schema {
    Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)])
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![4 => (0i64..20).prop_map(Some), 1 => Just(None)],
            -50i64..50,
        ),
        0..max,
    )
}

fn page_of(rows: &[(Option<i64>, i64)]) -> Page {
    Page::from_rows(
        &kv_schema(),
        &rows
            .iter()
            .map(|(k, v)| {
                vec![
                    k.map(Value::Bigint).unwrap_or(Value::Null),
                    Value::Bigint(*v),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

fn drain(op: &mut dyn Operator) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    while let Some(p) = op.output().unwrap() {
        out.extend(p.to_rows(&kv_schema()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sort_matches_reference(rows in arb_rows(60), chunks in 1usize..4, spill in any::<bool>()) {
        let keys = vec![SortKey { channel: 0, ascending: true, nulls_first: false },
                        SortKey { channel: 1, ascending: false, nulls_first: false }];
        let mut op = SortOperator::new(keys, spill);
        let chunk = (rows.len() / chunks).max(1);
        for (i, piece) in rows.chunks(chunk).enumerate() {
            op.add_input(page_of(piece)).unwrap();
            if spill && i % 2 == 0 {
                op.revoke_memory().unwrap();
            }
        }
        op.finish();
        let got = drain(&mut op);
        // Reference: stable total order — key asc (nulls last), value desc.
        let mut expected = rows.clone();
        expected.sort_by(|a, b| {
            let ka = a.0.map(|v| (0, v)).unwrap_or((1, 0));
            let kb = b.0.map(|v| (0, v)).unwrap_or((1, 0));
            ka.cmp(&kb).then(b.1.cmp(&a.1))
        });
        let expected_rows: Vec<Vec<Value>> = expected
            .iter()
            .map(|(k, v)| vec![k.map(Value::Bigint).unwrap_or(Value::Null), Value::Bigint(*v)])
            .collect();
        prop_assert_eq!(got, expected_rows);
    }

    #[test]
    fn topn_equals_sort_truncate(rows in arb_rows(60), n in 0u64..20) {
        let keys = vec![SortKey { channel: 1, ascending: false, nulls_first: false }];
        let mut top = TopNOperator::new(keys.clone(), n);
        for piece in rows.chunks(7) {
            top.add_input(page_of(piece)).unwrap();
        }
        top.finish();
        let got: Vec<i64> = drain(&mut top)
            .into_iter()
            .map(|r| r[1].as_i64().unwrap())
            .collect();
        let mut values: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();
        values.sort_by(|a, b| b.cmp(a));
        values.truncate(n as usize);
        prop_assert_eq!(got, values);
    }

    #[test]
    fn grouped_sum_matches_hashmap(rows in arb_rows(80)) {
        let f = AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint)).unwrap();
        let mut op = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec { function: f, input: Some(1) }],
            false,
        );
        for piece in rows.chunks(9) {
            op.add_input(page_of(piece)).unwrap();
        }
        op.finish();
        let mut got: Vec<(Option<i64>, i64)> = Vec::new();
        while let Some(p) = op.output().unwrap() {
            for i in 0..p.row_count() {
                let key = if p.block(0).is_null(i) { None } else { Some(p.block(0).i64_at(i)) };
                got.push((key, p.block(1).i64_at(i)));
            }
        }
        got.sort();
        let mut reference: HashMap<Option<i64>, i64> = HashMap::new();
        for (k, v) in &rows {
            *reference.entry(*k).or_insert(0) += v;
        }
        let mut expected: Vec<(Option<i64>, i64)> = reference.into_iter().collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn partial_final_equals_single_phase(rows in arb_rows(80), split_at in 0usize..80) {
        let f = AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint)).unwrap();
        let split = split_at.min(rows.len());
        // Two partials over disjoint halves, merged by a final.
        let mut finals = HashAggregationOperator::new(
            AggPhase::Final,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec { function: f, input: Some(1) }],
            false,
        );
        for half in [&rows[..split], &rows[split..]] {
            let mut partial = HashAggregationOperator::new(
                AggPhase::Partial,
                vec![0],
                vec![DataType::Bigint],
                vec![AggSpec { function: f, input: Some(1) }],
                false,
            );
            if !half.is_empty() {
                partial.add_input(page_of(half)).unwrap();
            }
            partial.finish();
            while let Some(p) = partial.output().unwrap() {
                finals.add_input(p).unwrap();
            }
        }
        finals.finish();
        // Single phase.
        let mut single = HashAggregationOperator::new(
            AggPhase::Single,
            vec![0],
            vec![DataType::Bigint],
            vec![AggSpec { function: f, input: Some(1) }],
            false,
        );
        if !rows.is_empty() {
            single.add_input(page_of(&rows)).unwrap();
        }
        single.finish();
        let collect = |op: &mut HashAggregationOperator| {
            let mut out: Vec<(Option<i64>, Option<String>)> = Vec::new();
            while let Some(p) = op.output().unwrap() {
                for i in 0..p.row_count() {
                    let key =
                        if p.block(0).is_null(i) { None } else { Some(p.block(0).i64_at(i)) };
                    let avg = if p.block(1).is_null(i) {
                        None
                    } else {
                        Some(format!("{:.9}", p.block(1).f64_at(i)))
                    };
                    out.push((key, avg));
                }
            }
            out.sort();
            out
        };
        prop_assert_eq!(collect(&mut finals), collect(&mut single));
    }

    #[test]
    fn hash_join_matches_nested_loop(
        build in arb_rows(30),
        probe in arb_rows(30),
    ) {
        let bridge = JoinBridge::new(vec![0], 1);
        let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
        if !build.is_empty() {
            builder.add_input(page_of(&build)).unwrap();
        }
        builder.finish();
        let mut join = LookupJoinOperator::new(
            bridge,
            ProbeJoinType::Inner,
            vec![0],
            kv_schema(),
            kv_schema(),
            None,
        );
        let mut got: Vec<(i64, i64, i64, i64)> = Vec::new();
        for piece in probe.chunks(11) {
            join.add_input(page_of(piece)).unwrap();
            while let Some(p) = join.output().unwrap() {
                for i in 0..p.row_count() {
                    got.push((
                        p.block(0).i64_at(i),
                        p.block(1).i64_at(i),
                        p.block(2).i64_at(i),
                        p.block(3).i64_at(i),
                    ));
                }
            }
        }
        got.sort();
        let mut expected: Vec<(i64, i64, i64, i64)> = Vec::new();
        for (pk, pv) in &probe {
            for (bk, bv) in &build {
                if let (Some(pk), Some(bk)) = (pk, bk) {
                    if pk == bk {
                        expected.push((*pk, *pv, *bk, *bv));
                    }
                }
            }
        }
        expected.sort();
        prop_assert_eq!(got, expected);
    }
}

// Model check for the flat-table group-by (§V-E): group ids must equal a
// BTreeMap reference that assigns first-seen ordinals to distinct keys,
// regardless of page chunking, NULLs, or multi-column varchar keys.
fn arb_keyed_rows(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, Option<u8>)>> {
    proptest::collection::vec(
        (
            prop_oneof![4 => (0i64..15).prop_map(Some), 1 => Just(None)],
            prop_oneof![4 => (0u8..5).prop_map(Some), 1 => Just(None)],
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flat_group_by_matches_btreemap_model(rows in arb_keyed_rows(120), chunk in 1usize..17) {
        use presto_exec::agg::GroupByHash;
        use std::collections::BTreeMap;
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        let pages: Vec<Page> = rows
            .chunks(chunk)
            .map(|piece| {
                Page::from_rows(
                    &schema,
                    &piece
                        .iter()
                        .map(|(k, s)| {
                            vec![
                                k.map(Value::Bigint).unwrap_or(Value::Null),
                                s.map(|c| Value::varchar(&format!("s{c}")))
                                    .unwrap_or(Value::Null),
                            ]
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut hash = GroupByHash::new(vec![0, 1], vec![DataType::Bigint, DataType::Varchar]);
        let mut got: Vec<u32> = Vec::new();
        for p in &pages {
            got.extend(hash.group_ids(p));
        }
        // Reference model: first-seen ordinal per distinct key (NULL is a
        // key value of its own).
        let mut model: BTreeMap<(Option<i64>, Option<u8>), u32> = BTreeMap::new();
        let mut expected: Vec<u32> = Vec::new();
        for &key in &rows {
            let next = model.len() as u32;
            expected.push(*model.entry(key).or_insert(next));
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(hash.group_count(), model.len());
        // Exact accounting stays queryable mid-stream.
        prop_assert!(rows.is_empty() || hash.memory_bytes() > 0);
    }
}
