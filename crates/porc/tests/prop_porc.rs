//! Property tests for the PORC file format: write→read round trips across
//! stripe boundaries, and stripe pruning never drops matching rows.

use presto_common::{DataType, Schema, Value};
use presto_connector::{Domain, TupleDomain};
use presto_page::Page;
use presto_porc::{IoStats, PorcReader, PorcWriter, WriterOptions};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_rows() -> impl Strategy<Value = Vec<(Option<i64>, Option<String>, f64)>> {
    proptest::collection::vec(
        (
            prop_oneof![5 => (-100i64..100).prop_map(Some), 1 => Just(None)],
            prop_oneof![5 => "[a-d]{1,3}".prop_map(Some), 1 => Just(None)],
            -100.0f64..100.0,
        ),
        0..300,
    )
}

fn schema() -> Schema {
    Schema::of(&[
        ("k", DataType::Bigint),
        ("s", DataType::Varchar),
        ("x", DataType::Double),
    ])
}

fn to_page(rows: &[(Option<i64>, Option<String>, f64)]) -> Page {
    Page::from_rows(
        &schema(),
        &rows
            .iter()
            .map(|(k, s, x)| {
                vec![
                    k.map(Value::Bigint).unwrap_or(Value::Null),
                    s.clone().map(Value::varchar).unwrap_or(Value::Null),
                    Value::Double(*x),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

fn temp_file(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("porc-prop-{}-{tag}.porc", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip(rows in arb_rows(), stripe_rows in 1usize..64, tag in any::<u64>()) {
        let path = temp_file(tag);
        let mut writer = PorcWriter::create(
            &path,
            schema(),
            WriterOptions { stripe_rows, ..Default::default() },
        )
        .unwrap();
        let page = to_page(&rows);
        if page.row_count() > 0 {
            writer.append(&page).unwrap();
        }
        let meta = writer.finish().unwrap();
        prop_assert_eq!(meta.row_count as usize, rows.len());
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        let mut got: Vec<Vec<Value>> = Vec::new();
        for s in 0..reader.stripe_count() {
            let p = reader.read_stripe(s, &[0, 1, 2], false).unwrap();
            got.extend(p.to_rows(&schema()));
        }
        prop_assert_eq!(got, page.to_rows(&schema()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stripe_pruning_never_drops_matches(
        rows in arb_rows(),
        probe in -100i64..100,
        tag in any::<u64>(),
    ) {
        let path = temp_file(tag.wrapping_add(1));
        let mut writer = PorcWriter::create(
            &path,
            schema(),
            WriterOptions { stripe_rows: 16, ..Default::default() },
        )
        .unwrap();
        let page = to_page(&rows);
        if page.row_count() > 0 {
            writer.append(&page).unwrap();
        }
        writer.finish().unwrap();
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        let mut predicate = TupleDomain::all();
        predicate.constrain(0, Domain::point(Value::Bigint(probe)));
        // Count matches surviving pruning…
        let mut surviving = 0usize;
        for s in reader.select_stripes(&predicate) {
            let p = reader.read_stripe(s, &[0], false).unwrap();
            for i in 0..p.row_count() {
                if !p.block(0).is_null(i) && p.block(0).i64_at(i) == probe {
                    surviving += 1;
                }
            }
        }
        // …must equal the true count (no false negatives from min/max or
        // Bloom statistics).
        let expected = rows.iter().filter(|(k, _, _)| *k == Some(probe)).count();
        prop_assert_eq!(surviving, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lazy_and_eager_reads_agree(rows in arb_rows(), tag in any::<u64>()) {
        let path = temp_file(tag.wrapping_add(2));
        let mut writer = PorcWriter::create(
            &path,
            schema(),
            WriterOptions { stripe_rows: 32, ..Default::default() },
        )
        .unwrap();
        let page = to_page(&rows);
        if page.row_count() > 0 {
            writer.append(&page).unwrap();
        }
        writer.finish().unwrap();
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        for s in 0..reader.stripe_count() {
            let lazy = reader.read_stripe(s, &[1, 0], true).unwrap();
            let eager = reader.read_stripe(s, &[1, 0], false).unwrap();
            let projected = Schema::of(&[("s", DataType::Varchar), ("k", DataType::Bigint)]);
            prop_assert_eq!(lazy.to_rows(&projected), eager.to_rows(&projected));
        }
        std::fs::remove_file(&path).ok();
    }
}
