//! On-disk metadata structures and footer codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use presto_common::{DataType, Field, PrestoError, Result, Schema, Value};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::bloom::BloomFilter;

/// Trailing magic bytes.
pub const PORC_MAGIC: &[u8; 4] = b"PORC";

/// Per-column, per-stripe metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunkMeta {
    /// Byte offset of this column's serialized block within the stripe body.
    pub offset: u32,
    /// Serialized length in bytes.
    pub length: u32,
    /// Minimum non-null value in the chunk (absent when all-null).
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULL cells.
    pub null_count: u32,
    /// Bloom filter over non-null value hashes; `None` for double columns
    /// (range stats serve them better).
    pub bloom: Option<BloomFilter>,
}

/// Per-stripe metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StripeMeta {
    /// Byte offset of the stripe body within the file.
    pub offset: u64,
    /// Stripe body length in bytes.
    pub length: u64,
    pub row_count: u32,
    /// Parallel to the schema.
    pub columns: Vec<ColumnChunkMeta>,
}

/// File-level column statistics, fed to the optimizer via the connector
/// Metadata API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: u64,
    /// Exact up to a cap, then a lower bound; good enough for CBO.
    pub distinct_count: u64,
}

/// Decoded file footer.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    pub schema: Schema,
    pub stripes: Vec<StripeMeta>,
    pub row_count: u64,
    pub column_stats: Vec<FileColumnStats>,
}

fn value_weight(v: &Option<Value>) -> u64 {
    match v {
        Some(Value::Varchar(s)) => 24 + s.len() as u64,
        _ => 16,
    }
}

impl FileMeta {
    /// Rough retained-heap size of the decoded footer, used as the entry
    /// weight by the footer cache. Dominated by per-stripe column chunks
    /// (each carries min/max values and an optional Bloom filter).
    pub fn approx_weight(&self) -> u64 {
        let schema: u64 = 48 + self
            .schema
            .fields()
            .iter()
            .map(|f| 40 + f.name.len() as u64)
            .sum::<u64>();
        let stripes: u64 = self
            .stripes
            .iter()
            .map(|s| {
                48 + s
                    .columns
                    .iter()
                    .map(|c| {
                        48 + value_weight(&c.min)
                            + value_weight(&c.max)
                            + c.bloom
                                .as_ref()
                                .map_or(0, |_| BloomFilter::ENCODED_LEN as u64)
                    })
                    .sum::<u64>()
            })
            .sum();
        let file_cols: u64 = self
            .column_stats
            .iter()
            .map(|c| 32 + value_weight(&c.min) + value_weight(&c.max))
            .sum();
        schema + stripes + file_cols
    }
}

/// Shared I/O counters: the instrumentation behind the §V-D lazy-loading
/// experiment ("lazy loading reduces data fetched by 78%, cells loaded by
/// 22% and total CPU time by 14%").
#[derive(Debug, Default)]
pub struct IoStats {
    /// Bytes actually fetched from storage.
    pub bytes_read: AtomicU64,
    /// Cells decoded into blocks.
    pub cells_loaded: AtomicU64,
    /// Stripes skipped via min/max or Bloom statistics.
    pub stripes_pruned: AtomicU64,
    /// Stripes read (at least one column fetched).
    pub stripes_read: AtomicU64,
    /// Footers fetched from storage and decoded. A footer cache turns
    /// repeat opens of the same immutable file into zero footer reads.
    pub footer_reads: AtomicU64,
}

impl IoStats {
    pub fn new() -> IoStats {
        IoStats::default()
    }

    pub fn add_bytes(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_footer_read(&self) {
        self.footer_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn footer_reads(&self) -> u64 {
        self.footer_reads.load(Ordering::Relaxed)
    }

    pub fn add_cells(&self, n: u64) {
        self.cells_loaded.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.bytes_read.load(Ordering::Relaxed),
            self.cells_loaded.load(Ordering::Relaxed),
            self.stripes_pruned.load(Ordering::Relaxed),
            self.stripes_read.load(Ordering::Relaxed),
        )
    }
}

// ---- value / footer codec ----

pub(crate) fn encode_value(v: &Option<Value>, buf: &mut BytesMut) {
    match v {
        None | Some(Value::Null) => buf.put_u8(0),
        Some(Value::Boolean(b)) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Some(Value::Bigint(x)) => {
            buf.put_u8(2);
            buf.put_i64_le(*x);
        }
        Some(Value::Double(x)) => {
            buf.put_u8(3);
            buf.put_f64_le(*x);
        }
        Some(Value::Varchar(s)) => {
            buf.put_u8(4);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Some(Value::Date(x)) => {
            buf.put_u8(5);
            buf.put_i64_le(*x);
        }
        Some(Value::Timestamp(x)) => {
            buf.put_u8(6);
            buf.put_i64_le(*x);
        }
    }
}

pub(crate) fn decode_value(buf: &mut &[u8]) -> Result<Option<Value>> {
    let corrupt = || PrestoError::external("porc: corrupt footer");
    if buf.remaining() < 1 {
        return Err(corrupt());
    }
    Ok(match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 1 {
                return Err(corrupt());
            }
            Some(Value::Boolean(buf.get_u8() != 0))
        }
        tag @ (2 | 5 | 6) => {
            if buf.remaining() < 8 {
                return Err(corrupt());
            }
            let v = buf.get_i64_le();
            Some(match tag {
                2 => Value::Bigint(v),
                5 => Value::Date(v),
                _ => Value::Timestamp(v),
            })
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(corrupt());
            }
            Some(Value::Double(f64::from_bits(buf.get_u64_le())))
        }
        4 => {
            if buf.remaining() < 4 {
                return Err(corrupt());
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(corrupt());
            }
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|_| corrupt())?
                .to_string();
            buf.advance(len);
            Some(Value::varchar(s))
        }
        t => return Err(PrestoError::external(format!("porc: bad value tag {t}"))),
    })
}

/// Encode the footer, returning its bytes (caller appends length + magic).
pub(crate) fn encode_footer(meta: &FileMeta) -> Bytes {
    let mut buf = BytesMut::new();
    // schema
    buf.put_u32_le(meta.schema.len() as u32);
    for f in meta.schema.fields() {
        buf.put_u32_le(f.name.len() as u32);
        buf.put_slice(f.name.as_bytes());
        buf.put_u8(type_tag(f.data_type));
    }
    buf.put_u64_le(meta.row_count);
    // file column stats
    for cs in &meta.column_stats {
        encode_value(&cs.min, &mut buf);
        encode_value(&cs.max, &mut buf);
        buf.put_u64_le(cs.null_count);
        buf.put_u64_le(cs.distinct_count);
    }
    // stripes
    buf.put_u32_le(meta.stripes.len() as u32);
    for s in &meta.stripes {
        buf.put_u64_le(s.offset);
        buf.put_u64_le(s.length);
        buf.put_u32_le(s.row_count);
        for c in &s.columns {
            buf.put_u32_le(c.offset);
            buf.put_u32_le(c.length);
            encode_value(&c.min, &mut buf);
            encode_value(&c.max, &mut buf);
            buf.put_u32_le(c.null_count);
            match &c.bloom {
                Some(b) => {
                    buf.put_u8(1);
                    b.encode(&mut buf);
                }
                None => buf.put_u8(0),
            }
        }
    }
    buf.freeze()
}

pub(crate) fn decode_footer(mut buf: &[u8]) -> Result<FileMeta> {
    let corrupt = || PrestoError::external("porc: corrupt footer");
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let ncols = buf.get_u32_le() as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        if buf.remaining() < 4 {
            return Err(corrupt());
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len + 1 {
            return Err(corrupt());
        }
        let name = std::str::from_utf8(&buf[..len])
            .map_err(|_| corrupt())?
            .to_string();
        buf.advance(len);
        let dt = type_from_tag(buf.get_u8())?;
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    if buf.remaining() < 8 {
        return Err(corrupt());
    }
    let row_count = buf.get_u64_le();
    let mut column_stats = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let min = decode_tagged_value(&mut buf)?;
        let max = decode_tagged_value(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(corrupt());
        }
        let null_count = buf.get_u64_le();
        let distinct_count = buf.get_u64_le();
        column_stats.push(FileColumnStats {
            min,
            max,
            null_count,
            distinct_count,
        });
    }
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let nstripes = buf.get_u32_le() as usize;
    let mut stripes = Vec::with_capacity(nstripes);
    for _ in 0..nstripes {
        if buf.remaining() < 20 {
            return Err(corrupt());
        }
        let offset = buf.get_u64_le();
        let length = buf.get_u64_le();
        let rows = buf.get_u32_le();
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            if buf.remaining() < 8 {
                return Err(corrupt());
            }
            let coff = buf.get_u32_le();
            let clen = buf.get_u32_le();
            let min = decode_tagged_value(&mut buf)?;
            let max = decode_tagged_value(&mut buf)?;
            if buf.remaining() < 5 {
                return Err(corrupt());
            }
            let null_count = buf.get_u32_le();
            let bloom = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < BloomFilter::ENCODED_LEN {
                        return Err(corrupt());
                    }
                    Some(BloomFilter::decode(&mut buf))
                }
                _ => return Err(corrupt()),
            };
            columns.push(ColumnChunkMeta {
                offset: coff,
                length: clen,
                min,
                max,
                null_count,
                bloom,
            });
        }
        stripes.push(StripeMeta {
            offset,
            length,
            row_count: rows,
            columns,
        });
    }
    Ok(FileMeta {
        schema,
        stripes,
        row_count,
        column_stats,
    })
}

/// Alias kept for readability at call sites.
fn decode_tagged_value(buf: &mut &[u8]) -> Result<Option<Value>> {
    decode_value(buf)
}

fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Boolean => 0,
        DataType::Bigint => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
        DataType::Date => 4,
        DataType::Timestamp => 5,
    }
}

fn type_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Boolean,
        1 => DataType::Bigint,
        2 => DataType::Double,
        3 => DataType::Varchar,
        4 => DataType::Date,
        5 => DataType::Timestamp,
        _ => return Err(PrestoError::external(format!("porc: bad type tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_round_trip() {
        let schema = Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)]);
        let mut bloom = BloomFilter::new();
        bloom.insert(123);
        let meta = FileMeta {
            schema: schema.clone(),
            row_count: 100,
            column_stats: vec![
                FileColumnStats {
                    min: Some(Value::Bigint(0)),
                    max: Some(Value::Bigint(99)),
                    null_count: 3,
                    distinct_count: 97,
                },
                FileColumnStats {
                    min: Some(Value::varchar("a")),
                    max: Some(Value::varchar("z")),
                    null_count: 0,
                    distinct_count: 26,
                },
            ],
            stripes: vec![StripeMeta {
                offset: 0,
                length: 512,
                row_count: 100,
                columns: vec![
                    ColumnChunkMeta {
                        offset: 0,
                        length: 256,
                        min: Some(Value::Bigint(0)),
                        max: Some(Value::Bigint(99)),
                        null_count: 3,
                        bloom: Some(bloom),
                    },
                    ColumnChunkMeta {
                        offset: 256,
                        length: 256,
                        min: None,
                        max: None,
                        null_count: 100,
                        bloom: None,
                    },
                ],
            }],
        };
        let encoded = encode_footer(&meta);
        let decoded = decode_footer(&encoded).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn corrupt_footer_is_external_error() {
        let err = decode_footer(&[1, 2, 3]).unwrap_err();
        assert!(matches!(
            err.code,
            presto_common::ErrorCode::External { .. }
        ));
    }

    #[test]
    fn value_codec_all_types() {
        for v in [
            None,
            Some(Value::Boolean(true)),
            Some(Value::Bigint(-5)),
            Some(Value::Double(1.5)),
            Some(Value::varchar("hi")),
            Some(Value::Date(100)),
            Some(Value::Timestamp(1_000_000)),
        ] {
            let mut buf = BytesMut::new();
            encode_value(&v, &mut buf);
            let bytes = buf.freeze();
            let mut slice: &[u8] = &bytes;
            assert_eq!(decode_tagged_value(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn io_stats_accumulate() {
        let s = IoStats::new();
        s.add_bytes(10);
        s.add_bytes(5);
        s.add_cells(7);
        let (b, c, _, _) = s.snapshot();
        assert_eq!((b, c), (15, 7));
    }
}
