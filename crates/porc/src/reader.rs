//! PORC file reader with stripe skipping and lazy column loads.

use presto_common::{PrestoError, Result, TableStatistics, Value};
use presto_connector::{Domain, TupleDomain};
use presto_page::blocks::LazyBlock;
use presto_page::hash::{hash_bytes, hash_f64, hash_i64};
use presto_page::{deserialize_block, Block, Page};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::format::{FileMeta, IoStats, StripeMeta};

/// A reader over one PORC file.
#[derive(Debug)]
pub struct PorcReader {
    file: Arc<File>,
    path: PathBuf,
    meta: Arc<FileMeta>,
    stats: Arc<IoStats>,
}

impl PorcReader {
    /// Open `path`, validating magic and decoding the footer.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<PorcReader> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        if len < 8 {
            return Err(PrestoError::external(format!(
                "{}: not a PORC file",
                path.display()
            )));
        }
        let mut tail = [0u8; 8];
        file.read_exact_at(&mut tail, len - 8)?;
        if &tail[4..] != crate::format::PORC_MAGIC {
            return Err(PrestoError::external(format!(
                "{}: bad magic",
                path.display()
            )));
        }
        let footer_len = u32::from_le_bytes(tail[..4].try_into().unwrap()) as u64;
        if footer_len + 8 > len {
            return Err(PrestoError::external(format!(
                "{}: corrupt footer length",
                path.display()
            )));
        }
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact_at(&mut footer, len - 8 - footer_len)?;
        stats.add_bytes(footer_len + 8);
        stats.add_footer_read();
        let meta = Arc::new(crate::format::decode_footer(&footer)?);
        Ok(PorcReader {
            file: Arc::new(file),
            path,
            meta,
            stats,
        })
    }

    /// Open `path` reusing an already-decoded footer (from a metadata
    /// cache): no footer bytes are fetched and nothing is parsed.
    pub fn open_with_meta(
        path: impl AsRef<Path>,
        stats: Arc<IoStats>,
        meta: Arc<FileMeta>,
    ) -> Result<PorcReader> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        Ok(PorcReader {
            file: Arc::new(file),
            path,
            meta,
            stats,
        })
    }

    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Shared handle to the decoded footer, for caching.
    pub fn meta_arc(&self) -> Arc<FileMeta> {
        Arc::clone(&self.meta)
    }

    pub fn stripe_count(&self) -> usize {
        self.meta.stripes.len()
    }

    /// Optimizer-facing statistics assembled from the footer.
    pub fn table_statistics(&self) -> TableStatistics {
        let rows = self.meta.row_count as f64;
        TableStatistics {
            row_count: presto_common::Estimate::exact(rows),
            columns: self
                .meta
                .column_stats
                .iter()
                .map(|cs| presto_common::ColumnStatistics {
                    distinct_count: presto_common::Estimate::exact(cs.distinct_count as f64),
                    null_fraction: presto_common::Estimate::exact(if rows > 0.0 {
                        cs.null_count as f64 / rows
                    } else {
                        0.0
                    }),
                    min: cs.min.clone(),
                    max: cs.max.clone(),
                    avg_size: presto_common::Estimate::unknown(),
                })
                .collect(),
        }
    }

    /// Whether `stripe` can contain rows matching `predicate` (over
    /// table-schema column indices), judged from min/max and Bloom stats.
    pub fn stripe_matches(&self, stripe: usize, predicate: &TupleDomain) -> bool {
        if predicate.is_none() {
            return false;
        }
        let meta = &self.meta.stripes[stripe];
        for col in predicate.columns() {
            let Some(domain) = predicate.domain(col) else {
                continue;
            };
            let Some(chunk) = meta.columns.get(col) else {
                continue;
            };
            // All-null chunk can never match a pushdown predicate.
            if chunk.min.is_none() && chunk.null_count as usize == meta.row_count as usize {
                return false;
            }
            if !domain.overlaps(chunk.min.as_ref(), chunk.max.as_ref()) {
                return false;
            }
            // Bloom filters refute point lookups.
            if let (Domain::Set(values), Some(bloom)) = (domain, &chunk.bloom) {
                let any_maybe = values.iter().any(|v| {
                    let hash = match v {
                        Value::Bigint(x) | Value::Date(x) | Value::Timestamp(x) => hash_i64(*x),
                        Value::Boolean(b) => hash_i64(*b as i64),
                        Value::Double(d) => hash_f64(*d),
                        Value::Varchar(s) => hash_bytes(s.as_bytes()),
                        Value::Null => return false,
                    };
                    bloom.might_contain(hash)
                });
                if !any_maybe {
                    return false;
                }
            }
        }
        true
    }

    /// Per-column min/max summary of a contiguous stripe range. Connectors
    /// attach this to splits so the scheduler can re-prune still-unassigned
    /// splits when a dynamic filter narrows the predicate after enumeration.
    pub fn stripes_domain(&self, first_stripe: usize, stripe_count: usize) -> TupleDomain {
        use std::cmp::Ordering;
        let mut summary = TupleDomain::all();
        let columns = self.meta.schema.len();
        for col in 0..columns {
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut any = false;
            for s in first_stripe..(first_stripe + stripe_count).min(self.meta.stripes.len()) {
                let Some(chunk) = self.meta.stripes[s].columns.get(col) else {
                    continue;
                };
                // All-null chunks contribute no comparable values.
                let (Some(cmin), Some(cmax)) = (&chunk.min, &chunk.max) else {
                    continue;
                };
                if min
                    .as_ref()
                    .is_none_or(|m| cmin.sql_cmp(m) == Some(Ordering::Less))
                {
                    min = Some(cmin.clone());
                }
                if max
                    .as_ref()
                    .is_none_or(|m| cmax.sql_cmp(m) == Some(Ordering::Greater))
                {
                    max = Some(cmax.clone());
                }
                any = true;
            }
            if any {
                summary.constrain(col, Domain::Range { min, max });
            }
        }
        summary
    }

    /// Indices of stripes surviving predicate pruning; prunes are counted
    /// in the shared [`IoStats`].
    pub fn select_stripes(&self, predicate: &TupleDomain) -> Vec<usize> {
        (0..self.meta.stripes.len())
            .filter(|&i| {
                let keep = self.stripe_matches(i, predicate);
                if !keep {
                    self.stats
                        .stripes_pruned
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                keep
            })
            .collect()
    }

    /// Read the given columns of one stripe.
    ///
    /// With `lazy` set, each column is a [`LazyBlock`] whose loader fetches
    /// and decodes the chunk on first access; otherwise columns are read
    /// eagerly. Either way, loads are tallied in [`IoStats`].
    pub fn read_stripe(&self, stripe: usize, columns: &[usize], lazy: bool) -> Result<Page> {
        let smeta: &StripeMeta = &self.meta.stripes[stripe];
        self.stats
            .stripes_read
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let rows = smeta.row_count as usize;
        let mut blocks = Vec::with_capacity(columns.len());
        for &col in columns {
            let chunk = smeta.columns.get(col).ok_or_else(|| {
                PrestoError::internal(format!(
                    "porc: column {col} out of range in {}",
                    self.path.display()
                ))
            })?;
            let file = Arc::clone(&self.file);
            let stats = Arc::clone(&self.stats);
            let offset = smeta.offset + chunk.offset as u64;
            let length = chunk.length as usize;
            let path = self.path.clone();
            let loader = move || -> Block {
                let mut buf = vec![0u8; length];
                // Loaders cannot return Result; surface read errors as
                // panics carrying context (engine converts to query failure
                // at the task boundary).
                file.read_exact_at(&mut buf, offset)
                    .unwrap_or_else(|e| panic!("porc read {}: {e}", path.display()));
                stats.add_bytes(length as u64);
                let block = deserialize_block(&buf)
                    .unwrap_or_else(|e| panic!("porc decode {}: {e}", path.display()));
                stats.add_cells(block.len() as u64);
                block
            };
            if lazy {
                blocks.push(Block::Lazy(LazyBlock::new(rows, loader)));
            } else {
                blocks.push(loader());
            }
        }
        if blocks.is_empty() {
            return Ok(Page::zero_column(rows));
        }
        Ok(Page::new(blocks))
    }

    pub fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{PorcWriter, WriterOptions};
    use presto_common::{DataType, Schema};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("porc-reader-test-{}-{name}", std::process::id()));
        p
    }

    fn write_sample(path: &Path, rows: usize, stripe_rows: usize) -> Schema {
        let schema = Schema::of(&[
            ("k", DataType::Bigint),
            ("v", DataType::Double),
            ("status", DataType::Varchar),
        ]);
        let mut w = PorcWriter::create(
            path,
            schema.clone(),
            WriterOptions {
                stripe_rows,
                ..Default::default()
            },
        )
        .unwrap();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Bigint(i as i64),
                    Value::Double(i as f64 / 10.0),
                    Value::varchar(if i % 3 == 0 { "A" } else { "B" }),
                ]
            })
            .collect();
        w.append(&Page::from_rows(&schema, &data)).unwrap();
        w.finish().unwrap();
        schema
    }

    #[test]
    fn full_scan_round_trip() {
        let path = temp_path("roundtrip");
        let schema = write_sample(&path, 1000, 256);
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        assert_eq!(reader.meta().row_count, 1000);
        let mut total = 0usize;
        for s in 0..reader.stripe_count() {
            let page = reader.read_stripe(s, &[0, 1, 2], false).unwrap();
            for i in 0..page.row_count() {
                let k = page.block(0).i64_at(i);
                assert_eq!(page.block(1).f64_at(i), k as f64 / 10.0);
            }
            total += page.row_count();
        }
        assert_eq!(total, 1000);
        let _ = schema;
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn min_max_pruning() {
        let path = temp_path("prune");
        write_sample(&path, 1000, 100);
        let stats = Arc::new(IoStats::new());
        let reader = PorcReader::open(&path, Arc::clone(&stats)).unwrap();
        // k >= 950 → only the last stripe.
        let mut predicate = TupleDomain::all();
        predicate.constrain(0, Domain::at_least(Value::Bigint(950)));
        let stripes = reader.select_stripes(&predicate);
        assert_eq!(stripes, vec![9]);
        assert_eq!(stats.snapshot().2, 9, "nine stripes pruned");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bloom_pruning_on_point_lookup() {
        let path = temp_path("bloom");
        write_sample(&path, 1000, 100);
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        // A value that is inside the global min/max range of stripe 0 for
        // column k, but not present: range stats cannot prune it, bloom can.
        let mut predicate = TupleDomain::all();
        predicate.constrain(2, Domain::point(Value::varchar("ZZZ")));
        let stripes = reader.select_stripes(&predicate);
        assert!(
            stripes.is_empty(),
            "bloom should refute the lookup everywhere"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn lazy_columns_fetch_only_on_access() {
        let path = temp_path("lazy");
        write_sample(&path, 1000, 1000);
        let stats = Arc::new(IoStats::new());
        let reader = PorcReader::open(&path, Arc::clone(&stats)).unwrap();
        let baseline = stats.snapshot().0; // footer bytes
        let page = reader.read_stripe(0, &[0, 1, 2], true).unwrap();
        assert_eq!(stats.snapshot().0, baseline, "no data read until access");
        // Touch only column 0.
        assert_eq!(page.block(0).i64_at(5), 5);
        let after_one = stats.snapshot().0;
        assert!(after_one > baseline);
        let cells = stats.snapshot().1;
        assert_eq!(cells, 1000, "only one column's cells loaded");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn projected_reads_skip_columns() {
        let path = temp_path("project");
        write_sample(&path, 100, 100);
        let stats = Arc::new(IoStats::new());
        let reader = PorcReader::open(&path, Arc::clone(&stats)).unwrap();
        let page = reader.read_stripe(0, &[2], false).unwrap();
        assert_eq!(page.column_count(), 1);
        assert_eq!(page.block(0).str_at(0), "A");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stripes_domain_summarizes_min_max() {
        let path = temp_path("stripesdomain");
        write_sample(&path, 1000, 100);
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        // Stripes 2..5 hold k in [200, 499].
        let summary = reader.stripes_domain(2, 3);
        let d = summary.domain(0).unwrap();
        assert!(!d.contains(&Value::Bigint(199)));
        assert!(d.contains(&Value::Bigint(200)));
        assert!(d.contains(&Value::Bigint(499)));
        assert!(!d.contains(&Value::Bigint(500)));
        // Every column with values is summarized.
        assert_eq!(summary.columns().count(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_non_porc_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"this is not a porc file").unwrap();
        let err = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap_err();
        assert!(matches!(
            err.code,
            presto_common::ErrorCode::External { .. }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_with_meta_skips_footer_io() {
        let path = temp_path("cachedmeta");
        write_sample(&path, 1000, 256);
        let cold_stats = Arc::new(IoStats::new());
        let cold = PorcReader::open(&path, Arc::clone(&cold_stats)).unwrap();
        assert_eq!(cold_stats.footer_reads(), 1);
        let warm_stats = Arc::new(IoStats::new());
        let warm =
            PorcReader::open_with_meta(&path, Arc::clone(&warm_stats), cold.meta_arc()).unwrap();
        assert_eq!(warm_stats.snapshot().0, 0, "no footer bytes fetched");
        assert_eq!(warm_stats.footer_reads(), 0);
        let page = warm.read_stripe(0, &[0], false).unwrap();
        assert_eq!(page.block(0).i64_at(3), 3);
        assert!(warm.meta().approx_weight() > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn footer_statistics_feed_optimizer() {
        let path = temp_path("stats");
        write_sample(&path, 500, 250);
        let reader = PorcReader::open(&path, Arc::new(IoStats::new())).unwrap();
        let ts = reader.table_statistics();
        assert_eq!(ts.row_count.value(), Some(500.0));
        assert_eq!(ts.columns[0].min, Some(Value::Bigint(0)));
        assert_eq!(ts.columns[0].max, Some(Value::Bigint(499)));
        assert_eq!(ts.columns[2].distinct_count.value(), Some(2.0));
        std::fs::remove_file(path).ok();
    }
}
