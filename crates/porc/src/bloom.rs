//! A small fixed-size Bloom filter for stripe skipping.

use bytes::{Buf, BufMut};

/// Bits in the filter. 2048 bits ≈ 1% false positives at ~200 entries with
/// three probes — plenty for per-stripe distinct-value counts.
const BITS: usize = 2048;
const WORDS: usize = BITS / 64;
const PROBES: usize = 3;

/// A 2048-bit, 3-probe Bloom filter over 64-bit element hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: [u64; WORDS],
}

impl Default for BloomFilter {
    fn default() -> Self {
        BloomFilter { words: [0; WORDS] }
    }
}

impl BloomFilter {
    pub fn new() -> BloomFilter {
        BloomFilter::default()
    }

    fn probe_positions(hash: u64) -> [usize; PROBES] {
        // Kirsch–Mitzenmacher double hashing: position_i = h1 + i * h2.
        let h1 = hash;
        let h2 = (hash >> 32) | 1;
        let mut out = [0usize; PROBES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % BITS as u64) as usize;
        }
        out
    }

    /// Insert an element by its 64-bit hash.
    pub fn insert(&mut self, hash: u64) {
        for pos in Self::probe_positions(hash) {
            self.words[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// Whether the element *might* be present (no false negatives).
    pub fn might_contain(&self, hash: u64) -> bool {
        Self::probe_positions(hash)
            .iter()
            .all(|&pos| self.words[pos / 64] & (1 << (pos % 64)) != 0)
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn encode(&self, buf: &mut impl BufMut) {
        for &w in &self.words {
            buf.put_u64_le(w);
        }
    }

    pub fn decode(buf: &mut impl Buf) -> BloomFilter {
        let mut words = [0u64; WORDS];
        for w in &mut words {
            *w = buf.get_u64_le();
        }
        BloomFilter { words }
    }

    pub const ENCODED_LEN: usize = WORDS * 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_page::hash::hash_i64;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new();
        for i in 0..500 {
            f.insert(hash_i64(i));
        }
        for i in 0..500 {
            assert!(f.might_contain(hash_i64(i)));
        }
    }

    #[test]
    fn mostly_rejects_absent_values() {
        let mut f = BloomFilter::new();
        for i in 0..100 {
            f.insert(hash_i64(i));
        }
        let false_positives = (1000..11_000)
            .filter(|&i| f.might_contain(hash_i64(i)))
            .count();
        // With 100 entries in 2048 bits the FP rate is far below 5%.
        assert!(false_positives < 500, "false positives: {false_positives}");
    }

    #[test]
    fn round_trips() {
        let mut f = BloomFilter::new();
        f.insert(hash_i64(42));
        let mut buf = bytes::BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), BloomFilter::ENCODED_LEN);
        let decoded = BloomFilter::decode(&mut buf.freeze());
        assert_eq!(decoded, f);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new();
        assert!(f.is_empty());
        assert!(!f.might_contain(hash_i64(1)));
    }
}
