//! PORC: a from-scratch columnar file format with the ORC features Presto
//! exploits.
//!
//! §V-C of the paper: "Presto ships with custom readers for file formats
//! that can efficiently skip data sections by using statistics in file
//! headers/footers (e.g., min-max range headers and Bloom filters). The
//! readers can convert certain forms of compressed data directly into
//! blocks, which can be efficiently operated upon by the engine."
//!
//! A PORC file is a sequence of *stripes* followed by a footer:
//!
//! ```text
//! [stripe 0][stripe 1]…[footer][footer_len: u32][b"PORC"]
//! ```
//!
//! Each stripe stores its columns as independently addressable serialized
//! blocks, so a reader can fetch exactly the columns a query references.
//! The writer picks an encoding per column per stripe — RLE for constant
//! runs, dictionary for low-cardinality data, plain otherwise — and the
//! reader hands those encodings to the engine *as blocks, without
//! decoding* (§V-E). The footer carries per-stripe min/max statistics and
//! Bloom filters for stripe skipping, plus file-level column statistics
//! (row count, NDV, null fraction) that the Hive-like connector reports to
//! the cost-based optimizer.
//!
//! Reads are *lazy* (§V-D): [`reader::PorcReader::read_stripe`] returns
//! pages whose columns are [`presto_page::blocks::LazyBlock`]s; bytes are
//! fetched and decoded only when a cell is first accessed, and the shared
//! [`IoStats`] counters record exactly how much was fetched — the
//! instrumentation behind the §V-D experiment.

pub mod bloom;
pub mod format;
pub mod reader;
pub mod writer;

pub use format::{ColumnChunkMeta, FileMeta, IoStats, StripeMeta, PORC_MAGIC};
pub use reader::PorcReader;
pub use writer::{PorcWriter, WriterOptions};
