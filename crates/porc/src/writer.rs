//! PORC file writer.
//!
//! Buffers appended pages into stripes; for each stripe column it collects
//! min/max/null statistics, builds a Bloom filter, and chooses an encoding
//! (RLE for constant columns, dictionary when the distinct count is small
//! relative to the rows, plain otherwise) so that readers hand the engine
//! compressed blocks directly (§V-E).

use bytes::BufMut;
use presto_common::{DataType, Result, Schema, Value};
use presto_page::blocks::{DictionaryBlock, VarcharBlock};
use presto_page::hash::hash_cell;
use presto_page::{serialize_block, Block, BlockBuilder, Page};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use crate::bloom::BloomFilter;
use crate::format::{
    encode_footer, ColumnChunkMeta, FileColumnStats, FileMeta, StripeMeta, PORC_MAGIC,
};

/// Writer knobs.
#[derive(Debug, Clone)]
pub struct WriterOptions {
    /// Rows per stripe.
    pub stripe_rows: usize,
    /// Dictionary-encode a column when `distinct * dictionary_ratio < rows`.
    pub dictionary_ratio: usize,
    /// Cap on exact NDV tracking per column (beyond it, NDV is a floor).
    pub ndv_cap: usize,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            stripe_rows: 8192,
            dictionary_ratio: 4,
            ndv_cap: 100_000,
        }
    }
}

/// Streaming PORC writer.
pub struct PorcWriter {
    schema: Schema,
    options: WriterOptions,
    out: std::io::BufWriter<std::fs::File>,
    position: u64,
    buffered: Vec<Page>,
    buffered_rows: usize,
    stripes: Vec<StripeMeta>,
    row_count: u64,
    file_stats: Vec<FileStatsAcc>,
}

struct FileStatsAcc {
    min: Option<Value>,
    max: Option<Value>,
    null_count: u64,
    distinct: std::collections::HashSet<Value>,
    distinct_overflow: bool,
}

impl FileStatsAcc {
    fn new() -> FileStatsAcc {
        FileStatsAcc {
            min: None,
            max: None,
            null_count: 0,
            distinct: std::collections::HashSet::new(),
            distinct_overflow: false,
        }
    }
}

impl PorcWriter {
    /// Create a writer for `path`, truncating any existing file.
    pub fn create(
        path: impl AsRef<Path>,
        schema: Schema,
        options: WriterOptions,
    ) -> Result<PorcWriter> {
        let file = std::fs::File::create(path)?;
        let file_stats = (0..schema.len()).map(|_| FileStatsAcc::new()).collect();
        Ok(PorcWriter {
            schema,
            options,
            out: std::io::BufWriter::new(file),
            position: 0,
            buffered: Vec::new(),
            buffered_rows: 0,
            stripes: Vec::new(),
            row_count: 0,
            file_stats,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a page; flushes full stripes as they fill.
    pub fn append(&mut self, page: &Page) -> Result<()> {
        assert_eq!(
            page.column_count(),
            self.schema.len(),
            "page/schema column mismatch"
        );
        self.buffered_rows += page.row_count();
        self.row_count += page.row_count() as u64;
        self.buffered.push(page.load_all());
        while self.buffered_rows >= self.options.stripe_rows {
            self.flush_stripe(self.options.stripe_rows)?;
        }
        Ok(())
    }

    /// Flush remaining rows and write the footer. Must be called last.
    pub fn finish(mut self) -> Result<FileMeta> {
        if self.buffered_rows > 0 {
            let rows = self.buffered_rows;
            self.flush_stripe(rows)?;
        }
        let column_stats = self
            .file_stats
            .iter()
            .map(|s| FileColumnStats {
                min: s.min.clone(),
                max: s.max.clone(),
                null_count: s.null_count,
                distinct_count: s.distinct.len() as u64,
            })
            .collect();
        let meta = FileMeta {
            schema: self.schema.clone(),
            stripes: std::mem::take(&mut self.stripes),
            row_count: self.row_count,
            column_stats,
        };
        let footer = encode_footer(&meta);
        self.out.write_all(&footer)?;
        let mut tail = Vec::with_capacity(8);
        tail.put_u32_le(footer.len() as u32);
        tail.extend_from_slice(PORC_MAGIC);
        self.out.write_all(&tail)?;
        self.out.flush()?;
        Ok(meta)
    }

    /// Cut a stripe of exactly `rows` rows from the front of the buffer.
    fn flush_stripe(&mut self, rows: usize) -> Result<()> {
        let rows = rows.min(self.buffered_rows);
        // Assemble the stripe rows into one page per column.
        let combined = Page::concat(&self.buffered);
        let (stripe_page, rest) = if combined.row_count() > rows {
            let head: Vec<u32> = (0..rows as u32).collect();
            let tail: Vec<u32> = (rows as u32..combined.row_count() as u32).collect();
            (combined.filter(&head), Some(combined.filter(&tail)))
        } else {
            (combined, None)
        };
        self.buffered = rest.into_iter().collect();
        self.buffered_rows -= rows;

        let mut chunk_bytes: Vec<bytes::Bytes> = Vec::with_capacity(self.schema.len());
        let mut chunks: Vec<ColumnChunkMeta> = Vec::with_capacity(self.schema.len());
        let mut offset = 0u32;
        for col in 0..self.schema.len() {
            let dt = self.schema.data_type(col);
            let block = stripe_page.block(col);
            let (encoded_block, stats) = self.encode_column(dt, block, col);
            let bytes = serialize_block(&encoded_block);
            chunks.push(ColumnChunkMeta {
                offset,
                length: bytes.len() as u32,
                min: stats.0,
                max: stats.1,
                null_count: stats.2,
                bloom: stats.3,
            });
            offset += bytes.len() as u32;
            chunk_bytes.push(bytes);
        }
        let stripe_len: u64 = chunk_bytes.iter().map(|b| b.len() as u64).sum();
        for b in &chunk_bytes {
            self.out.write_all(b)?;
        }
        self.stripes.push(StripeMeta {
            offset: self.position,
            length: stripe_len,
            row_count: rows as u32,
            columns: chunks,
        });
        self.position += stripe_len;
        Ok(())
    }

    /// Choose an encoding and compute chunk statistics for one column.
    #[allow(clippy::type_complexity)]
    fn encode_column(
        &mut self,
        dt: DataType,
        block: &Block,
        col: usize,
    ) -> (
        Block,
        (Option<Value>, Option<Value>, u32, Option<BloomFilter>),
    ) {
        let rows = block.len();
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut null_count = 0u32;
        let mut bloom = (dt != DataType::Double).then(BloomFilter::new);
        // Distinct values of this chunk, for dictionary encoding.
        let mut distinct: HashMap<Value, u32> = HashMap::new();
        let mut ids: Vec<u32> = Vec::with_capacity(rows);
        let file_acc = &mut self.file_stats[col];
        for i in 0..rows {
            if block.is_null(i) {
                null_count += 1;
                file_acc.null_count += 1;
                ids.push(u32::MAX);
                continue;
            }
            let v = block.value_at(dt, i);
            if min
                .as_ref()
                .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
            {
                min = Some(v.clone());
            }
            if max
                .as_ref()
                .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
            {
                max = Some(v.clone());
            }
            if let Some(b) = bloom.as_mut() {
                b.insert(hash_cell(block, i));
            }
            if !file_acc.distinct_overflow {
                if file_acc.distinct.len() >= self.options.ndv_cap {
                    file_acc.distinct_overflow = true;
                } else {
                    file_acc.distinct.insert(v.clone());
                }
            }
            let next = distinct.len() as u32;
            let id = *distinct.entry(v).or_insert(next);
            ids.push(id);
        }
        if max.as_ref().is_some_and(|m| {
            file_acc
                .max
                .as_ref()
                .is_none_or(|fm| m.sql_cmp(fm) == Some(std::cmp::Ordering::Greater))
        }) {
            file_acc.max = max.clone();
        }
        if min.as_ref().is_some_and(|m| {
            file_acc
                .min
                .as_ref()
                .is_none_or(|fm| m.sql_cmp(fm) == Some(std::cmp::Ordering::Less))
        }) {
            file_acc.min = min.clone();
        }
        let stats = (min, max, null_count, bloom);
        // Encoding choice.
        let ndv = distinct.len();
        if ndv == 1 && null_count == 0 {
            let value = distinct.keys().next().unwrap().clone();
            return (Block::rle(Block::single(dt, &value), rows), stats);
        }
        let dictionary_worthwhile = ndv > 0
            && null_count == 0
            && ndv * self.options.dictionary_ratio < rows
            && matches!(dt, DataType::Varchar);
        if dictionary_worthwhile {
            // Build the dictionary in first-seen order so ids map directly.
            let mut entries: Vec<Option<String>> = vec![None; ndv];
            for (v, &id) in &distinct {
                entries[id as usize] = Some(v.as_str().unwrap().to_string());
            }
            let dict_strings: Vec<String> = entries.into_iter().map(Option::unwrap).collect();
            let dict = Block::from(VarcharBlock::from_strs(&dict_strings));
            return (
                Block::Dictionary(DictionaryBlock::new(Arc::new(dict), ids)),
                stats,
            );
        }
        // Plain: re-encode via builder to shed any input encoding.
        let mut b = BlockBuilder::with_capacity(dt, rows);
        for i in 0..rows {
            b.append_from(block, i);
        }
        (b.finish(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Field;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("porc-writer-test-{}-{name}", std::process::id()));
        p
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Bigint),
            Field::new("status", DataType::Varchar),
        ])
    }

    fn sample_page(n: usize) -> Page {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Bigint(i as i64),
                    Value::varchar(if i % 2 == 0 { "OK" } else { "FAIL" }),
                ]
            })
            .collect();
        Page::from_rows(&schema(), &rows)
    }

    #[test]
    fn writes_stripes_and_footer() {
        let path = temp_path("basic");
        let mut w = PorcWriter::create(
            &path,
            schema(),
            WriterOptions {
                stripe_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        w.append(&sample_page(250)).unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.row_count, 250);
        assert_eq!(meta.stripes.len(), 3); // 100 + 100 + 50
        assert_eq!(meta.stripes[2].row_count, 50);
        // Column stats captured.
        assert_eq!(meta.column_stats[0].min, Some(Value::Bigint(0)));
        assert_eq!(meta.column_stats[0].max, Some(Value::Bigint(249)));
        assert_eq!(meta.column_stats[1].distinct_count, 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stripe_stats_are_per_stripe() {
        let path = temp_path("stats");
        let mut w = PorcWriter::create(
            &path,
            schema(),
            WriterOptions {
                stripe_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        w.append(&sample_page(200)).unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.stripes[0].columns[0].max, Some(Value::Bigint(99)));
        assert_eq!(meta.stripes[1].columns[0].min, Some(Value::Bigint(100)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn low_cardinality_varchar_gets_dictionary() {
        let path = temp_path("dict");
        let mut w = PorcWriter::create(&path, schema(), WriterOptions::default()).unwrap();
        w.append(&sample_page(1000)).unwrap();
        let meta = w.finish().unwrap();
        // Verify by reading the chunk back as a block.
        let bytes = std::fs::read(&path).unwrap();
        let chunk = &meta.stripes[0].columns[1];
        let start = meta.stripes[0].offset as usize + chunk.offset as usize;
        let block =
            presto_page::deserialize_block(&bytes[start..start + chunk.length as usize]).unwrap();
        assert!(
            matches!(block, Block::Dictionary(_)),
            "status column should be dict-encoded"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn constant_column_gets_rle() {
        let path = temp_path("rle");
        let s = Schema::of(&[("c", DataType::Bigint)]);
        let mut w = PorcWriter::create(&path, s.clone(), WriterOptions::default()).unwrap();
        let rows: Vec<Vec<Value>> = (0..500).map(|_| vec![Value::Bigint(7)]).collect();
        w.append(&Page::from_rows(&s, &rows)).unwrap();
        let meta = w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let chunk = &meta.stripes[0].columns[0];
        let start = meta.stripes[0].offset as usize + chunk.offset as usize;
        let block =
            presto_page::deserialize_block(&bytes[start..start + chunk.length as usize]).unwrap();
        assert!(matches!(block, Block::Rle(_)));
        std::fs::remove_file(path).ok();
    }
}
