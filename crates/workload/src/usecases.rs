//! The four Table I use-case workload generators.
//!
//! | Use case | Duration | Shape | Connector |
//! |---|---|---|---|
//! | Developer/Advertiser Analytics | 50 ms – 5 s | selective joins/aggs/windows | sharded SQL |
//! | A/B Testing | 1 s – 25 s | large co-located joins | Raptor |
//! | Interactive Analytics | 10 s – 30 min | ad-hoc exploration | Hive/HDFS |
//! | Batch ETL | 20 min – 5 h | transform + write | Hive/HDFS |
//!
//! Each generator samples SQL from the shape family of its use case; the
//! absolute durations scale with the simulated data rather than matching
//! the production numbers (DESIGN.md substitution), but the orderings in
//! Fig. 7 are preserved.

use presto_common::Session;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One of the paper's four production workloads (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseCase {
    DeveloperAdvertiser,
    AbTesting,
    Interactive,
    BatchEtl,
}

impl UseCase {
    pub fn label(&self) -> &'static str {
        match self {
            UseCase::DeveloperAdvertiser => "Dev/Advertiser Analytics",
            UseCase::AbTesting => "A/B Testing",
            UseCase::Interactive => "Interactive Analytics",
            UseCase::BatchEtl => "Batch ETL",
        }
    }

    /// The catalog each use case runs against (Table I's Connector column).
    pub fn catalog(&self) -> &'static str {
        match self {
            UseCase::DeveloperAdvertiser => "sharded",
            UseCase::AbTesting => "raptor",
            UseCase::Interactive | UseCase::BatchEtl => "hive",
        }
    }

    /// Session tuned per use case.
    pub fn session(&self) -> Session {
        let mut s = Session::for_catalog(self.catalog());
        if *self == UseCase::BatchEtl {
            // ETL favors phased scheduling for memory efficiency (§IV-D1).
            s.scheduling_policy = presto_common::session::SchedulingPolicy::Phased;
        }
        s
    }

    pub fn all() -> [UseCase; 4] {
        [
            UseCase::DeveloperAdvertiser,
            UseCase::AbTesting,
            UseCase::Interactive,
            UseCase::BatchEtl,
        ]
    }
}

/// Samples queries for one use case.
pub struct WorkloadGenerator {
    rng: StdRng,
    pub use_case: UseCase,
}

impl WorkloadGenerator {
    pub fn new(use_case: UseCase, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            use_case,
        }
    }

    /// Next query text. Schemas referenced:
    /// * sharded: `ads(ad_id, advertiser_id, clicks, spend, day)`
    /// * raptor: `exposure(uid, test_id, v)`, `conversion(uid, test_id, v)`
    /// * hive: the TPC-H tables.
    pub fn next_query(&mut self) -> String {
        let rng = &mut self.rng;
        match self.use_case {
            UseCase::DeveloperAdvertiser => {
                // "queries are highly selective… joins, aggregations or
                // window functions" (§II-D); restricted, programmatically
                // generated shapes.
                let advertiser = rng.gen_range(0..50);
                match rng.gen_range(0..3) {
                    0 => format!(
                        "SELECT day, SUM(clicks), SUM(spend) FROM ads \
                         WHERE advertiser_id = {advertiser} GROUP BY day ORDER BY day"
                    ),
                    1 => format!(
                        "SELECT ad_id, c, rank() OVER (ORDER BY c DESC) AS r \
                         FROM (SELECT ad_id, SUM(clicks) AS c FROM ads \
                               WHERE advertiser_id = {advertiser} GROUP BY ad_id) t \
                         ORDER BY c DESC LIMIT 20"
                    ),
                    _ => format!(
                        "SELECT COUNT(*), AVG(spend) FROM ads WHERE advertiser_id = {advertiser} \
                         AND clicks > {}",
                        rng.gen_range(0..5)
                    ),
                }
            }
            UseCase::AbTesting => {
                // "joining multiple large data sets … arbitrary slice and
                // dice at interactive latency" (§II-C); co-located joins.
                let test = rng.gen_range(0..20);
                match rng.gen_range(0..2) {
                    // Full-population join, sliced per test: "producing
                    // results requires joining multiple large data sets".
                    0 => "SELECT e.test_id, COUNT(*) AS exposures, SUM(c.v) AS conversions \
                          FROM exposure e JOIN conversion c ON e.uid = c.uid \
                          GROUP BY e.test_id"
                        .to_string(),
                    _ => format!(
                        "SELECT e.uid, SUM(e.v) AS exposure_v, SUM(c.v) AS conv_v \
                         FROM exposure e JOIN conversion c ON e.uid = c.uid \
                         WHERE e.test_id = {test} \
                         GROUP BY e.uid ORDER BY conv_v DESC LIMIT 100"
                    ),
                }
            }
            UseCase::Interactive => {
                // Ad-hoc exploration over the warehouse (§II-A).
                match rng.gen_range(0..4) {
                    0 => "SELECT returnflag, linestatus, SUM(quantity), AVG(extendedprice) \
                          FROM lineitem GROUP BY returnflag, linestatus"
                        .to_string(),
                    1 => format!(
                        "SELECT o.orderpriority, COUNT(*), AVG(l.quantity) \
                         FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
                         WHERE o.totalprice > {} GROUP BY o.orderpriority",
                        rng.gen_range(100_000..300_000)
                    ),
                    2 => "SELECT c.mktsegment, SUM(o.totalprice) \
                          FROM customer c JOIN orders o ON c.custkey = o.custkey \
                          GROUP BY c.mktsegment ORDER BY 2 DESC"
                        .to_string(),
                    _ => format!(
                        "SELECT shipmode, COUNT(*) FROM lineitem \
                         WHERE discount >= 0.0{} GROUP BY shipmode",
                        rng.gen_range(1..9)
                    ),
                }
            }
            UseCase::BatchEtl => {
                // Large transform + aggregate jobs (§II-B); heaviest shapes.
                match rng.gen_range(0..2) {
                    0 => "SELECT l.suppkey, l.returnflag, SUM(l.extendedprice * (1.0 - l.discount)), \
                          SUM(l.quantity), COUNT(*) \
                          FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
                          GROUP BY l.suppkey, l.returnflag"
                        .to_string(),
                    _ => "SELECT o.custkey, COUNT(*), SUM(o.totalprice), MIN(o.orderdate), \
                          MAX(o.orderdate) \
                          FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
                          GROUP BY o.custkey"
                        .to_string(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = WorkloadGenerator::new(UseCase::Interactive, 42);
        let mut b = WorkloadGenerator::new(UseCase::Interactive, 42);
        for _ in 0..10 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn sessions_point_at_the_right_catalog() {
        assert_eq!(UseCase::AbTesting.session().catalog, "raptor");
        assert_eq!(UseCase::BatchEtl.session().catalog, "hive");
        assert_eq!(
            UseCase::BatchEtl.session().scheduling_policy,
            presto_common::session::SchedulingPolicy::Phased
        );
    }

    #[test]
    fn queries_parse() {
        for use_case in UseCase::all() {
            let mut g = WorkloadGenerator::new(use_case, 7);
            for _ in 0..20 {
                let sql = g.next_query();
                presto_sql::parse_statement(&sql)
                    .unwrap_or_else(|e| panic!("{}: {sql}: {e}", use_case.label()));
            }
        }
    }
}
