//! The Fig. 6 query set.
//!
//! The paper runs a 19-query low-memory subset of TPC-DS (q09…q82) at
//! 30 TB. Per DESIGN.md we substitute star-schema queries over the TPC-H
//! tables that mirror the *shapes* of that subset — scans with selective
//! filters, multi-way joins, grouped aggregations, CASE pivots, and
//! window functions — keeping the paper's labels so Fig. 6 reads the same.

/// (label, SQL) pairs, in the order Fig. 6 plots them.
pub const FIG6_QUERIES: [(&str, &str); 19] = [
    (
        "q09",
        // CASE-pivot over a big scan (TPC-DS q09 is a CASE ladder).
        "SELECT SUM(CASE WHEN quantity BETWEEN 1 AND 10 THEN extendedprice ELSE 0.0 END), \
                SUM(CASE WHEN quantity BETWEEN 11 AND 25 THEN extendedprice ELSE 0.0 END), \
                SUM(CASE WHEN quantity > 25 THEN extendedprice ELSE 0.0 END) \
         FROM lineitem",
    ),
    (
        "q18",
        "SELECT c.mktsegment, AVG(l.quantity), AVG(l.extendedprice), COUNT(*) \
         FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
         JOIN customer c ON o.custkey = c.custkey \
         GROUP BY c.mktsegment",
    ),
    (
        "q20",
        "SELECT p.type, SUM(l.extendedprice * (1.0 - l.discount)) AS revenue \
         FROM lineitem l JOIN part p ON l.partkey = p.partkey \
         WHERE l.shipdate >= DATE '1997-01-01' AND l.shipdate < DATE '1997-04-01' \
         GROUP BY p.type ORDER BY revenue DESC",
    ),
    (
        "q26",
        "SELECT p.brand, AVG(l.quantity), AVG(l.discount), AVG(l.extendedprice) \
         FROM lineitem l JOIN part p ON l.partkey = p.partkey \
         JOIN orders o ON l.orderkey = o.orderkey \
         WHERE o.orderpriority = '1-URGENT' \
         GROUP BY p.brand",
    ),
    (
        "q28",
        "SELECT COUNT(DISTINCT partkey), AVG(extendedprice), COUNT(*) \
         FROM lineitem WHERE quantity < 5 AND discount BETWEEN 0.05 AND 0.07",
    ),
    (
        "q35",
        "SELECT n.name, c.mktsegment, COUNT(*), AVG(c.acctbal) \
         FROM customer c JOIN nation n ON c.nationkey = n.nationkey \
         GROUP BY n.name, c.mktsegment",
    ),
    (
        "q37",
        "SELECT p.name, SUM(ps.availqty) \
         FROM part p JOIN partsupp ps ON p.partkey = ps.partkey \
         WHERE p.size > 40 GROUP BY p.name ORDER BY 2 DESC LIMIT 100",
    ),
    (
        "q44",
        "SELECT * FROM (\
            SELECT partkey, avg_price, rank() OVER (ORDER BY avg_price DESC) AS rnk \
            FROM (SELECT partkey, AVG(extendedprice) AS avg_price \
                  FROM lineitem GROUP BY partkey) agg\
         ) ranked WHERE rnk <= 10",
    ),
    (
        "q50",
        "SELECT o.orderpriority, COUNT(*) \
         FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
         WHERE l.shipdate >= o.orderdate \
         GROUP BY o.orderpriority",
    ),
    (
        "q54",
        "SELECT c.custkey, SUM(o.totalprice) AS spend \
         FROM customer c JOIN orders o ON c.custkey = o.custkey \
         WHERE c.mktsegment = 'AUTOMOBILE' \
         GROUP BY c.custkey ORDER BY spend DESC LIMIT 50",
    ),
    (
        "q60",
        "SELECT n.name, SUM(l.extendedprice) AS rev \
         FROM lineitem l JOIN supplier s ON l.suppkey = s.suppkey \
         JOIN nation n ON s.nationkey = n.nationkey \
         GROUP BY n.name ORDER BY rev DESC",
    ),
    (
        "q64",
        "SELECT p.brand, s.name, COUNT(*) AS cnt \
         FROM lineitem l JOIN part p ON l.partkey = p.partkey \
         JOIN supplier s ON l.suppkey = s.suppkey \
         JOIN orders o ON l.orderkey = o.orderkey \
         WHERE o.orderstatus = 'F' \
         GROUP BY p.brand, s.name ORDER BY cnt DESC LIMIT 100",
    ),
    (
        "q69",
        "SELECT c.mktsegment, COUNT(DISTINCT c.custkey) \
         FROM customer c JOIN orders o ON c.custkey = o.custkey \
         WHERE o.orderdate >= DATE '1995-01-01' AND o.orderdate < DATE '1996-01-01' \
         GROUP BY c.mktsegment",
    ),
    (
        "q71",
        "SELECT p.brand, l.shipmode, SUM(l.extendedprice) \
         FROM lineitem l JOIN part p ON l.partkey = p.partkey \
         WHERE l.shipmode IN ('AIR', 'RAIL') \
         GROUP BY p.brand, l.shipmode",
    ),
    (
        "q73",
        "SELECT o.custkey, COUNT(*) AS cnt FROM orders o \
         WHERE o.orderstatus = 'O' GROUP BY o.custkey HAVING COUNT(*) > 2",
    ),
    (
        "q76",
        "SELECT returnflag, linestatus, COUNT(*), SUM(extendedprice) \
         FROM lineitem GROUP BY returnflag, linestatus \
         UNION ALL \
         SELECT orderstatus, orderpriority, COUNT(*), SUM(totalprice) \
         FROM orders GROUP BY orderstatus, orderpriority",
    ),
    (
        "q78",
        "SELECT l.suppkey, SUM(l.quantity) AS qty, SUM(l.extendedprice) AS price \
         FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey \
         WHERE o.orderstatus <> 'P' \
         GROUP BY l.suppkey ORDER BY qty DESC LIMIT 100",
    ),
    (
        "q80",
        "SELECT n.name, SUM(l.extendedprice * (1.0 - l.discount)) AS net \
         FROM lineitem l \
         JOIN supplier s ON l.suppkey = s.suppkey \
         JOIN nation n ON s.nationkey = n.nationkey \
         JOIN region r ON n.regionkey = r.regionkey \
         WHERE r.name = 'ASIA' AND l.returnflag <> 'R' \
         GROUP BY n.name",
    ),
    (
        "q82",
        "SELECT p.name, p.size, SUM(ps.supplycost * CAST(ps.availqty AS double)) AS inv \
         FROM part p JOIN partsupp ps ON p.partkey = ps.partkey \
         WHERE p.size BETWEEN 10 AND 20 \
         GROUP BY p.name, p.size ORDER BY inv DESC LIMIT 100",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Session;
    use presto_connector::CatalogManager;
    use presto_connectors::MemoryConnector;
    use std::sync::Arc;

    #[test]
    fn all_queries_plan() {
        let mem = MemoryConnector::new();
        crate::tpch::TpchGenerator::new(0.0005).load_memory(&mem);
        let mut catalogs = CatalogManager::new();
        catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
        let session = Session::default();
        for (label, sql) in FIG6_QUERIES {
            let stmt =
                presto_sql::parse_statement(sql).unwrap_or_else(|e| panic!("{label} parse: {e}"));
            presto_planner::plan_statement(&stmt, &session, &catalogs)
                .unwrap_or_else(|e| panic!("{label} plan: {e}"));
        }
    }
}
