//! Arrival processes for the multi-tenant experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Poisson arrivals at a fixed rate (queries/second).
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
}

impl PoissonArrivals {
    pub fn new(rate_per_sec: f64, seed: u64) -> PoissonArrivals {
        assert!(rate_per_sec > 0.0);
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_per_sec,
        }
    }

    /// Next inter-arrival gap (exponential).
    pub fn next_gap(&mut self) -> Duration {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        Duration::from_secs_f64(-u.ln() / self.rate_per_sec)
    }
}

/// A demand curve for the Fig. 8 trace: concurrency swings between a peak
/// and a trough over the window (the paper's 4-hour trace shows demand
/// dropping from 44 concurrent queries to 8 and back).
#[derive(Debug, Clone)]
pub struct DemandCurve {
    pub peak: usize,
    pub trough: usize,
    pub period: Duration,
}

impl DemandCurve {
    /// Target concurrency at time `t` into the window: a raised cosine
    /// starting at the peak, dipping to the trough mid-period.
    pub fn target_at(&self, t: Duration) -> usize {
        let phase = (t.as_secs_f64() / self.period.as_secs_f64()).clamp(0.0, 1.0);
        let cos = (phase * std::f64::consts::TAU).cos(); // 1 → -1 → 1
        let mid = (self.peak + self.trough) as f64 / 2.0;
        let amp = (self.peak - self.trough) as f64 / 2.0;
        (mid + amp * cos).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = PoissonArrivals::new(100.0, 1);
        let total: f64 = (0..10_000).map(|_| p.next_gap().as_secs_f64()).sum();
        let mean = total / 10_000.0;
        assert!((mean - 0.01).abs() < 0.001, "mean={mean}");
    }

    #[test]
    fn demand_curve_swings_peak_trough_peak() {
        let c = DemandCurve {
            peak: 44,
            trough: 8,
            period: Duration::from_secs(100),
        };
        assert_eq!(c.target_at(Duration::ZERO), 44);
        assert_eq!(c.target_at(Duration::from_secs(50)), 8);
        assert_eq!(c.target_at(Duration::from_secs(100)), 44);
        let quarter = c.target_at(Duration::from_secs(25));
        assert!(quarter > 8 && quarter < 44);
    }
}
