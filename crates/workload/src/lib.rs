//! Workloads: data generators, query sets, and arrival processes for the
//! paper's evaluation (§II, §VI).
//!
//! * [`tpch`] — a TPC-H-style data generator (the DESIGN.md stand-in for
//!   the paper's 30 TB TPC-DS corpus) that loads into any connector;
//! * [`queries`] — the 19 star-schema queries labelled q09…q82 mirroring
//!   the join/aggregation/window shapes of the paper's Fig. 6 TPC-DS
//!   subset;
//! * [`usecases`] — the four Table I workload generators (Interactive
//!   Analytics, Batch ETL, A/B Testing, Developer/Advertiser Analytics);
//! * [`arrivals`] — Poisson and time-varying arrival processes for the
//!   Fig. 7 distribution and Fig. 8 utilization experiments.

pub mod arrivals;
pub mod queries;
pub mod tpch;
pub mod usecases;

pub use queries::FIG6_QUERIES;
pub use tpch::TpchGenerator;
pub use usecases::UseCase;
