//! A TPC-H-style data generator.
//!
//! Generates the eight TPC-H tables at a configurable scale factor with
//! realistic distributions (low-cardinality flag columns, skewed keys,
//! date ranges) so that the engine's compressed-block and statistics paths
//! see representative data. Output is columnar [`Page`]s; loaders exist
//! for every built-in connector.

use presto_common::time::days_from_civil;
use presto_common::{DataType, Schema, Value};
use presto_page::Page;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic TPC-H-style generator.
pub struct TpchGenerator {
    /// Scale factor: 1.0 ≈ 6M lineitems. Benchmarks use 0.001–0.1.
    pub scale: f64,
    seed: u64,
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const PART_TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD POLISHED BRASS",
    "SMALL PLATED COPPER",
    "MEDIUM BURNISHED TIN",
    "PROMO BRUSHED NICKEL",
    "LARGE BURNISHED COPPER",
];

impl TpchGenerator {
    pub fn new(scale: f64) -> TpchGenerator {
        TpchGenerator {
            scale,
            seed: 7_2019,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> TpchGenerator {
        self.seed = seed;
        self
    }

    pub fn customer_count(&self) -> usize {
        ((150_000.0 * self.scale) as usize).max(10)
    }

    pub fn orders_count(&self) -> usize {
        self.customer_count() * 10
    }

    pub fn part_count(&self) -> usize {
        ((200_000.0 * self.scale) as usize).max(10)
    }

    pub fn supplier_count(&self) -> usize {
        ((10_000.0 * self.scale) as usize).max(5)
    }

    /// ~4 lineitems per order.
    pub fn lineitem_count(&self) -> usize {
        self.orders_count() * 4
    }

    pub fn region_schema(&self) -> Schema {
        Schema::of(&[("regionkey", DataType::Bigint), ("name", DataType::Varchar)])
    }

    pub fn nation_schema(&self) -> Schema {
        Schema::of(&[
            ("nationkey", DataType::Bigint),
            ("name", DataType::Varchar),
            ("regionkey", DataType::Bigint),
        ])
    }

    pub fn customer_schema(&self) -> Schema {
        Schema::of(&[
            ("custkey", DataType::Bigint),
            ("name", DataType::Varchar),
            ("nationkey", DataType::Bigint),
            ("acctbal", DataType::Double),
            ("mktsegment", DataType::Varchar),
        ])
    }

    pub fn orders_schema(&self) -> Schema {
        Schema::of(&[
            ("orderkey", DataType::Bigint),
            ("custkey", DataType::Bigint),
            ("orderstatus", DataType::Varchar),
            ("totalprice", DataType::Double),
            ("orderdate", DataType::Date),
            ("orderpriority", DataType::Varchar),
        ])
    }

    pub fn lineitem_schema(&self) -> Schema {
        Schema::of(&[
            ("orderkey", DataType::Bigint),
            ("partkey", DataType::Bigint),
            ("suppkey", DataType::Bigint),
            ("linenumber", DataType::Bigint),
            ("quantity", DataType::Double),
            ("extendedprice", DataType::Double),
            ("discount", DataType::Double),
            ("tax", DataType::Double),
            ("returnflag", DataType::Varchar),
            ("linestatus", DataType::Varchar),
            ("shipdate", DataType::Date),
            ("shipinstruct", DataType::Varchar),
            ("shipmode", DataType::Varchar),
        ])
    }

    pub fn part_schema(&self) -> Schema {
        Schema::of(&[
            ("partkey", DataType::Bigint),
            ("name", DataType::Varchar),
            ("brand", DataType::Varchar),
            ("type", DataType::Varchar),
            ("size", DataType::Bigint),
            ("retailprice", DataType::Double),
        ])
    }

    pub fn supplier_schema(&self) -> Schema {
        Schema::of(&[
            ("suppkey", DataType::Bigint),
            ("name", DataType::Varchar),
            ("nationkey", DataType::Bigint),
            ("acctbal", DataType::Double),
        ])
    }

    pub fn partsupp_schema(&self) -> Schema {
        Schema::of(&[
            ("partkey", DataType::Bigint),
            ("suppkey", DataType::Bigint),
            ("availqty", DataType::Bigint),
            ("supplycost", DataType::Double),
        ])
    }

    fn rng(&self, table: &str) -> StdRng {
        let mut seed = self.seed;
        for b in table.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(b as u64);
        }
        StdRng::seed_from_u64(seed)
    }

    fn pages(schema: &Schema, rows: Vec<Vec<Value>>) -> Vec<Page> {
        rows.chunks(8192)
            .map(|chunk| Page::from_rows(schema, chunk))
            .collect()
    }

    pub fn region(&self) -> Vec<Page> {
        let rows = REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| vec![Value::Bigint(i as i64), Value::varchar(*name)])
            .collect();
        Self::pages(&self.region_schema(), rows)
    }

    pub fn nation(&self) -> Vec<Page> {
        let rows = NATIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    Value::Bigint(i as i64),
                    Value::varchar(*name),
                    Value::Bigint((i % REGIONS.len()) as i64),
                ]
            })
            .collect();
        Self::pages(&self.nation_schema(), rows)
    }

    pub fn customer(&self) -> Vec<Page> {
        let mut rng = self.rng("customer");
        let rows = (0..self.customer_count())
            .map(|i| {
                vec![
                    Value::Bigint(i as i64),
                    Value::varchar(format!("Customer#{i:09}")),
                    Value::Bigint(rng.gen_range(0..NATIONS.len() as i64)),
                    Value::Double((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                    Value::varchar(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                ]
            })
            .collect();
        Self::pages(&self.customer_schema(), rows)
    }

    pub fn orders(&self) -> Vec<Page> {
        let mut rng = self.rng("orders");
        let customers = self.customer_count() as i64;
        let start = days_from_civil(1992, 1, 1);
        let end = days_from_civil(1998, 8, 2);
        let rows = (0..self.orders_count())
            .map(|i| {
                let status = match rng.gen_range(0..100) {
                    0..=48 => "F",
                    49..=73 => "O",
                    _ => "P",
                };
                vec![
                    Value::Bigint(i as i64),
                    Value::Bigint(rng.gen_range(0..customers)),
                    Value::varchar(status),
                    Value::Double((rng.gen_range(100_00..500_000_00) as f64) / 100.0),
                    Value::Date(rng.gen_range(start..end)),
                    Value::varchar(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                ]
            })
            .collect();
        Self::pages(&self.orders_schema(), rows)
    }

    pub fn lineitem(&self) -> Vec<Page> {
        let mut rng = self.rng("lineitem");
        let orders = self.orders_count() as i64;
        let parts = self.part_count() as i64;
        let suppliers = self.supplier_count() as i64;
        let start = days_from_civil(1992, 1, 1);
        let end = days_from_civil(1998, 12, 1);
        let rows = (0..self.lineitem_count())
            .map(|i| {
                let qty = rng.gen_range(1..51) as f64;
                let price = (rng.gen_range(900_00..105_000_00) as f64) / 100.0;
                let (flag, status) = if rng.gen_bool(0.5) {
                    (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
                } else {
                    ("N", "O")
                };
                vec![
                    Value::Bigint((i as i64 / 4) % orders),
                    Value::Bigint(rng.gen_range(0..parts)),
                    Value::Bigint(rng.gen_range(0..suppliers)),
                    Value::Bigint((i % 4) as i64 + 1),
                    Value::Double(qty),
                    Value::Double(price),
                    Value::Double(rng.gen_range(0..11) as f64 / 100.0),
                    Value::Double(rng.gen_range(0..9) as f64 / 100.0),
                    Value::varchar(flag),
                    Value::varchar(status),
                    Value::Date(rng.gen_range(start..end)),
                    Value::varchar(SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())]),
                    Value::varchar(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
                ]
            })
            .collect();
        Self::pages(&self.lineitem_schema(), rows)
    }

    pub fn part(&self) -> Vec<Page> {
        let mut rng = self.rng("part");
        let rows = (0..self.part_count())
            .map(|i| {
                vec![
                    Value::Bigint(i as i64),
                    Value::varchar(format!("part {i}")),
                    Value::varchar(format!(
                        "Brand#{}{}",
                        rng.gen_range(1..6),
                        rng.gen_range(1..6)
                    )),
                    Value::varchar(PART_TYPES[rng.gen_range(0..PART_TYPES.len())]),
                    Value::Bigint(rng.gen_range(1..51)),
                    Value::Double((rng.gen_range(900_00..2_000_00) as f64) / 100.0),
                ]
            })
            .collect();
        Self::pages(&self.part_schema(), rows)
    }

    pub fn supplier(&self) -> Vec<Page> {
        let mut rng = self.rng("supplier");
        let rows = (0..self.supplier_count())
            .map(|i| {
                vec![
                    Value::Bigint(i as i64),
                    Value::varchar(format!("Supplier#{i:09}")),
                    Value::Bigint(rng.gen_range(0..NATIONS.len() as i64)),
                    Value::Double((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                ]
            })
            .collect();
        Self::pages(&self.supplier_schema(), rows)
    }

    pub fn partsupp(&self) -> Vec<Page> {
        let mut rng = self.rng("partsupp");
        let suppliers = self.supplier_count() as i64;
        let rows = (0..self.part_count() * 4)
            .map(|i| {
                vec![
                    Value::Bigint((i / 4) as i64),
                    Value::Bigint(rng.gen_range(0..suppliers)),
                    Value::Bigint(rng.gen_range(1..10_000)),
                    Value::Double((rng.gen_range(100..100_000) as f64) / 100.0),
                ]
            })
            .collect();
        Self::pages(&self.partsupp_schema(), rows)
    }

    /// All tables as `(name, schema, pages)`.
    pub fn all_tables(&self) -> Vec<(&'static str, Schema, Vec<Page>)> {
        vec![
            ("region", self.region_schema(), self.region()),
            ("nation", self.nation_schema(), self.nation()),
            ("customer", self.customer_schema(), self.customer()),
            ("orders", self.orders_schema(), self.orders()),
            ("lineitem", self.lineitem_schema(), self.lineitem()),
            ("part", self.part_schema(), self.part()),
            ("supplier", self.supplier_schema(), self.supplier()),
            ("partsupp", self.partsupp_schema(), self.partsupp()),
        ]
    }

    /// Load everything into a memory connector (and analyze for the CBO).
    pub fn load_memory(&self, connector: &presto_connectors::MemoryConnector) {
        for (name, schema, pages) in self.all_tables() {
            connector.load_table(name, schema, pages);
            connector.analyze(name).expect("analyze");
        }
    }

    /// Load everything into a Hive connector.
    pub fn load_hive(
        &self,
        connector: &presto_connectors::HiveConnector,
    ) -> presto_common::Result<()> {
        for (name, schema, pages) in self.all_tables() {
            connector.load_table(name, schema, &pages)?;
        }
        Ok(())
    }

    /// Load everything into a Raptor connector, bucketing the two largest
    /// tables on their join key for co-located joins.
    pub fn load_raptor(
        &self,
        connector: &presto_connectors::RaptorConnector,
        buckets: usize,
    ) -> presto_common::Result<()> {
        for (name, schema, pages) in self.all_tables() {
            match name {
                "orders" | "lineitem" => {
                    // Both bucketed on orderkey (channel 0).
                    connector.create_bucketed_table(name, &schema, vec![0], buckets)?;
                }
                _ => connector.create_table(name, &schema)?,
            }
            connector.load_table(name, &pages)?;
        }
        Ok(())
    }
}

use presto_connector::ConnectorMetadata as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchGenerator::new(0.001).orders();
        let b = TpchGenerator::new(0.001).orders();
        let schema = TpchGenerator::new(0.001).orders_schema();
        assert_eq!(a[0].to_rows(&schema), b[0].to_rows(&schema));
    }

    #[test]
    fn row_counts_scale() {
        let g = TpchGenerator::new(0.001);
        assert_eq!(g.customer_count(), 150);
        assert_eq!(g.orders_count(), 1500);
        assert_eq!(g.lineitem_count(), 6000);
    }

    #[test]
    fn lineitem_columns_have_expected_domains() {
        let g = TpchGenerator::new(0.001);
        let pages = g.lineitem();
        let schema = g.lineitem_schema();
        let flag_idx = schema.index_of("returnflag").unwrap();
        let disc_idx = schema.index_of("discount").unwrap();
        for page in &pages {
            for i in 0..page.row_count() {
                let flag = page.block(flag_idx).str_at(i);
                assert!(["R", "A", "N"].contains(&flag));
                let d = page.block(disc_idx).f64_at(i);
                assert!((0.0..=0.10).contains(&d));
            }
        }
    }

    #[test]
    fn loads_into_memory_with_stats() {
        let mem = presto_connectors::MemoryConnector::new();
        TpchGenerator::new(0.001).load_memory(&mem);
        assert_eq!(mem.list_tables().len(), 8);
        let stats = mem.table_statistics("orders");
        assert_eq!(stats.row_count.value(), Some(1500.0));
    }
}
