#![allow(clippy::unwrap_used)]

//! End-to-end planner tests: SQL text → logical plan → fragments.

use presto_common::{DataType, Schema, Session, Value};
use presto_connector::CatalogManager;
use presto_connectors::{MemoryConnector, RaptorConnector, ShardedSqlConnector};
use presto_planner::plan::PlanNode;
use presto_planner::{
    plan_logical, plan_statement, AggregateStep, FragmentPartitioning, JoinDistribution,
    OutputPartitioning,
};
use presto_sql::parse_statement;
use std::sync::Arc;

fn setup() -> (CatalogManager, Session, Arc<MemoryConnector>) {
    let mem = MemoryConnector::new();
    let orders_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Double),
        ("orderstatus", DataType::Varchar),
    ]);
    let orders: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::Bigint(i % 100),
                Value::Double(i as f64),
                Value::varchar(if i % 2 == 0 { "O" } else { "F" }),
            ]
        })
        .collect();
    mem.load_rows("orders", orders_schema, &orders);
    let lineitem_schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("tax", DataType::Double),
        ("discount", DataType::Double),
    ]);
    let lineitem: Vec<Vec<Value>> = (0..5000)
        .map(|i| {
            vec![
                Value::Bigint(i % 1000),
                Value::Double(0.05),
                Value::Double((i % 10) as f64 / 100.0),
            ]
        })
        .collect();
    mem.load_rows("lineitem", lineitem_schema, &lineitem);
    mem.analyze("orders").unwrap();
    mem.analyze("lineitem").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register(
        "memory",
        Arc::clone(&mem) as Arc<dyn presto_connector::Connector>,
    );
    (catalogs, Session::default(), mem)
}

fn logical(sql: &str) -> PlanNode {
    let (catalogs, session, _) = setup();
    plan_logical(&parse_statement(sql).unwrap(), &session, &catalogs).unwrap()
}

fn count_nodes(plan: &PlanNode, pred: &dyn Fn(&PlanNode) -> bool) -> usize {
    let mut n = usize::from(pred(plan));
    for c in plan.children() {
        n += count_nodes(c, pred);
    }
    n
}

#[test]
fn paper_example_plans() {
    // The running example of §IV-B3 (Fig. 2).
    let plan = logical(
        "SELECT orders.orderkey, SUM(tax) \
         FROM orders \
         LEFT JOIN lineitem ON orders.orderkey = lineitem.orderkey \
         WHERE discount = 0 \
         GROUP BY orders.orderkey",
    );
    let text = plan.explain();
    assert!(text.contains("LeftJoin"), "{text}");
    assert!(text.contains("Aggregate"), "{text}");
    // Equi keys extracted from the ON clause.
    assert_eq!(
        count_nodes(
            &plan,
            &|n| matches!(n, PlanNode::Join { left_keys, .. } if !left_keys.is_empty())
        ),
        1,
        "{text}"
    );
}

#[test]
fn predicate_pushdown_reaches_scan() {
    let plan = logical("SELECT totalprice FROM orders WHERE orderkey = 7 AND totalprice > 3.5");
    // The filter should sit directly above the scan with extracted domains.
    let mut found = false;
    fn find_scan(plan: &PlanNode, found: &mut bool) {
        if let PlanNode::TableScan { predicate, .. } = plan {
            if !predicate.is_all() {
                *found = true;
            }
        }
        for c in plan.children() {
            find_scan(c, found);
        }
    }
    find_scan(&plan, &mut found);
    assert!(
        found,
        "scan should carry pushed-down domains:\n{}",
        plan.explain()
    );
}

#[test]
fn column_pruning_narrows_scan() {
    let plan = logical("SELECT orderstatus FROM orders WHERE orderkey < 10");
    fn scan_width(plan: &PlanNode) -> Option<usize> {
        if let PlanNode::TableScan { columns, .. } = plan {
            return Some(columns.len());
        }
        plan.children().into_iter().find_map(scan_width)
    }
    // Only orderkey + orderstatus should be read.
    assert_eq!(scan_width(&plan), Some(2), "{}", plan.explain());
}

#[test]
fn constant_folding() {
    let plan = logical("SELECT orderkey + (1 + 2) FROM orders");
    let text = plan.explain();
    assert!(text.contains("+ 3)"), "constant folded:\n{text}");
}

#[test]
fn small_build_side_broadcasts_with_stats() {
    let (catalogs, session, _) = setup();
    // lineitem (5000) joined with a tiny filtered orders side.
    let stmt = parse_statement(
        "SELECT l.tax FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey WHERE o.orderkey = 1",
    )
    .unwrap();
    let plan = plan_logical(&stmt, &session, &catalogs).unwrap();
    let broadcasts = count_nodes(&plan, &|n| {
        matches!(
            n,
            PlanNode::Join {
                distribution: Some(JoinDistribution::Replicated),
                ..
            }
        )
    });
    assert_eq!(broadcasts, 1, "{}", plan.explain());
}

#[test]
fn unknown_stats_default_to_partitioned() {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[("k", DataType::Bigint)]);
    mem.load_rows("a", schema.clone(), &[vec![Value::Bigint(1)]]);
    mem.load_rows("b", schema, &[vec![Value::Bigint(1)]]);
    // no analyze(): stats unknown
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    let session = Session::default();
    let stmt = parse_statement("SELECT * FROM a JOIN b ON a.k = b.k").unwrap();
    let plan = plan_logical(&stmt, &session, &catalogs).unwrap();
    let partitioned = count_nodes(&plan, &|n| {
        matches!(
            n,
            PlanNode::Join {
                distribution: Some(JoinDistribution::Partitioned),
                ..
            }
        )
    });
    assert_eq!(partitioned, 1, "{}", plan.explain());
}

#[test]
fn fragmentation_of_aggregate_produces_partial_final() {
    let (catalogs, session, _) = setup();
    let stmt = parse_statement("SELECT custkey, COUNT(*) FROM orders GROUP BY custkey").unwrap();
    let plan = plan_statement(&stmt, &session, &catalogs).unwrap();
    // Expect: source fragment with partial agg → hash exchange → final agg
    // → gather → output.
    assert!(plan.fragments.len() >= 3, "{}", plan.explain());
    let mut partials = 0;
    let mut finals = 0;
    for f in &plan.fragments {
        partials += count_nodes(&f.root, &|n| {
            matches!(
                n,
                PlanNode::Aggregate {
                    step: AggregateStep::Partial,
                    ..
                }
            )
        });
        finals += count_nodes(&f.root, &|n| {
            matches!(
                n,
                PlanNode::Aggregate {
                    step: AggregateStep::Final,
                    ..
                }
            )
        });
    }
    assert_eq!((partials, finals), (1, 1), "{}", plan.explain());
    // The partial fragment is source-partitioned and hash-outputs.
    let partial_frag = plan
        .fragments
        .iter()
        .find(|f| {
            count_nodes(&f.root, &|n| {
                matches!(
                    n,
                    PlanNode::Aggregate {
                        step: AggregateStep::Partial,
                        ..
                    }
                )
            }) > 0
        })
        .unwrap();
    assert!(matches!(
        partial_frag.partitioning,
        FragmentPartitioning::Source { .. }
    ));
    assert!(matches!(
        partial_frag.output,
        OutputPartitioning::Hash { .. }
    ));
}

#[test]
fn co_located_join_elides_all_shuffles() {
    // Two Raptor tables bucketed identically on the join key (§IV-C3: "the
    // engine takes advantage of the fact that both tables participating in
    // the join are partitioned on the same column, and uses a co-located
    // join strategy to eliminate a resource-intensive shuffle").
    let dir = std::env::temp_dir().join(format!("raptor-colo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let nodes: Vec<presto_common::NodeId> = (0..2).map(presto_common::NodeId).collect();
    let raptor = RaptorConnector::new(&dir, nodes).unwrap();
    let schema = Schema::of(&[("uid", DataType::Bigint), ("v", DataType::Double)]);
    raptor
        .create_bucketed_table("exposure", &schema, vec![0], 4)
        .unwrap();
    raptor
        .create_bucketed_table("conversion", &schema, vec![0], 4)
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| vec![Value::Bigint(i), Value::Double(i as f64)])
        .collect();
    raptor
        .load_table("exposure", &[presto_page::Page::from_rows(&schema, &rows)])
        .unwrap();
    raptor
        .load_table(
            "conversion",
            &[presto_page::Page::from_rows(&schema, &rows)],
        )
        .unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("raptor", raptor as Arc<dyn presto_connector::Connector>);
    let session = Session::for_catalog("raptor");
    let stmt = parse_statement(
        "SELECT e.uid, e.v + c.v FROM exposure e JOIN conversion c ON e.uid = c.uid",
    )
    .unwrap();
    let plan = plan_statement(&stmt, &session, &catalogs).unwrap();
    // One source fragment with the join + one root gather = exactly 1
    // shuffle (the final gather), compared with 3 for the naive plan.
    assert_eq!(plan.fragments.len(), 2, "{}", plan.explain());
    let join_frag = &plan.fragments[0];
    assert_eq!(
        count_nodes(&join_frag.root, &|n| matches!(n, PlanNode::Join { .. })),
        1
    );
    assert_eq!(
        join_frag.partitioning,
        FragmentPartitioning::Source {
            bucket_count: Some(4)
        },
        "{}",
        plan.explain()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bucketed_aggregation_elides_shuffle() {
    let dir = std::env::temp_dir().join(format!("raptor-agg-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let raptor = RaptorConnector::new(&dir, vec![presto_common::NodeId(0)]).unwrap();
    let schema = Schema::of(&[("uid", DataType::Bigint), ("v", DataType::Double)]);
    raptor
        .create_bucketed_table("t", &schema, vec![0], 4)
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| vec![Value::Bigint(i % 10), Value::Double(1.0)])
        .collect();
    raptor
        .load_table("t", &[presto_page::Page::from_rows(&schema, &rows)])
        .unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("raptor", raptor as Arc<dyn presto_connector::Connector>);
    let session = Session::for_catalog("raptor");
    let stmt = parse_statement("SELECT uid, SUM(v) FROM t GROUP BY uid").unwrap();
    let plan = plan_statement(&stmt, &session, &catalogs).unwrap();
    // Aggregation happens in the source fragment (single step, no partial).
    let mut singles = 0;
    for f in &plan.fragments {
        singles += count_nodes(&f.root, &|n| {
            matches!(
                n,
                PlanNode::Aggregate {
                    step: AggregateStep::Single,
                    ..
                }
            )
        });
    }
    assert_eq!(singles, 1, "{}", plan.explain());
    assert_eq!(
        plan.fragments.len(),
        2,
        "only the output gather:\n{}",
        plan.explain()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_join_selected_for_indexed_connector() {
    let sharded = ShardedSqlConnector::new(4);
    let schema = Schema::of(&[("ad_id", DataType::Bigint), ("clicks", DataType::Bigint)]);
    let rows: Vec<Vec<Value>> = (0..100_000)
        .map(|i| vec![Value::Bigint(i % 1000), Value::Bigint(i)])
        .collect();
    sharded.load_table("ads", schema, 0, &rows);
    let mem = MemoryConnector::new();
    let probe_schema = Schema::of(&[("id", DataType::Bigint)]);
    mem.load_rows(
        "probe",
        probe_schema,
        &[vec![Value::Bigint(3)], vec![Value::Bigint(5)]],
    );
    mem.analyze("probe").unwrap();
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    catalogs.register("sharded", sharded as Arc<dyn presto_connector::Connector>);
    let session = Session::default();
    let stmt =
        parse_statement("SELECT p.id, a.clicks FROM probe p JOIN sharded.ads a ON p.id = a.ad_id")
            .unwrap();
    let plan = plan_logical(&stmt, &session, &catalogs).unwrap();
    assert_eq!(
        count_nodes(&plan, &|n| matches!(n, PlanNode::IndexJoin { .. })),
        1,
        "{}",
        plan.explain()
    );
}

#[test]
fn join_reordering_puts_small_side_on_build() {
    let (catalogs, session, _) = setup();
    // orders (1000 rows) JOIN lineitem (5000 rows): build should be orders.
    let stmt = parse_statement(
        "SELECT o.orderkey FROM lineitem l JOIN orders o ON l.orderkey = o.orderkey",
    )
    .unwrap();
    let plan = plan_logical(&stmt, &session, &catalogs).unwrap();
    fn find_join(plan: &PlanNode) -> Option<(&PlanNode, &PlanNode)> {
        if let PlanNode::Join { left, right, .. } = plan {
            return Some((left, right));
        }
        plan.children().into_iter().find_map(find_join)
    }
    let (_, right) = find_join(&plan).expect("join in plan");
    // Build (right) side should be the orders table.
    fn scans_table(plan: &PlanNode, t: &str) -> bool {
        if let PlanNode::TableScan { table, .. } = plan {
            return table == t;
        }
        plan.children().into_iter().any(|c| scans_table(c, t))
    }
    assert!(scans_table(right, "orders"), "{}", plan.explain());
}

#[test]
fn analyzer_rejects_bad_queries() {
    let (catalogs, session, _) = setup();
    for sql in [
        "SELECT nosuch FROM orders",
        "SELECT * FROM nosuchtable",
        "SELECT orderkey FROM orders WHERE orderstatus + 1 = 2",
        "SELECT orderkey, SUM(tax) FROM orders, lineitem",
        "SELECT custkey FROM orders GROUP BY orderkey",
        "SELECT orderkey FROM orders ORDER BY 99",
        "SELECT sum(totalprice) FROM orders WHERE sum(totalprice) > 1",
    ] {
        let stmt = parse_statement(sql).unwrap();
        assert!(
            plan_logical(&stmt, &session, &catalogs).is_err(),
            "expected analysis error for: {sql}"
        );
    }
}

#[test]
fn insert_plan_has_writer_fragment() {
    let (catalogs, session, mem) = setup();
    mem.create_table("orders_copy", &mem.table_schema("orders").unwrap())
        .unwrap();
    let stmt = parse_statement("INSERT INTO orders_copy SELECT * FROM orders").unwrap();
    let plan = plan_statement(&stmt, &session, &catalogs).unwrap();
    assert!(
        plan.fragments.iter().any(|f| f.has_writer()),
        "{}",
        plan.explain()
    );
    assert_eq!(plan.output_schema().field(0).name, "rows");
}

#[test]
fn topn_split_into_partial_and_final() {
    let (catalogs, session, _) = setup();
    let stmt = parse_statement(
        "SELECT orderkey, totalprice FROM orders ORDER BY totalprice DESC LIMIT 10",
    )
    .unwrap();
    let plan = plan_statement(&stmt, &session, &catalogs).unwrap();
    let mut topns = 0;
    for f in &plan.fragments {
        topns += count_nodes(&f.root, &|n| matches!(n, PlanNode::TopN { .. }));
    }
    assert_eq!(topns, 2, "partial + final TopN:\n{}", plan.explain());
}

use presto_connector::ConnectorMetadata;
