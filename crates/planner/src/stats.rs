//! Cardinality estimation for cost-based decisions.
//!
//! §IV-C: "Presto already supports two cost-based optimizations that take
//! table and column statistics into account — join strategy selection and
//! join re-ordering." Estimates flow bottom-up from connector-reported
//! [`TableStatistics`] using the classical uniformity/independence
//! heuristics; anything unknown stays unknown ([`Estimate::UNKNOWN`]), and
//! the optimizer degrades to syntactic defaults — exactly the Fig. 6
//! "no stats" configuration.

use presto_common::{ColumnStatistics, Estimate, TableStatistics, Value};
use presto_connector::CatalogManager;
use presto_expr::{CmpOp, Expr};

use crate::plan::{AggregateStep, JoinType, PlanNode};

/// Statistics for one plan node's output.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    pub rows: Estimate,
    /// Parallel to the node's output schema; may be empty when unknown.
    pub columns: Vec<ColumnStatistics>,
}

impl PlanStats {
    pub fn unknown() -> PlanStats {
        PlanStats::default()
    }

    fn column(&self, i: usize) -> ColumnStatistics {
        self.columns.get(i).cloned().unwrap_or_default()
    }
}

/// Estimate output statistics of `node`.
pub fn estimate(node: &PlanNode, catalogs: &CatalogManager) -> PlanStats {
    match node {
        PlanNode::TableScan {
            catalog,
            table,
            columns,
            predicate,
            ..
        } => {
            let Ok(connector) = catalogs.catalog(catalog) else {
                return PlanStats::unknown();
            };
            let stats: TableStatistics = connector.metadata().table_statistics(table);
            let mut rows = stats.row_count;
            // Scale by pushed-down predicate selectivity.
            for col in predicate.columns() {
                let Some(domain) = predicate.domain(col) else {
                    continue;
                };
                let cs = stats.column(col);
                let sel = match domain {
                    presto_connector::Domain::Set(values) => {
                        cs.equality_selectivity().map(|s| s * values.len() as f64)
                    }
                    presto_connector::Domain::Range { min, max } => {
                        cs.range_selectivity(min.as_ref(), max.as_ref())
                    }
                };
                rows = rows.zip(sel, |r, s| r * s.min(1.0));
            }
            PlanStats {
                rows,
                columns: columns.iter().map(|&c| stats.column(c)).collect(),
            }
        }
        PlanNode::Values { rows, .. } => PlanStats {
            rows: Estimate::exact(rows.len() as f64),
            columns: vec![],
        },
        PlanNode::Filter {
            input, predicate, ..
        } => {
            let input_stats = estimate(input, catalogs);
            let sel = selectivity(predicate, &input_stats);
            PlanStats {
                rows: input_stats.rows.zip(sel, |r, s| r * s),
                columns: input_stats.columns.clone(),
            }
        }
        PlanNode::Project {
            input, expressions, ..
        } => {
            let input_stats = estimate(input, catalogs);
            let columns = expressions
                .iter()
                .map(|e| match e {
                    Expr::Column { index, .. } => input_stats.column(*index),
                    _ => ColumnStatistics::unknown(),
                })
                .collect();
            PlanStats {
                rows: input_stats.rows,
                columns,
            }
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggregates,
            step,
            ..
        } => {
            let input_stats = estimate(input, catalogs);
            if group_by.is_empty() {
                return PlanStats {
                    rows: Estimate::exact(1.0),
                    columns: vec![],
                };
            }
            // Output rows = product of group-key NDVs, capped by input rows.
            let mut groups = Estimate::exact(1.0);
            for &g in group_by {
                groups = groups.zip(input_stats.column(g).distinct_count, |a, b| a * b.max(1.0));
            }
            let rows = match (groups.value(), input_stats.rows.value()) {
                (Some(g), Some(r)) => Estimate::exact(g.min(r)),
                _ => match step {
                    // Partial aggregation never expands.
                    AggregateStep::Partial => input_stats.rows,
                    _ => Estimate::unknown(),
                },
            };
            let mut columns: Vec<ColumnStatistics> =
                group_by.iter().map(|&g| input_stats.column(g)).collect();
            columns.extend(aggregates.iter().map(|_| ColumnStatistics::unknown()));
            PlanStats { rows, columns }
        }
        PlanNode::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            ..
        } => {
            let l = estimate(left, catalogs);
            let r = estimate(right, catalogs);
            let rows = match join_type {
                JoinType::Cross => l.rows.zip(r.rows, |a, b| a * b),
                _ if left_keys.is_empty() => l.rows.zip(r.rows, |a, b| a * b),
                _ => {
                    // |L ⋈ R| ≈ |L|·|R| / max(ndv(keys)); fall back to the
                    // FK assumption (larger side) when NDVs are unknown.
                    let ndv = left_keys.iter().zip(right_keys).fold(
                        Estimate::exact(1.0),
                        |acc, (&lk, &rk)| {
                            let n = match (
                                l.column(lk).distinct_count.value(),
                                r.column(rk).distinct_count.value(),
                            ) {
                                (Some(a), Some(b)) => Estimate::exact(a.max(b)),
                                (Some(a), None) => Estimate::exact(a),
                                (None, Some(b)) => Estimate::exact(b),
                                _ => Estimate::unknown(),
                            };
                            acc.zip(n, |a, b| a * b.max(1.0))
                        },
                    );
                    match (l.rows.value(), r.rows.value(), ndv.value()) {
                        (Some(a), Some(b), Some(n)) => Estimate::exact(a * b / n.max(1.0)),
                        (Some(a), Some(b), None) => Estimate::exact(a.max(b)),
                        _ => Estimate::unknown(),
                    }
                }
            };
            let mut columns = l.columns.clone();
            // Pad to the left schema width before appending right stats.
            let lwidth = left.output_schema().len();
            columns.resize(lwidth, ColumnStatistics::unknown());
            columns.extend(r.columns);
            PlanStats { rows, columns }
        }
        PlanNode::IndexJoin { probe, .. } => {
            // Index joins look up a bounded number of rows per probe row.
            let p = estimate(probe, catalogs);
            PlanStats {
                rows: p.rows,
                columns: p.columns,
            }
        }
        PlanNode::Sort { input, .. } | PlanNode::Window { input, .. } => estimate(input, catalogs),
        PlanNode::TopN { input, count, .. } | PlanNode::Limit { input, count, .. } => {
            let s = estimate(input, catalogs);
            let rows = match s.rows.value() {
                Some(r) => Estimate::exact(r.min(*count as f64)),
                None => Estimate::exact(*count as f64),
            };
            PlanStats {
                rows,
                columns: s.columns,
            }
        }
        PlanNode::Union { inputs, .. } => {
            let mut rows = Estimate::exact(0.0);
            for i in inputs {
                rows = rows.zip(estimate(i, catalogs).rows, |a, b| a + b);
            }
            PlanStats {
                rows,
                columns: vec![],
            }
        }
        PlanNode::TableWrite { .. } => PlanStats {
            rows: Estimate::exact(1.0),
            columns: vec![],
        },
        PlanNode::Output { input, .. } => estimate(input, catalogs),
        PlanNode::RemoteSource { .. } => PlanStats::unknown(),
    }
}

/// Predicate selectivity against input column statistics. Unknown inputs
/// yield unknown output (never a made-up constant) — the CBO rules check
/// `is_known` before acting, mirroring the paper's stats-dependent
/// optimizations.
pub fn selectivity(predicate: &Expr, input: &PlanStats) -> Estimate {
    match predicate {
        Expr::And(parts) => parts.iter().fold(Estimate::exact(1.0), |acc, p| {
            acc.zip(selectivity(p, input), |a, b| a * b)
        }),
        Expr::Or(parts) => {
            // P(a ∨ b) = 1 - Π(1 - P)
            let mut none_prob = Estimate::exact(1.0);
            for p in parts {
                none_prob = none_prob.zip(selectivity(p, input), |acc, s| acc * (1.0 - s));
            }
            none_prob.map(|p| 1.0 - p)
        }
        Expr::Not(inner) => selectivity(inner, input).map(|s| 1.0 - s),
        Expr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column { index, .. }, Expr::Literal { value, .. }) => {
                column_cmp_selectivity(*op, input.column(*index), value)
            }
            (Expr::Literal { value, .. }, Expr::Column { index, .. }) => {
                column_cmp_selectivity(op.flip(), input.column(*index), value)
            }
            _ => Estimate::unknown(),
        },
        Expr::InList { expr, list } => match expr.as_ref() {
            Expr::Column { index, .. } => input
                .column(*index)
                .equality_selectivity()
                .map(|s| (s * list.len() as f64).min(1.0)),
            _ => Estimate::unknown(),
        },
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Column { index, .. } => input.column(*index).null_fraction,
            _ => Estimate::unknown(),
        },
        Expr::Literal {
            value: Value::Boolean(true),
            ..
        } => Estimate::exact(1.0),
        Expr::Literal {
            value: Value::Boolean(false),
            ..
        } => Estimate::exact(0.0),
        _ => Estimate::unknown(),
    }
}

fn column_cmp_selectivity(op: CmpOp, stats: ColumnStatistics, value: &Value) -> Estimate {
    match op {
        CmpOp::Eq => stats.equality_selectivity(),
        CmpOp::Ne => stats.equality_selectivity().map(|s| 1.0 - s),
        CmpOp::Lt | CmpOp::Le => stats.range_selectivity(None, Some(value)),
        CmpOp::Gt | CmpOp::Ge => stats.range_selectivity(Some(value), None),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::DataType;

    fn stats_with(ndv: f64, min: i64, max: i64, rows: f64) -> PlanStats {
        PlanStats {
            rows: Estimate::exact(rows),
            columns: vec![ColumnStatistics {
                distinct_count: Estimate::exact(ndv),
                null_fraction: Estimate::exact(0.0),
                min: Some(Value::Bigint(min)),
                max: Some(Value::Bigint(max)),
                avg_size: Estimate::unknown(),
            }],
        }
    }

    #[test]
    fn equality_and_range_selectivity() {
        let s = stats_with(100.0, 0, 1000, 10_000.0);
        let eq = Expr::cmp(
            CmpOp::Eq,
            Expr::column(0, DataType::Bigint),
            Expr::literal(5i64),
        );
        assert!((selectivity(&eq, &s).value().unwrap() - 0.01).abs() < 1e-9);
        let range = Expr::cmp(
            CmpOp::Ge,
            Expr::column(0, DataType::Bigint),
            Expr::literal(750i64),
        );
        assert!((selectivity(&range, &s).value().unwrap() - 0.25).abs() < 1e-9);
        // literal on the left flips the operator
        let flipped = Expr::cmp(
            CmpOp::Le,
            Expr::literal(750i64),
            Expr::column(0, DataType::Bigint),
        );
        assert!((selectivity(&flipped, &s).value().unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = stats_with(10.0, 0, 100, 1000.0);
        let e = Expr::and(vec![
            Expr::cmp(
                CmpOp::Eq,
                Expr::column(0, DataType::Bigint),
                Expr::literal(1i64),
            ),
            Expr::cmp(
                CmpOp::Eq,
                Expr::column(0, DataType::Bigint),
                Expr::literal(2i64),
            ),
        ]);
        assert!((selectivity(&e, &s).value().unwrap() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unknown_stays_unknown() {
        let s = PlanStats::unknown();
        let e = Expr::cmp(
            CmpOp::Eq,
            Expr::column(0, DataType::Bigint),
            Expr::literal(1i64),
        );
        assert!(!selectivity(&e, &s).is_known());
    }

    #[test]
    fn in_list_scales_by_size() {
        let s = stats_with(100.0, 0, 1000, 10_000.0);
        let e = Expr::InList {
            expr: Box::new(Expr::column(0, DataType::Bigint)),
            list: vec![Value::Bigint(1), Value::Bigint(2), Value::Bigint(3)],
        };
        assert!((selectivity(&e, &s).value().unwrap() - 0.03).abs() < 1e-9);
    }
}
