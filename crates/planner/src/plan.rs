//! The logical/physical plan IR.
//!
//! The analyzer produces a tree of [`PlanNode`]s; optimizer rules rewrite
//! it; the fragmenter cuts it into per-stage fragments at exchange
//! boundaries. Nodes are "purely logical" at first (§IV-B3) — join
//! distribution and exchanges appear during optimization, mirroring the
//! paper's Figure 2 → Figure 3 progression.

use presto_common::{DataType, Field, PlanNodeId, Schema, Value};
use presto_connector::TupleDomain;
use presto_expr::{AggregateFunction, Expr, WindowFunction};
use std::fmt::Write as _;

/// Join types after analysis. RIGHT joins are normalized to LEFT by
/// swapping inputs, so execution only sees these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Cross,
}

/// How a join's build side is distributed (§IV-C "join strategy selection").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinDistribution {
    /// Both sides hash-partitioned on the join keys.
    Partitioned,
    /// Build side replicated to every probe task.
    Replicated,
}

/// One ORDER BY key over input channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub channel: usize,
    pub ascending: bool,
    pub nulls_first: bool,
}

/// One aggregate in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    pub function: AggregateFunction,
    /// Input channel; `None` for `COUNT(*)`.
    pub input: Option<usize>,
    /// Output column name.
    pub name: String,
}

/// Phase of a distributed aggregation (Fig. 3: AggregatePartial /
/// AggregateFinal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateStep {
    Single,
    Partial,
    Final,
}

/// One window function in a Window node.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFnSpec {
    pub function: WindowFunction,
    /// Argument channel, for aggregate window functions.
    pub input: Option<usize>,
    pub name: String,
}

/// A plan node. Children are boxed; every node can derive its output
/// schema from its children.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Leaf: scan `columns` of `catalog.table` under `layout`, with
    /// `predicate` pushed into the connector.
    TableScan {
        id: PlanNodeId,
        catalog: String,
        table: String,
        layout: String,
        /// Full table schema (for column-index bookkeeping).
        table_schema: Schema,
        /// Projected column indices into `table_schema`, in output order.
        columns: Vec<usize>,
        /// Predicate pushed down to the connector (over table schema
        /// indices). The engine re-applies any residual filter above.
        predicate: TupleDomain,
    },
    /// Inline literal rows.
    Values {
        id: PlanNodeId,
        schema: Schema,
        rows: Vec<Vec<Value>>,
    },
    Filter {
        id: PlanNodeId,
        input: Box<PlanNode>,
        predicate: Expr,
    },
    Project {
        id: PlanNodeId,
        input: Box<PlanNode>,
        expressions: Vec<Expr>,
        names: Vec<String>,
    },
    Aggregate {
        id: PlanNodeId,
        input: Box<PlanNode>,
        /// Grouping key channels of the input.
        group_by: Vec<usize>,
        aggregates: Vec<AggregateSpec>,
        step: AggregateStep,
    },
    Join {
        id: PlanNodeId,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        join_type: JoinType,
        /// Equi-join key channels (empty for cross joins).
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        /// Residual non-equi condition over the concatenated (left ++
        /// right) schema.
        filter: Option<Expr>,
        /// Chosen by the optimizer; `None` until then.
        distribution: Option<JoinDistribution>,
    },
    /// Index-nested-loop join (§IV-B3-3): probe rows look up an indexed
    /// connector table.
    IndexJoin {
        id: PlanNodeId,
        probe: Box<PlanNode>,
        catalog: String,
        table: String,
        table_schema: Schema,
        /// Probe-side key channels.
        probe_keys: Vec<usize>,
        /// Indexed columns of the table (parallel to `probe_keys`).
        index_keys: Vec<usize>,
        /// Table columns appended to the probe output.
        output_columns: Vec<usize>,
    },
    Sort {
        id: PlanNodeId,
        input: Box<PlanNode>,
        keys: Vec<SortKey>,
    },
    TopN {
        id: PlanNodeId,
        input: Box<PlanNode>,
        keys: Vec<SortKey>,
        count: u64,
    },
    Limit {
        id: PlanNodeId,
        input: Box<PlanNode>,
        count: u64,
    },
    Window {
        id: PlanNodeId,
        input: Box<PlanNode>,
        partition_by: Vec<usize>,
        order_by: Vec<SortKey>,
        functions: Vec<WindowFnSpec>,
    },
    /// UNION ALL.
    Union {
        id: PlanNodeId,
        inputs: Vec<PlanNode>,
    },
    /// INSERT target; output is a single row count.
    TableWrite {
        id: PlanNodeId,
        input: Box<PlanNode>,
        catalog: String,
        table: String,
    },
    /// Root: names the final output columns.
    Output {
        id: PlanNodeId,
        input: Box<PlanNode>,
        names: Vec<String>,
    },
    /// Fragment boundary (inserted by the fragmenter): reads the output of
    /// another fragment.
    RemoteSource {
        id: PlanNodeId,
        fragment: u32,
        schema: Schema,
    },
}

impl PlanNode {
    pub fn id(&self) -> PlanNodeId {
        match self {
            PlanNode::TableScan { id, .. }
            | PlanNode::Values { id, .. }
            | PlanNode::Filter { id, .. }
            | PlanNode::Project { id, .. }
            | PlanNode::Aggregate { id, .. }
            | PlanNode::Join { id, .. }
            | PlanNode::IndexJoin { id, .. }
            | PlanNode::Sort { id, .. }
            | PlanNode::TopN { id, .. }
            | PlanNode::Limit { id, .. }
            | PlanNode::Window { id, .. }
            | PlanNode::Union { id, .. }
            | PlanNode::TableWrite { id, .. }
            | PlanNode::Output { id, .. }
            | PlanNode::RemoteSource { id, .. } => *id,
        }
    }

    /// Immutable children, in order.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::TableScan { .. }
            | PlanNode::Values { .. }
            | PlanNode::RemoteSource { .. } => vec![],
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::TopN { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Window { input, .. }
            | PlanNode::TableWrite { input, .. }
            | PlanNode::Output { input, .. } => vec![input],
            PlanNode::IndexJoin { probe, .. } => vec![probe],
            PlanNode::Join { left, right, .. } => vec![left, right],
            PlanNode::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Output schema, derived recursively.
    pub fn output_schema(&self) -> Schema {
        match self {
            PlanNode::TableScan {
                table_schema,
                columns,
                ..
            } => table_schema.project(columns),
            PlanNode::Values { schema, .. } => schema.clone(),
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::TopN { input, .. }
            | PlanNode::Limit { input, .. } => input.output_schema(),
            PlanNode::Project {
                input,
                expressions,
                names,
                ..
            } => {
                let _ = input;
                names
                    .iter()
                    .zip(expressions)
                    .map(|(n, e)| Field::new(n.clone(), e.data_type()))
                    .collect()
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggregates,
                step,
                ..
            } => {
                let input_schema = input.output_schema();
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|&c| input_schema.field(c).clone())
                    .collect();
                for agg in aggregates {
                    match step {
                        AggregateStep::Partial => {
                            for (i, t) in agg.function.intermediate_types().iter().enumerate() {
                                fields.push(Field::new(format!("{}${i}", agg.name), *t));
                            }
                        }
                        _ => fields.push(Field::new(agg.name.clone(), agg.function.output_type())),
                    }
                }
                Schema::new(fields)
            }
            PlanNode::Join {
                left,
                right,
                join_type,
                ..
            } => match join_type {
                JoinType::Inner | JoinType::Left | JoinType::Cross => {
                    left.output_schema().join(&right.output_schema())
                }
            },
            PlanNode::IndexJoin {
                probe,
                table_schema,
                output_columns,
                ..
            } => probe
                .output_schema()
                .join(&table_schema.project(output_columns)),
            PlanNode::Window {
                input, functions, ..
            } => {
                let mut fields = input.output_schema().fields().to_vec();
                for f in functions {
                    fields.push(Field::new(f.name.clone(), f.function.output_type()));
                }
                Schema::new(fields)
            }
            PlanNode::Union { inputs, .. } => inputs[0].output_schema(),
            PlanNode::TableWrite { .. } => Schema::of(&[("rows", DataType::Bigint)]),
            PlanNode::Output { input, names, .. } => {
                let input_schema = input.output_schema();
                names
                    .iter()
                    .zip(input_schema.fields())
                    .map(|(n, f)| Field::new(n.clone(), f.data_type))
                    .collect()
            }
            PlanNode::RemoteSource { schema, .. } => schema.clone(),
        }
    }

    /// Pretty-printed plan (the `EXPLAIN` output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::TableScan {
                catalog,
                table,
                columns,
                predicate,
                ..
            } => {
                let _ = write!(
                    out,
                    "{pad}- TableScan[{catalog}.{table} columns={columns:?}"
                );
                if !predicate.is_all() {
                    let _ = write!(out, " pushed={}", predicate.columns().count());
                }
                let _ = writeln!(out, "]");
            }
            PlanNode::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}- Values[{} rows]", rows.len());
            }
            PlanNode::Filter { predicate, .. } => {
                let _ = writeln!(out, "{pad}- Filter[{predicate}]");
            }
            PlanNode::Project { expressions, .. } => {
                let exprs: Vec<String> = expressions.iter().map(|e| e.to_string()).collect();
                let _ = writeln!(out, "{pad}- Project[{}]", exprs.join(", "));
            }
            PlanNode::Aggregate {
                group_by,
                aggregates,
                step,
                ..
            } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({:?})", a.name, a.input))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}- Aggregate[{step:?} group_by={group_by:?} aggs=[{}]]",
                    aggs.join(", ")
                );
            }
            PlanNode::Join {
                join_type,
                left_keys,
                right_keys,
                distribution,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}- {join_type:?}Join[{left_keys:?} = {right_keys:?} dist={distribution:?}]"
                );
            }
            PlanNode::IndexJoin {
                catalog,
                table,
                probe_keys,
                index_keys,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}- IndexJoin[{catalog}.{table} probe={probe_keys:?} index={index_keys:?}]"
                );
            }
            PlanNode::Sort { keys, .. } => {
                let _ = writeln!(out, "{pad}- Sort[{keys:?}]");
            }
            PlanNode::TopN { keys, count, .. } => {
                let _ = writeln!(out, "{pad}- TopN[{count} by {keys:?}]");
            }
            PlanNode::Limit { count, .. } => {
                let _ = writeln!(out, "{pad}- Limit[{count}]");
            }
            PlanNode::Window {
                partition_by,
                functions,
                ..
            } => {
                let names: Vec<&str> = functions.iter().map(|f| f.name.as_str()).collect();
                let _ = writeln!(
                    out,
                    "{pad}- Window[partition_by={partition_by:?} fns={names:?}]"
                );
            }
            PlanNode::Union { inputs, .. } => {
                let _ = writeln!(out, "{pad}- Union[{} inputs]", inputs.len());
            }
            PlanNode::TableWrite { catalog, table, .. } => {
                let _ = writeln!(out, "{pad}- TableWrite[{catalog}.{table}]");
            }
            PlanNode::Output { names, .. } => {
                let _ = writeln!(out, "{pad}- Output[{}]", names.join(", "));
            }
            PlanNode::RemoteSource { fragment, .. } => {
                let _ = writeln!(out, "{pad}- RemoteSource[fragment {fragment}]");
            }
        }
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::PlanNodeId;
    use presto_expr::{AggregateKind, CmpOp};

    fn scan() -> PlanNode {
        PlanNode::TableScan {
            id: PlanNodeId(0),
            catalog: "memory".into(),
            table: "t".into(),
            layout: "default".into(),
            table_schema: Schema::of(&[
                ("a", DataType::Bigint),
                ("b", DataType::Double),
                ("c", DataType::Varchar),
            ]),
            columns: vec![2, 0],
            predicate: TupleDomain::all(),
        }
    }

    #[test]
    fn scan_schema_respects_projection() {
        let s = scan().output_schema();
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).name, "a");
    }

    #[test]
    fn aggregate_schema_by_step() {
        let agg = AggregateSpec {
            function: AggregateFunction::new(AggregateKind::Avg, Some(DataType::Bigint)).unwrap(),
            input: Some(1),
            name: "avg_a".into(),
        };
        let single = PlanNode::Aggregate {
            id: PlanNodeId(1),
            input: Box::new(scan()),
            group_by: vec![0],
            aggregates: vec![agg.clone()],
            step: AggregateStep::Single,
        };
        let s = single.output_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(1).data_type, DataType::Double);
        let partial = PlanNode::Aggregate {
            id: PlanNodeId(2),
            input: Box::new(scan()),
            group_by: vec![0],
            aggregates: vec![agg],
            step: AggregateStep::Partial,
        };
        // avg partial state = (sum double, count bigint)
        let s = partial.output_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(1).data_type, DataType::Double);
        assert_eq!(s.field(2).data_type, DataType::Bigint);
    }

    #[test]
    fn join_schema_concatenates() {
        let j = PlanNode::Join {
            id: PlanNodeId(3),
            left: Box::new(scan()),
            right: Box::new(scan()),
            join_type: JoinType::Inner,
            left_keys: vec![1],
            right_keys: vec![1],
            filter: None,
            distribution: None,
        };
        assert_eq!(j.output_schema().len(), 4);
    }

    #[test]
    fn explain_renders_tree() {
        let f = PlanNode::Filter {
            id: PlanNodeId(4),
            input: Box::new(scan()),
            predicate: Expr::cmp(
                CmpOp::Gt,
                Expr::column(1, DataType::Bigint),
                Expr::literal(0i64),
            ),
        };
        let text = f.explain();
        assert!(text.contains("Filter"));
        assert!(text.contains("TableScan"));
        assert!(text.find("Filter").unwrap() < text.find("TableScan").unwrap());
    }
}
