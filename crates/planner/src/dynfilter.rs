//! Dynamic-filter annotation (runtime predicate pushdown).
//!
//! Static predicate pushdown (§IV-B3-2) only exploits constants known at
//! plan time. For selective hash joins most probe-side bytes are read only
//! to be discarded at the join; the build side's observed key domain is a
//! predicate the planner cannot know but the runtime can. This pass runs
//! *after fragmentation* (broadcast-vs-partitioned is only final then) and
//! records, for every inner hash join whose probe side reaches a table
//! scan, how each equi-join key maps onto a scan column. At runtime the
//! join build publishes its key domain through the coordinator's
//! `DynamicFilterRegistry` and the annotated scans consume it.

use presto_common::{DataType, PlanNodeId};
use presto_expr::Expr;
use std::fmt::Write as _;

use crate::fragment::PhysicalPlan;
use crate::plan::{JoinDistribution, JoinType, PlanNode};

/// How one equi-join key lands on the probe-side scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicFilterKey {
    /// Index into the join's equi-key lists.
    pub key_index: usize,
    /// Channel of the scan's projected output carrying the key.
    pub scan_channel: usize,
    /// Column index in the scan's table schema (the split/stripe
    /// statistics are keyed by table columns).
    pub table_column: usize,
    /// SQL type of the column, so the runtime can extract typed values.
    pub data_type: DataType,
}

/// One (join, probe-side scan) dynamic-filter channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicFilterSpec {
    /// The hash join whose build side produces the filter.
    pub join: PlanNodeId,
    /// Fragment containing the join.
    pub join_fragment: u32,
    /// The probe-side scan that consumes the filter.
    pub scan: PlanNodeId,
    /// Fragment containing the scan.
    pub scan_fragment: u32,
    /// Build side replicated: every join task observes the complete build
    /// domain, so the first published filter is final (no cross-task merge).
    pub broadcast: bool,
    /// Per equi-key mapping; `None` for keys that do not trace to a column
    /// of this scan.
    pub keys: Vec<Option<DynamicFilterKey>>,
}

impl DynamicFilterSpec {
    /// Key mappings that resolved, in key order.
    pub fn mapped_keys(&self) -> impl Iterator<Item = &DynamicFilterKey> {
        self.keys.iter().flatten()
    }
}

/// Where one join-key channel of the probe subtree bottoms out.
struct Traced {
    fragment: u32,
    scan: PlanNodeId,
    scan_channel: usize,
    table_column: usize,
    data_type: DataType,
}

/// Annotate every eligible join of a fragmented plan. Only `Inner` joins
/// with equi-keys are eligible: outer and cross joins keep probe rows that
/// match no build row, so pruning by the build domain would be unsound.
pub fn collect_dynamic_filters(plan: &PhysicalPlan) -> Vec<DynamicFilterSpec> {
    let mut specs = Vec::new();
    for fragment in &plan.fragments {
        walk(plan, fragment.id, &fragment.root, &mut specs);
    }
    // Deterministic order for plan digests and tests.
    specs.sort_by_key(|s| (s.join.0, s.scan.0));
    specs
}

fn walk(plan: &PhysicalPlan, fragment: u32, node: &PlanNode, specs: &mut Vec<DynamicFilterSpec>) {
    if let PlanNode::Join {
        id,
        left,
        join_type: JoinType::Inner,
        left_keys,
        distribution,
        ..
    } = node
    {
        if !left_keys.is_empty() {
            let broadcast = *distribution == Some(JoinDistribution::Replicated);
            // Trace each probe key independently; group hits by scan so a
            // probe side that is itself a join can feed several scans.
            let mut traced: Vec<(usize, Traced)> = Vec::new();
            for (key_index, &channel) in left_keys.iter().enumerate() {
                if let Some(t) = trace(plan, fragment, left, channel) {
                    traced.push((key_index, t));
                }
            }
            let mut scans: Vec<PlanNodeId> = traced.iter().map(|(_, t)| t.scan).collect();
            scans.sort();
            scans.dedup();
            for scan in scans {
                let mut keys: Vec<Option<DynamicFilterKey>> = vec![None; left_keys.len()];
                let mut scan_fragment = fragment;
                for (key_index, t) in traced.iter().filter(|(_, t)| t.scan == scan) {
                    scan_fragment = t.fragment;
                    keys[*key_index] = Some(DynamicFilterKey {
                        key_index: *key_index,
                        scan_channel: t.scan_channel,
                        table_column: t.table_column,
                        data_type: t.data_type,
                    });
                }
                specs.push(DynamicFilterSpec {
                    join: *id,
                    join_fragment: fragment,
                    scan,
                    scan_fragment,
                    broadcast,
                    keys,
                });
            }
        }
    }
    for child in node.children() {
        walk(plan, fragment, child, specs);
    }
}

/// Follow one output channel of `node` down to a table-scan column, through
/// the shapes that preserve row values one-to-one: filters, column-identity
/// projections, exchanges, and the value-preserving sides of nested joins.
/// Stops (returns `None`) at anything that synthesizes or reorders values
/// (aggregates, limits, sorts, unions, expressions).
fn trace(plan: &PhysicalPlan, fragment: u32, node: &PlanNode, channel: usize) -> Option<Traced> {
    match node {
        PlanNode::TableScan {
            id,
            columns,
            table_schema,
            ..
        } => {
            let table_column = *columns.get(channel)?;
            Some(Traced {
                fragment,
                scan: *id,
                scan_channel: channel,
                table_column,
                data_type: table_schema.field(table_column).data_type,
            })
        }
        PlanNode::Filter { input, .. } => trace(plan, fragment, input, channel),
        PlanNode::Project {
            input, expressions, ..
        } => match expressions.get(channel)? {
            Expr::Column { index, .. } => trace(plan, fragment, input, *index),
            _ => None,
        },
        PlanNode::RemoteSource {
            fragment: source, ..
        } => {
            // Exchanges route pages but never reorder columns.
            trace(plan, *source, &plan.fragment(*source).root, channel)
        }
        PlanNode::Join {
            left,
            right,
            join_type,
            ..
        } => {
            let left_width = left.output_schema().len();
            if channel < left_width {
                // Left-side values survive every join type verbatim; rows
                // the nested join drops could not have matched upstream
                // either, so pruning below is sound.
                trace(plan, fragment, left, channel)
            } else if matches!(join_type, JoinType::Inner | JoinType::Cross) {
                // Right-side values survive verbatim unless null-padded
                // (outer joins), which would make pruning unsound.
                trace(plan, fragment, right, channel - left_width)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Plan-digest rendering, appended to `EXPLAIN` output.
pub fn explain_dynamic_filters(specs: &[DynamicFilterSpec]) -> String {
    let mut out = String::new();
    if specs.is_empty() {
        return out;
    }
    out.push_str("Dynamic filters:\n");
    for s in specs {
        let keys: Vec<String> = s
            .keys
            .iter()
            .enumerate()
            .map(|(i, k)| match k {
                Some(k) => format!("key{}→col{}@ch{}", i, k.table_column, k.scan_channel),
                None => format!("key{i}→∅"),
            })
            .collect();
        let _ = writeln!(
            out,
            "  join {} (fragment {}) → scan {} (fragment {}){} [{}]",
            s.join,
            s.join_fragment,
            s.scan,
            s.scan_fragment,
            if s.broadcast { " broadcast" } else { "" },
            keys.join(", ")
        );
    }
    out
}
