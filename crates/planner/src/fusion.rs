//! Pipeline-fusion annotation (whole-pipeline compiled execution).
//!
//! The compiled expression engine (§V-B) fuses one expression tree; this
//! pass goes further and marks maximal `TableScan → Filter → Project
//! [→ partial Aggregate]` chains that the fused executor can run as one
//! type-specialized loop: selection vectors flow between stages instead of
//! materialized pages, projections evaluate only surviving rows, and the
//! partial group-by is fed pre-computed hashes. Like dynamic filtering,
//! fusion is never correctness-bearing: a chain whose expressions the
//! fused loop does not specialize (generic scalar calls, lossy casts,
//! non-splittable aggregates) falls back to the discrete operators, and
//! the reason is recorded here so EXPLAIN can show it.
//!
//! The eligibility rules live in this module — [`chain_fallback`] — and are
//! shared with the exec-side compiler, so the plan annotation and the
//! runtime lowering can never disagree about what fuses.

use presto_common::{DataType, PlanNodeId};
use presto_expr::Expr;
use std::fmt::Write as _;

use crate::fragment::PhysicalPlan;
use crate::plan::{AggregateSpec, AggregateStep, PlanNode};

/// One stage of a fused chain, scan first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedStage {
    Scan,
    Filter,
    Project,
    PartialAggregate,
}

impl FusedStage {
    pub fn name(&self) -> &'static str {
        match self {
            FusedStage::Scan => "Scan",
            FusedStage::Filter => "Filter",
            FusedStage::Project => "Project",
            FusedStage::PartialAggregate => "AggregatePartial",
        }
    }
}

/// A maximal fusable (or fallback-annotated) chain found in one fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedChainSpec {
    /// Fragment containing the chain.
    pub fragment: u32,
    /// Topmost node of the chain.
    pub top: PlanNodeId,
    /// The leaf table scan.
    pub scan: PlanNodeId,
    /// Stages in execution (scan-first) order; always starts with `Scan`.
    pub stages: Vec<FusedStage>,
    /// `None` when every stage expression is supported by the fused loop;
    /// otherwise the reason the chain stays on the discrete operators.
    pub fallback: Option<String>,
}

impl FusedChainSpec {
    pub fn fused(&self) -> bool {
        self.fallback.is_none()
    }
}

/// Annotate every `TableScan → Filter → Project [→ partial Aggregate]`
/// chain of a fragmented plan. Chains of a bare scan (nothing to fuse) are
/// not recorded. Run after fragmentation, like dynamic-filter collection:
/// only then is the partial/final aggregation split final.
pub fn collect_fused_chains(plan: &PhysicalPlan) -> Vec<FusedChainSpec> {
    let mut specs = Vec::new();
    for fragment in &plan.fragments {
        walk(fragment.id, &fragment.root, &mut specs);
    }
    // Deterministic order for plan digests and tests.
    specs.sort_by_key(|s| (s.fragment, s.top.0));
    specs
}

fn walk(fragment: u32, node: &PlanNode, specs: &mut Vec<FusedChainSpec>) {
    if let Some(spec) = match_chain(fragment, node) {
        // The chain is a straight line down to its scan leaf; nothing
        // below it needs visiting.
        specs.push(spec);
        return;
    }
    for child in node.children() {
        walk(fragment, child, specs);
    }
}

/// Match the maximal chain rooted at `node`, if any.
fn match_chain(fragment: u32, node: &PlanNode) -> Option<FusedChainSpec> {
    // Peel an optional partial aggregate…
    let (agg, below_agg) = match node {
        PlanNode::Aggregate {
            input,
            group_by,
            aggregates,
            step: AggregateStep::Partial,
            ..
        } => (
            Some((group_by.as_slice(), aggregates.as_slice())),
            input.as_ref(),
        ),
        other => (None, other),
    };
    // …then an optional projection…
    let (projections, below_project) = match below_agg {
        PlanNode::Project {
            input, expressions, ..
        } => (Some(expressions.as_slice()), input.as_ref()),
        other => (None, other),
    };
    // …then an optional filter…
    let (filter, below_filter) = match below_project {
        PlanNode::Filter {
            input, predicate, ..
        } => (Some(predicate), input.as_ref()),
        other => (None, other),
    };
    // …which must bottom out at a table scan, with at least one stage
    // above it (a bare scan has nothing to fuse).
    let scan_id = match below_filter {
        PlanNode::TableScan { id, .. } => *id,
        _ => return None,
    };
    if agg.is_none() && projections.is_none() && filter.is_none() {
        return None;
    }
    let mut stages = vec![FusedStage::Scan];
    if filter.is_some() {
        stages.push(FusedStage::Filter);
    }
    if projections.is_some() {
        stages.push(FusedStage::Project);
    }
    if agg.is_some() {
        stages.push(FusedStage::PartialAggregate);
    }
    Some(FusedChainSpec {
        fragment,
        top: node.id(),
        scan: scan_id,
        stages,
        fallback: chain_fallback(filter, projections, agg),
    })
}

/// Why a chain cannot run on the fused loop, or `None` if it can. Shared
/// between this planning pass and the exec compiler so both agree exactly.
///
/// The fused loop handles the expressions the compiled engine specializes
/// into typed kernels: column references, literals, arithmetic,
/// comparisons, boolean logic, IS NULL, CASE, typed IN lists, lossless
/// numeric widening, and the specialized math functions. Anything that
/// would drop the compiled engine onto its generic row-at-a-time kernels
/// (string functions, lossy casts, generic IN lists) falls back — the
/// discrete operators run those just as well, and the fused loop stays
/// all-monomorphized.
pub fn chain_fallback(
    filter: Option<&Expr>,
    projections: Option<&[Expr]>,
    aggregates: Option<(&[usize], &[AggregateSpec])>,
) -> Option<String> {
    if let Some(f) = filter {
        if let Some(why) = expr_fallback(f) {
            return Some(format!("filter: {why}"));
        }
    }
    for e in projections.unwrap_or(&[]) {
        if let Some(why) = expr_fallback(e) {
            return Some(format!("projection: {why}"));
        }
    }
    if let Some((_, aggs)) = aggregates {
        for a in aggs {
            if !a.function.kind.supports_partial() {
                return Some(format!("aggregate {} has no partial form", a.name));
            }
            if a.input.is_none() && a.function.input_type.is_some() {
                return Some(format!("aggregate {} is missing its input channel", a.name));
            }
        }
    }
    None
}

/// Why one expression is unsupported, or `None` when the compiled engine
/// lowers it entirely to specialized kernels.
fn expr_fallback(e: &Expr) -> Option<String> {
    match e {
        Expr::Column { .. } | Expr::Literal { .. } => None,
        Expr::Arith { left, right, .. } => {
            expr_fallback(left).or_else(|| expr_fallback(right))
        }
        Expr::Cmp { left, right, .. } => expr_fallback(left).or_else(|| expr_fallback(right)),
        Expr::And(es) | Expr::Or(es) => es.iter().find_map(expr_fallback),
        Expr::Not(c) | Expr::IsNull(c) => expr_fallback(c),
        Expr::Case {
            branches,
            otherwise,
            ..
        } => branches
            .iter()
            .find_map(|(c, v)| expr_fallback(c).or_else(|| expr_fallback(v)))
            .or_else(|| otherwise.as_deref().and_then(expr_fallback)),
        Expr::Cast { expr, data_type } => {
            let from = expr.data_type();
            if from == *data_type || (from.is_integer_backed() && *data_type == DataType::Double)
            {
                expr_fallback(expr)
            } else {
                Some(format!("cast {} to {}", from.name(), data_type.name()))
            }
        }
        Expr::InList { expr, .. } => {
            match presto_page::PhysicalType::of(expr.data_type()) {
                presto_page::PhysicalType::Long | presto_page::PhysicalType::Varchar => {
                    expr_fallback(expr)
                }
                _ => Some(format!("IN list over {}", expr.data_type().name())),
            }
        }
        Expr::Call {
            function,
            args,
            data_type,
        } => {
            use presto_expr::ScalarFn;
            let specialized = match (function, args.len()) {
                (ScalarFn::Abs, 1) => *data_type == DataType::Bigint || *data_type == DataType::Double,
                (
                    ScalarFn::Sqrt
                    | ScalarFn::Ln
                    | ScalarFn::Exp
                    | ScalarFn::Floor
                    | ScalarFn::Ceil
                    | ScalarFn::Round,
                    1,
                ) => *data_type == DataType::Double,
                (ScalarFn::Power, 2) => true,
                _ => false,
            };
            if !specialized {
                return Some(format!("call to {}", function.name()));
            }
            args.iter().find_map(expr_fallback)
        }
    }
}

/// Plan-digest rendering, appended to `EXPLAIN` output.
pub fn explain_fused_chains(specs: &[FusedChainSpec]) -> String {
    let mut out = String::new();
    if specs.is_empty() {
        return out;
    }
    out.push_str("Fused pipelines:\n");
    for s in specs {
        let stages: Vec<&str> = s.stages.iter().map(FusedStage::name).collect();
        let _ = writeln!(
            out,
            "  fragment {}: {} (scan {}){}",
            s.fragment,
            stages.join(" → "),
            s.scan,
            match &s.fallback {
                None => " [fused]".to_string(),
                Some(why) => format!(" [fallback: {why}]"),
            }
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_expr::CmpOp;

    #[test]
    fn supported_expressions_fuse() {
        let pred = Expr::cmp(
            CmpOp::Lt,
            Expr::column(0, DataType::Double),
            Expr::literal(3.5f64),
        );
        let projs = [Expr::column(1, DataType::Bigint)];
        assert_eq!(chain_fallback(Some(&pred), Some(&projs), None), None);
    }

    #[test]
    fn generic_calls_fall_back_with_reason() {
        let (f, t) = presto_expr::ScalarFn::resolve("upper", &[DataType::Varchar]).unwrap();
        let call = Expr::Call {
            function: f,
            args: vec![Expr::column(0, DataType::Varchar)],
            data_type: t,
        };
        let why = chain_fallback(None, Some(std::slice::from_ref(&call)), None).unwrap();
        assert!(why.contains("upper"), "{why}");
    }

    #[test]
    fn lossy_casts_fall_back() {
        let cast = Expr::Cast {
            expr: Box::new(Expr::column(0, DataType::Double)),
            data_type: DataType::Varchar,
        };
        assert!(chain_fallback(Some(&cast), None, None).is_some());
        // Lossless widening is fine.
        let widen = Expr::Cast {
            expr: Box::new(Expr::column(0, DataType::Bigint)),
            data_type: DataType::Double,
        };
        assert_eq!(chain_fallback(None, Some(std::slice::from_ref(&widen)), None), None);
    }
}
