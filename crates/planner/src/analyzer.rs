//! The analyzer: resolves names, checks types, and lowers the untyped AST
//! into a logical [`PlanNode`] tree (§IV-B2: "The analyzer uses this tree
//! to determine types and coercions, resolve functions and scopes, and
//! extracts logical components, such as subqueries, aggregations, and
//! window functions").

use presto_common::id::PlanNodeIdAllocator;
use presto_common::{DataType, PrestoError, Result, Schema, Session, Value};
use presto_connector::{CatalogManager, TupleDomain};
use presto_expr::{
    AggregateFunction, AggregateKind, ArithOp, CmpOp, Expr, ScalarFn, WindowFunction,
};
use presto_sql::ast::{
    AstExpr, BinaryOp, JoinKind, OrderItem, QualifiedName, Query, Select, SelectItem, Statement,
    TableRef, WindowSpec,
};

use crate::plan::{AggregateSpec, AggregateStep, JoinType, PlanNode, SortKey, WindowFnSpec};

/// One visible column during analysis.
#[derive(Debug, Clone)]
struct ScopeColumn {
    /// Relation alias the column is reachable through (`t` in `t.x`).
    relation: Option<String>,
    name: String,
    data_type: DataType,
}

/// A name-resolution scope: the columns produced by a FROM clause (or by a
/// node mid-pipeline).
#[derive(Debug, Clone, Default)]
struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    fn from_schema(schema: &Schema, relation: Option<&str>) -> Scope {
        Scope {
            columns: schema
                .fields()
                .iter()
                .map(|f| ScopeColumn {
                    relation: relation.map(str::to_string),
                    name: f.name.clone(),
                    data_type: f.data_type,
                })
                .collect(),
        }
    }

    fn join(&self, other: &Scope) -> Scope {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Scope { columns }
    }

    /// Resolve a possibly-qualified identifier to (channel, type).
    fn resolve(&self, name: &QualifiedName) -> Result<(usize, DataType)> {
        let (relation, column) = match name.parts.as_slice() {
            [c] => (None, c.as_str()),
            [r, c] => (Some(r.as_str()), c.as_str()),
            _ => {
                return Err(PrestoError::user(format!(
                    "unsupported qualified name '{name}'"
                )))
            }
        };
        let mut matches = self.columns.iter().enumerate().filter(|(_, col)| {
            col.name.eq_ignore_ascii_case(column)
                && relation.is_none_or(|r| {
                    col.relation
                        .as_deref()
                        .is_some_and(|cr| cr.eq_ignore_ascii_case(r))
                })
        });
        match (matches.next(), matches.next()) {
            (Some((i, col)), None) => Ok((i, col.data_type)),
            (Some(_), Some(_)) => Err(PrestoError::user(format!("column '{name}' is ambiguous"))),
            (None, _) => Err(PrestoError::user(format!(
                "column '{name}' cannot be resolved"
            ))),
        }
    }
}

/// Analyzer entry point.
pub struct Analyzer<'a> {
    catalogs: &'a CatalogManager,
    session: &'a Session,
    ids: PlanNodeIdAllocator,
}

impl<'a> Analyzer<'a> {
    pub fn new(catalogs: &'a CatalogManager, session: &'a Session) -> Analyzer<'a> {
        Analyzer {
            catalogs,
            session,
            ids: PlanNodeIdAllocator::new(),
        }
    }

    /// Analyze a statement into a plan rooted at Output (queries) or
    /// TableWrite→Output (INSERT).
    pub fn analyze(&mut self, statement: &Statement) -> Result<PlanNode> {
        match statement {
            Statement::Query(q) => {
                let (node, scope) = self.analyze_query(q)?;
                let names = scope.columns.iter().map(|c| c.name.clone()).collect();
                Ok(PlanNode::Output {
                    id: self.ids.next_id(),
                    input: Box::new(node),
                    names,
                })
            }
            Statement::Insert { table, query } => {
                let (catalog, table_name) = self.resolve_table_name(table)?;
                let connector = self.catalogs.catalog(&catalog)?;
                let target_schema = connector.metadata().table_schema(&table_name)?;
                let (node, scope) = self.analyze_query(query)?;
                if scope.columns.len() != target_schema.len() {
                    return Err(PrestoError::user(format!(
                        "INSERT has {} columns but '{table_name}' has {}",
                        scope.columns.len(),
                        target_schema.len()
                    )));
                }
                // Coerce the query output to the target schema.
                let mut exprs = Vec::new();
                let mut names = Vec::new();
                for (i, field) in target_schema.fields().iter().enumerate() {
                    let have = scope.columns[i].data_type;
                    let want = field.data_type;
                    let col = Expr::column(i, have);
                    let expr = if have == want {
                        col
                    } else if have.coerces_to(want) {
                        Expr::Cast {
                            expr: Box::new(col),
                            data_type: want,
                        }
                    } else {
                        return Err(PrestoError::user(format!(
                            "INSERT column {} has type {have}, expected {want}",
                            field.name
                        )));
                    };
                    exprs.push(expr);
                    names.push(field.name.clone());
                }
                let projected = PlanNode::Project {
                    id: self.ids.next_id(),
                    input: Box::new(node),
                    expressions: exprs,
                    names,
                };
                let write = PlanNode::TableWrite {
                    id: self.ids.next_id(),
                    input: Box::new(projected),
                    catalog,
                    table: table_name,
                };
                Ok(PlanNode::Output {
                    id: self.ids.next_id(),
                    input: Box::new(write),
                    names: vec!["rows".to_string()],
                })
            }
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => self.analyze(inner),
        }
    }

    fn resolve_table_name(&self, name: &QualifiedName) -> Result<(String, String)> {
        match name.parts.as_slice() {
            [t] => Ok((self.session.catalog.clone(), t.clone())),
            [c, t] => Ok((c.clone(), t.clone())),
            // catalog.schema.table: connectors that expose schemas (the
            // system catalog's "runtime" schema) receive "schema.table" as
            // their table name.
            [c, s, t] => Ok((c.clone(), format!("{s}.{t}"))),
            _ => Err(PrestoError::user(format!("invalid table name '{name}'"))),
        }
    }

    fn analyze_query(&mut self, query: &Query) -> Result<(PlanNode, Scope)> {
        let mut terms = Vec::new();
        for term in &query.terms {
            terms.push(self.analyze_select(term)?);
        }
        let (mut node, mut scope) = {
            let mut it = terms.into_iter();
            let (first_node, first_scope) = it.next().expect("parser guarantees ≥1 term");
            let mut acc_inputs = vec![first_node];
            let scope = first_scope;
            for (n, s) in it {
                if s.columns.len() != scope.columns.len() {
                    return Err(PrestoError::user(
                        "UNION ALL inputs have different column counts",
                    ));
                }
                // Coerce mismatched columns to the first term's types.
                let mut exprs = Vec::new();
                let mut needs_cast = false;
                for (i, (a, b)) in scope.columns.iter().zip(&s.columns).enumerate() {
                    let col = Expr::column(i, b.data_type);
                    if a.data_type == b.data_type {
                        exprs.push(col);
                    } else if b.data_type.coerces_to(a.data_type) {
                        needs_cast = true;
                        exprs.push(Expr::Cast {
                            expr: Box::new(col),
                            data_type: a.data_type,
                        });
                    } else {
                        return Err(PrestoError::user(format!(
                            "UNION ALL column {i} types {} and {} are incompatible",
                            a.data_type, b.data_type
                        )));
                    }
                }
                if needs_cast {
                    let names = scope.columns.iter().map(|c| c.name.clone()).collect();
                    acc_inputs.push(PlanNode::Project {
                        id: self.ids.next_id(),
                        input: Box::new(n),
                        expressions: exprs,
                        names,
                    });
                } else {
                    acc_inputs.push(n);
                }
            }
            if acc_inputs.len() == 1 {
                let only = acc_inputs.pop().expect("len checked above");
                (only, scope)
            } else {
                (
                    PlanNode::Union {
                        id: self.ids.next_id(),
                        inputs: acc_inputs,
                    },
                    scope,
                )
            }
        };

        // ORDER BY over the query output.
        if !query.order_by.is_empty() {
            let keys = self.resolve_order_keys(&query.order_by, &scope)?;
            node = match query.limit {
                Some(n) => PlanNode::TopN {
                    id: self.ids.next_id(),
                    input: Box::new(node),
                    keys,
                    count: n,
                },
                None => PlanNode::Sort {
                    id: self.ids.next_id(),
                    input: Box::new(node),
                    keys,
                },
            };
            if query.limit.is_some() {
                return Ok((node, scope));
            }
        } else if let Some(n) = query.limit {
            node = PlanNode::Limit {
                id: self.ids.next_id(),
                input: Box::new(node),
                count: n,
            };
        }
        let _ = &mut scope;
        Ok((node, scope))
    }

    /// ORDER BY keys: ordinals, output names, or (for simple cases) any
    /// expression over output columns that reduces to a column.
    fn resolve_order_keys(&mut self, items: &[OrderItem], scope: &Scope) -> Result<Vec<SortKey>> {
        let mut keys = Vec::new();
        for item in items {
            let channel = match &item.expr {
                AstExpr::Literal(Value::Bigint(n)) => {
                    let i = *n as usize;
                    if i == 0 || i > scope.columns.len() {
                        return Err(PrestoError::user(format!(
                            "ORDER BY position {n} is out of range"
                        )));
                    }
                    i - 1
                }
                AstExpr::Identifier(name) => match scope.resolve(name) {
                    Ok((c, _)) => c,
                    // Qualified names (`o.col`) resolve by bare column name
                    // against the query output, which drops qualifiers.
                    Err(e) => {
                        let bare = QualifiedName::single(
                            name.parts.last().expect("nonempty name").clone(),
                        );
                        scope.resolve(&bare).map_err(|_| e)?.0
                    }
                },
                other => {
                    // Allow arbitrary expressions only when they reduce to a
                    // column reference after rewriting.
                    let e = self.rewrite_expr(other, scope)?;
                    match e {
                        Expr::Column { index, .. } => index,
                        _ => {
                            return Err(PrestoError::user(
                                "ORDER BY expressions must reference output columns",
                            ))
                        }
                    }
                }
            };
            keys.push(SortKey {
                channel,
                ascending: item.ascending,
                nulls_first: item.nulls_first,
            });
        }
        Ok(keys)
    }

    fn analyze_select(&mut self, select: &Select) -> Result<(PlanNode, Scope)> {
        // FROM
        let (mut node, scope) = match &select.from {
            Some(t) => self.analyze_table_ref(t)?,
            None => (
                // SELECT without FROM: one empty row.
                PlanNode::Values {
                    id: self.ids.next_id(),
                    schema: Schema::default(),
                    rows: vec![vec![]],
                },
                Scope::default(),
            ),
        };
        // WHERE
        if let Some(w) = &select.where_ {
            if contains_aggregate(w) {
                return Err(PrestoError::user("WHERE clause cannot contain aggregates"));
            }
            let predicate = self.rewrite_boolean(w, &scope, "WHERE")?;
            node = PlanNode::Filter {
                id: self.ids.next_id(),
                input: Box::new(node),
                predicate,
            };
        }

        // Expand wildcards into explicit items.
        let items = expand_items(&select.items, &scope)?;

        let has_aggregates = !select.group_by.is_empty()
            || items.iter().any(|(e, _)| contains_aggregate(e))
            || select.having.is_some();
        let has_windows = items.iter().any(|(e, _)| contains_window(e));
        if has_aggregates && has_windows {
            return Err(PrestoError::user(
                "mixing window functions and aggregates in one SELECT is not supported",
            ));
        }

        let (node, scope) = if has_aggregates {
            self.plan_aggregation(node, scope, &items, select)?
        } else if has_windows {
            self.plan_window(node, scope, &items)?
        } else {
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for (ast, name) in &items {
                exprs.push(self.rewrite_expr(ast, &scope)?);
                names.push(name.clone());
            }
            let schema: Schema = names
                .iter()
                .zip(&exprs)
                .map(|(n, e)| presto_common::Field::new(n.clone(), e.data_type()))
                .collect();
            let project = PlanNode::Project {
                id: self.ids.next_id(),
                input: Box::new(node),
                expressions: exprs,
                names,
            };
            (project, Scope::from_schema(&schema, None))
        };

        // DISTINCT = group by every output column.
        if select.distinct {
            let n = scope.columns.len();
            let agg = PlanNode::Aggregate {
                id: self.ids.next_id(),
                input: Box::new(node),
                group_by: (0..n).collect(),
                aggregates: vec![],
                step: AggregateStep::Single,
            };
            return Ok((agg, scope));
        }
        Ok((node, scope))
    }

    fn analyze_table_ref(&mut self, table: &TableRef) -> Result<(PlanNode, Scope)> {
        match table {
            TableRef::Table { name, alias } => {
                let (catalog, table_name) = self.resolve_table_name(name)?;
                let connector = self.catalogs.catalog(&catalog)?;
                let schema = connector.metadata().table_schema(&table_name)?;
                let relation = alias.clone().unwrap_or_else(|| table_name.clone());
                let scan = PlanNode::TableScan {
                    id: self.ids.next_id(),
                    catalog,
                    table: table_name,
                    layout: "default".to_string(),
                    columns: (0..schema.len()).collect(),
                    table_schema: schema.clone(),
                    predicate: TupleDomain::all(),
                };
                Ok((scan, Scope::from_schema(&schema, Some(&relation))))
            }
            TableRef::Derived { query, alias } => {
                let (node, scope) = self.analyze_query(query)?;
                let columns = scope
                    .columns
                    .into_iter()
                    .map(|c| ScopeColumn {
                        relation: Some(alias.clone()),
                        ..c
                    })
                    .collect();
                Ok((node, Scope { columns }))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lnode, lscope) = self.analyze_table_ref(left)?;
                let (rnode, rscope) = self.analyze_table_ref(right)?;
                let joined_scope = lscope.join(&rscope);
                let filter = match on {
                    Some(cond) => Some(self.rewrite_boolean(cond, &joined_scope, "JOIN ON")?),
                    None => None,
                };
                // RIGHT JOIN → LEFT JOIN with swapped inputs: remap the
                // filter's channels and present the scope in original order
                // via a projection.
                let (node, scope) = match kind {
                    JoinKind::Right => {
                        let lwidth = lscope.columns.len();
                        let rwidth = rscope.columns.len();
                        let remapped = filter.map(|f| {
                            f.remap_columns(&|c| {
                                if c < lwidth {
                                    rwidth + c
                                } else {
                                    c - lwidth
                                }
                            })
                        });
                        let join = PlanNode::Join {
                            id: self.ids.next_id(),
                            left: Box::new(rnode),
                            right: Box::new(lnode),
                            join_type: JoinType::Left,
                            left_keys: vec![],
                            right_keys: vec![],
                            filter: remapped,
                            distribution: None,
                        };
                        // Restore column order (left columns first).
                        let swapped_scope = rscope.join(&lscope);
                        let exprs: Vec<Expr> = (0..lwidth + rwidth)
                            .map(|i| {
                                let src = if i < lwidth { rwidth + i } else { i - lwidth };
                                Expr::column(src, swapped_scope.columns[src].data_type)
                            })
                            .collect();
                        let names = joined_scope
                            .columns
                            .iter()
                            .map(|c| c.name.clone())
                            .collect();
                        let project = PlanNode::Project {
                            id: self.ids.next_id(),
                            input: Box::new(join),
                            expressions: exprs,
                            names,
                        };
                        (project, joined_scope)
                    }
                    _ => {
                        let join_type = match kind {
                            JoinKind::Inner => JoinType::Inner,
                            JoinKind::Left => JoinType::Left,
                            JoinKind::Cross => JoinType::Cross,
                            JoinKind::Right => unreachable!(),
                        };
                        let join = PlanNode::Join {
                            id: self.ids.next_id(),
                            left: Box::new(lnode),
                            right: Box::new(rnode),
                            join_type,
                            left_keys: vec![],
                            right_keys: vec![],
                            filter,
                            distribution: None,
                        };
                        (join, joined_scope)
                    }
                };
                Ok((node, scope))
            }
        }
    }

    /// Plan GROUP BY / aggregate selects.
    fn plan_aggregation(
        &mut self,
        input: PlanNode,
        scope: Scope,
        items: &[(AstExpr, String)],
        select: &Select,
    ) -> Result<(PlanNode, Scope)> {
        // Resolve GROUP BY expressions (ordinals allowed).
        let mut group_asts: Vec<AstExpr> = Vec::new();
        for g in &select.group_by {
            let ast = match g {
                AstExpr::Literal(Value::Bigint(n)) => {
                    let i = *n as usize;
                    if i == 0 || i > items.len() {
                        return Err(PrestoError::user(format!(
                            "GROUP BY position {n} is out of range"
                        )));
                    }
                    items[i - 1].0.clone()
                }
                other => other.clone(),
            };
            group_asts.push(ast);
        }
        // Collect aggregate calls from SELECT and HAVING.
        let mut agg_calls: Vec<AstExpr> = Vec::new();
        for (e, _) in items {
            collect_aggregates(e, &mut agg_calls);
        }
        if let Some(h) = &select.having {
            collect_aggregates(h, &mut agg_calls);
        }
        dedup_asts(&mut agg_calls);

        // Pre-projection: group expressions then aggregate arguments.
        let mut pre_exprs: Vec<Expr> = Vec::new();
        let mut pre_names: Vec<String> = Vec::new();
        for (i, g) in group_asts.iter().enumerate() {
            let e = self.rewrite_expr(g, &scope)?;
            pre_names.push(match g {
                AstExpr::Identifier(q) => match q.parts.last() {
                    Some(part) => part.clone(),
                    None => format!("_group{i}"),
                },
                _ => format!("_group{i}"),
            });
            pre_exprs.push(e);
        }
        let mut agg_specs: Vec<AggregateSpec> = Vec::new();
        for (i, call) in agg_calls.iter().enumerate() {
            let AstExpr::Call {
                name,
                args,
                distinct,
                wildcard,
                ..
            } = call
            else {
                unreachable!()
            };
            let (input_channel, input_type) = if *wildcard || args.is_empty() {
                (None, None)
            } else {
                if args.len() != 1 {
                    return Err(PrestoError::user(format!(
                        "aggregate {name} expects one argument"
                    )));
                }
                let e = self.rewrite_expr(&args[0], &scope)?;
                let t = e.data_type();
                pre_exprs.push(e);
                pre_names.push(format!("_aggarg{i}"));
                (Some(pre_exprs.len() - 1), Some(t))
            };
            let kind = AggregateKind::resolve(name, input_channel.is_some(), *distinct)?;
            let function = AggregateFunction::new(kind, input_type)?;
            agg_specs.push(AggregateSpec {
                function,
                input: input_channel,
                name: format!("_agg{i}"),
            });
        }
        // COUNT(*) with no grouping would otherwise project zero columns;
        // keep a constant so page cardinality flows.
        if pre_exprs.is_empty() {
            pre_exprs.push(Expr::literal(1i64));
            pre_names.push("_one".to_string());
        }
        let pre_project = PlanNode::Project {
            id: self.ids.next_id(),
            input: Box::new(input),
            expressions: pre_exprs,
            names: pre_names,
        };
        let group_count = group_asts.len();
        let agg_node = PlanNode::Aggregate {
            id: self.ids.next_id(),
            input: Box::new(pre_project),
            group_by: (0..group_count).collect(),
            aggregates: agg_specs,
            step: AggregateStep::Single,
        };
        let agg_schema = agg_node.output_schema();

        // Rewriter mapping group expressions / aggregate calls to agg
        // output channels.
        let rewrite = |this: &mut Self, ast: &AstExpr| -> Result<Expr> {
            this.rewrite_over_aggregate(ast, &scope, &group_asts, &agg_calls, &agg_schema)
        };

        // HAVING
        let mut node = agg_node;
        if let Some(h) = &select.having {
            let predicate = rewrite(self, h)?;
            if predicate.data_type() != DataType::Boolean {
                return Err(PrestoError::user("HAVING clause must be boolean"));
            }
            node = PlanNode::Filter {
                id: self.ids.next_id(),
                input: Box::new(node),
                predicate,
            };
        }
        // Final projection.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (ast, name) in items {
            exprs.push(rewrite(self, ast)?);
            names.push(name.clone());
        }
        let schema: Schema = names
            .iter()
            .zip(&exprs)
            .map(|(n, e)| presto_common::Field::new(n.clone(), e.data_type()))
            .collect();
        let project = PlanNode::Project {
            id: self.ids.next_id(),
            input: Box::new(node),
            expressions: exprs,
            names,
        };
        Ok((project, Scope::from_schema(&schema, None)))
    }

    /// Rewrite a post-aggregation expression: group expressions and
    /// aggregate calls become channel references into the Aggregate output.
    fn rewrite_over_aggregate(
        &mut self,
        ast: &AstExpr,
        input_scope: &Scope,
        group_asts: &[AstExpr],
        agg_calls: &[AstExpr],
        agg_schema: &Schema,
    ) -> Result<Expr> {
        if let Some(i) = group_asts.iter().position(|g| g == ast) {
            return Ok(Expr::column(i, agg_schema.data_type(i)));
        }
        if let Some(i) = agg_calls.iter().position(|c| c == ast) {
            let channel = group_asts.len() + i;
            return Ok(Expr::column(channel, agg_schema.data_type(channel)));
        }
        match ast {
            AstExpr::Identifier(name) => Err(PrestoError::user(format!(
                "column '{name}' must appear in GROUP BY or inside an aggregate"
            ))),
            AstExpr::Literal(v) => Ok(literal_expr(v)),
            AstExpr::Binary { op, left, right } => {
                let l = self.rewrite_over_aggregate(
                    left,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                let r = self.rewrite_over_aggregate(
                    right,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                binary_expr(*op, l, r)
            }
            AstExpr::Unary { minus, expr } => {
                let e = self.rewrite_over_aggregate(
                    expr,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                if *minus {
                    negate(e)
                } else {
                    Ok(e)
                }
            }
            AstExpr::Not(e) => {
                let e =
                    self.rewrite_over_aggregate(e, input_scope, group_asts, agg_calls, agg_schema)?;
                Ok(Expr::Not(Box::new(e)))
            }
            AstExpr::IsNull { expr, negated } => {
                let e = self.rewrite_over_aggregate(
                    expr,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                let is_null = Expr::IsNull(Box::new(e));
                Ok(if *negated {
                    Expr::Not(Box::new(is_null))
                } else {
                    is_null
                })
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.rewrite_over_aggregate(
                    expr,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                let lo = self.rewrite_over_aggregate(
                    low,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                let hi = self.rewrite_over_aggregate(
                    high,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                between(e, lo, hi, *negated)
            }
            AstExpr::Case {
                operand,
                branches,
                otherwise,
            } => self.rewrite_case(
                operand,
                branches,
                otherwise,
                &mut |this: &mut Self, e: &AstExpr| {
                    this.rewrite_over_aggregate(e, input_scope, group_asts, agg_calls, agg_schema)
                },
            ),
            AstExpr::Cast { expr, type_name } => {
                let e = self.rewrite_over_aggregate(
                    expr,
                    input_scope,
                    group_asts,
                    agg_calls,
                    agg_schema,
                )?;
                cast_expr(e, type_name)
            }
            AstExpr::Call {
                name,
                args,
                over: None,
                ..
            } => {
                let mut rewritten = Vec::new();
                for a in args {
                    rewritten.push(self.rewrite_over_aggregate(
                        a,
                        input_scope,
                        group_asts,
                        agg_calls,
                        agg_schema,
                    )?);
                }
                scalar_call(name, rewritten)
            }
            other => Err(PrestoError::user(format!(
                "unsupported expression in aggregation context: {other:?}"
            ))),
        }
    }

    /// Plan window-function selects.
    fn plan_window(
        &mut self,
        input: PlanNode,
        scope: Scope,
        items: &[(AstExpr, String)],
    ) -> Result<(PlanNode, Scope)> {
        // Collect window calls; require a single window specification.
        let mut calls: Vec<AstExpr> = Vec::new();
        for (e, _) in items {
            collect_windows(e, &mut calls);
        }
        dedup_asts(&mut calls);
        let spec: &WindowSpec = match &calls[0] {
            AstExpr::Call { over: Some(s), .. } => s,
            _ => unreachable!(),
        };
        for c in &calls {
            let AstExpr::Call { over: Some(s), .. } = c else {
                unreachable!()
            };
            if s != spec {
                return Err(PrestoError::user(
                    "multiple distinct window specifications are not supported",
                ));
            }
        }
        // Pre-project: all input columns + partition keys + order keys +
        // window args (appended so originals stay addressable).
        let width = scope.columns.len();
        let mut pre_exprs: Vec<Expr> = (0..width)
            .map(|i| Expr::column(i, scope.columns[i].data_type))
            .collect();
        let mut pre_names: Vec<String> = scope.columns.iter().map(|c| c.name.clone()).collect();
        let mut partition_by = Vec::new();
        for (i, p) in spec.partition_by.iter().enumerate() {
            let e = self.rewrite_expr(p, &scope)?;
            match e {
                Expr::Column { index, .. } => partition_by.push(index),
                other => {
                    pre_exprs.push(other);
                    pre_names.push(format!("_part{i}"));
                    partition_by.push(pre_exprs.len() - 1);
                }
            }
        }
        let mut order_by = Vec::new();
        for (i, o) in spec.order_by.iter().enumerate() {
            let e = self.rewrite_expr(&o.expr, &scope)?;
            let channel = match e {
                Expr::Column { index, .. } => index,
                other => {
                    pre_exprs.push(other);
                    pre_names.push(format!("_ord{i}"));
                    pre_exprs.len() - 1
                }
            };
            order_by.push(SortKey {
                channel,
                ascending: o.ascending,
                nulls_first: o.nulls_first,
            });
        }
        let mut functions = Vec::new();
        for (i, call) in calls.iter().enumerate() {
            let AstExpr::Call {
                name,
                args,
                wildcard,
                ..
            } = call
            else {
                unreachable!()
            };
            let input_channel = if *wildcard || args.is_empty() {
                None
            } else {
                let e = self.rewrite_expr(&args[0], &scope)?;
                match e {
                    Expr::Column { index, .. } => Some(index),
                    other => {
                        pre_exprs.push(other);
                        pre_names.push(format!("_warg{i}"));
                        Some(pre_exprs.len() - 1)
                    }
                }
            };
            let arg_type = input_channel.map(|c| pre_exprs[c].data_type());
            let function = WindowFunction::resolve(name, arg_type)?;
            if function.requires_order() && order_by.is_empty() {
                return Err(PrestoError::user(format!("{name}() requires ORDER BY")));
            }
            functions.push(WindowFnSpec {
                function,
                input: input_channel,
                name: format!("_win{i}"),
            });
        }
        let pre_project = PlanNode::Project {
            id: self.ids.next_id(),
            input: Box::new(input),
            expressions: pre_exprs,
            names: pre_names,
        };
        let window = PlanNode::Window {
            id: self.ids.next_id(),
            input: Box::new(pre_project),
            partition_by,
            order_by,
            functions: functions.clone(),
        };
        let window_schema = window.output_schema();
        let fn_base = window_schema.len() - functions.len();

        // Final projection: window calls → appended channels; everything
        // else resolves against the original scope.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (ast, name) in items {
            exprs.push(self.rewrite_with_windows(ast, &scope, &calls, fn_base, &window_schema)?);
            names.push(name.clone());
        }
        let schema: Schema = names
            .iter()
            .zip(&exprs)
            .map(|(n, e)| presto_common::Field::new(n.clone(), e.data_type()))
            .collect();
        let project = PlanNode::Project {
            id: self.ids.next_id(),
            input: Box::new(window),
            expressions: exprs,
            names,
        };
        Ok((project, Scope::from_schema(&schema, None)))
    }

    fn rewrite_with_windows(
        &mut self,
        ast: &AstExpr,
        scope: &Scope,
        calls: &[AstExpr],
        fn_base: usize,
        window_schema: &Schema,
    ) -> Result<Expr> {
        if let Some(i) = calls.iter().position(|c| c == ast) {
            let channel = fn_base + i;
            return Ok(Expr::column(channel, window_schema.data_type(channel)));
        }
        match ast {
            AstExpr::Binary { op, left, right } => {
                let l = self.rewrite_with_windows(left, scope, calls, fn_base, window_schema)?;
                let r = self.rewrite_with_windows(right, scope, calls, fn_base, window_schema)?;
                binary_expr(*op, l, r)
            }
            // Non-window expressions resolve against the pass-through
            // prefix of the window output (same channels as input scope).
            other => self.rewrite_expr(other, scope),
        }
    }

    /// Rewrite a boolean-typed expression, with a clause name for errors.
    fn rewrite_boolean(&mut self, ast: &AstExpr, scope: &Scope, clause: &str) -> Result<Expr> {
        let e = self.rewrite_expr(ast, scope)?;
        if e.data_type() != DataType::Boolean {
            return Err(PrestoError::user(format!(
                "{clause} expression must be boolean, got {}",
                e.data_type()
            )));
        }
        Ok(e)
    }

    /// Rewrite an AST expression against a scope (no aggregates/windows).
    fn rewrite_expr(&mut self, ast: &AstExpr, scope: &Scope) -> Result<Expr> {
        match ast {
            AstExpr::Identifier(name) => {
                let (channel, dt) = scope.resolve(name)?;
                Ok(Expr::column(channel, dt))
            }
            AstExpr::Literal(v) => Ok(literal_expr(v)),
            AstExpr::Binary { op, left, right } => {
                let l = self.rewrite_expr(left, scope)?;
                let r = self.rewrite_expr(right, scope)?;
                binary_expr(*op, l, r)
            }
            AstExpr::Unary { minus, expr } => {
                let e = self.rewrite_expr(expr, scope)?;
                if *minus {
                    negate(e)
                } else {
                    Ok(e)
                }
            }
            AstExpr::Not(e) => {
                let e = self.rewrite_expr(e, scope)?;
                if e.data_type() != DataType::Boolean {
                    return Err(PrestoError::user("NOT operand must be boolean"));
                }
                Ok(Expr::Not(Box::new(e)))
            }
            AstExpr::IsNull { expr, negated } => {
                let e = self.rewrite_expr(expr, scope)?;
                let is_null = Expr::IsNull(Box::new(e));
                Ok(if *negated {
                    Expr::Not(Box::new(is_null))
                } else {
                    is_null
                })
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.rewrite_expr(expr, scope)?;
                let lo = self.rewrite_expr(low, scope)?;
                let hi = self.rewrite_expr(high, scope)?;
                between(e, lo, hi, *negated)
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.rewrite_expr(expr, scope)?;
                let mut values = Vec::new();
                for item in list {
                    let item_expr = self.rewrite_expr(item, scope)?;
                    match item_expr {
                        Expr::Literal { value, data_type } => {
                            // Coerce list literals to the tested type.
                            let target = e.data_type();
                            if data_type == target {
                                values.push(value);
                            } else if let Some(v) = value.coerce_to(target) {
                                values.push(v);
                            } else {
                                return Err(PrestoError::user(format!(
                                    "IN list item type {data_type} does not match {target}"
                                )));
                            }
                        }
                        _ => return Err(PrestoError::user("IN lists must contain literals")),
                    }
                }
                let in_list = Expr::InList {
                    expr: Box::new(e),
                    list: values,
                };
                Ok(if *negated {
                    Expr::Not(Box::new(in_list))
                } else {
                    in_list
                })
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let e = self.rewrite_expr(expr, scope)?;
                let p = self.rewrite_expr(pattern, scope)?;
                if e.data_type() != DataType::Varchar || p.data_type() != DataType::Varchar {
                    return Err(PrestoError::user("LIKE requires varchar operands"));
                }
                let call = Expr::Call {
                    function: ScalarFn::Like,
                    args: vec![e, p],
                    data_type: DataType::Boolean,
                };
                Ok(if *negated {
                    Expr::Not(Box::new(call))
                } else {
                    call
                })
            }
            AstExpr::Case {
                operand,
                branches,
                otherwise,
            } => self.rewrite_case(operand, branches, otherwise, &mut |this: &mut Self, e| {
                this.rewrite_expr(e, scope)
            }),
            AstExpr::Cast { expr, type_name } => {
                let e = self.rewrite_expr(expr, scope)?;
                cast_expr(e, type_name)
            }
            AstExpr::Call {
                name,
                args,
                over: Some(_),
                ..
            } => {
                let _ = (name, args);
                Err(PrestoError::user("window functions are not allowed here"))
            }
            AstExpr::Call {
                name,
                args,
                distinct,
                wildcard,
                over: None,
            } => {
                if *distinct || *wildcard {
                    return Err(PrestoError::user(format!(
                        "aggregate '{name}' is not allowed in this context"
                    )));
                }
                // Aggregate names that are not scalar functions fail in
                // ScalarFn::resolve below with a clear message.
                let mut rewritten = Vec::new();
                for a in args {
                    rewritten.push(self.rewrite_expr(a, scope)?);
                }
                scalar_call(name, rewritten)
            }
        }
    }

    /// Shared CASE lowering: operand form desugars to searched form; branch
    /// results coerce to a common type.
    fn rewrite_case(
        &mut self,
        operand: &Option<Box<AstExpr>>,
        branches: &[(AstExpr, AstExpr)],
        otherwise: &Option<Box<AstExpr>>,
        rewrite: &mut dyn FnMut(&mut Self, &AstExpr) -> Result<Expr>,
    ) -> Result<Expr> {
        let operand_expr = match operand {
            Some(op) => Some(rewrite(self, op)?),
            None => None,
        };
        let mut conds = Vec::new();
        let mut results = Vec::new();
        for (when, then) in branches {
            let cond = match &operand_expr {
                Some(op) => {
                    let when_e = rewrite(self, when)?;
                    comparison(CmpOp::Eq, op.clone(), when_e)?
                }
                None => {
                    let c = rewrite(self, when)?;
                    if c.data_type() != DataType::Boolean {
                        return Err(PrestoError::user("CASE condition must be boolean"));
                    }
                    c
                }
            };
            conds.push(cond);
            results.push(rewrite(self, then)?);
        }
        let otherwise_expr = match otherwise {
            Some(e) => Some(rewrite(self, e)?),
            None => None,
        };
        // Common result type.
        let mut result_type: Option<DataType> = None;
        for r in results.iter().chain(otherwise_expr.iter()) {
            result_type = Some(match result_type {
                None => r.data_type(),
                Some(t) => DataType::common_super_type(t, r.data_type())
                    .ok_or_else(|| PrestoError::user("CASE branches have incompatible types"))?,
            });
        }
        let result_type = result_type.unwrap_or(DataType::Boolean);
        let coerce = |e: Expr| -> Expr {
            if e.data_type() == result_type {
                e
            } else {
                Expr::Cast {
                    expr: Box::new(e),
                    data_type: result_type,
                }
            }
        };
        Ok(Expr::Case {
            branches: conds
                .into_iter()
                .zip(results.into_iter().map(coerce))
                .collect(),
            otherwise: otherwise_expr.map(|e| Box::new(coerce(e))),
            data_type: result_type,
        })
    }
}

// ---- free helpers ----

fn literal_expr(v: &Value) -> Expr {
    let data_type = v.data_type().unwrap_or(DataType::Boolean);
    Expr::typed_literal(v.clone(), data_type)
}

fn negate(e: Expr) -> Result<Expr> {
    match e {
        Expr::Literal {
            value: Value::Bigint(v),
            ..
        } => Ok(Expr::literal(-v)),
        Expr::Literal {
            value: Value::Double(v),
            ..
        } => Ok(Expr::literal(-v)),
        other if other.data_type().is_numeric() => {
            Ok(Expr::arith(ArithOp::Sub, Expr::literal(0i64), other))
        }
        _ => Err(PrestoError::user("unary minus requires a numeric operand")),
    }
}

fn binary_expr(op: BinaryOp, l: Expr, r: Expr) -> Result<Expr> {
    match op {
        BinaryOp::And | BinaryOp::Or => {
            if l.data_type() != DataType::Boolean || r.data_type() != DataType::Boolean {
                return Err(PrestoError::user(format!(
                    "logical operator requires boolean operands, got {} and {}",
                    l.data_type(),
                    r.data_type()
                )));
            }
            Ok(if op == BinaryOp::And {
                Expr::and(vec![l, r])
            } else {
                Expr::or(vec![l, r])
            })
        }
        BinaryOp::Eq => comparison(CmpOp::Eq, l, r),
        BinaryOp::Ne => comparison(CmpOp::Ne, l, r),
        BinaryOp::Lt => comparison(CmpOp::Lt, l, r),
        BinaryOp::Le => comparison(CmpOp::Le, l, r),
        BinaryOp::Gt => comparison(CmpOp::Gt, l, r),
        BinaryOp::Ge => comparison(CmpOp::Ge, l, r),
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if !l.data_type().is_numeric() || !r.data_type().is_numeric() {
                return Err(PrestoError::user(format!(
                    "arithmetic requires numeric operands, got {} and {}",
                    l.data_type(),
                    r.data_type()
                )));
            }
            let aop = match op {
                BinaryOp::Add => ArithOp::Add,
                BinaryOp::Sub => ArithOp::Sub,
                BinaryOp::Mul => ArithOp::Mul,
                BinaryOp::Div => ArithOp::Div,
                _ => ArithOp::Mod,
            };
            Ok(Expr::arith(aop, l, r))
        }
    }
}

fn comparison(op: CmpOp, l: Expr, r: Expr) -> Result<Expr> {
    let (lt, rt) = (l.data_type(), r.data_type());
    if DataType::common_super_type(lt, rt).is_none() {
        return Err(PrestoError::user(format!("cannot compare {lt} with {rt}")));
    }
    Ok(Expr::cmp(op, l, r))
}

fn between(e: Expr, lo: Expr, hi: Expr, negated: bool) -> Result<Expr> {
    let range = Expr::and(vec![
        comparison(CmpOp::Ge, e.clone(), lo)?,
        comparison(CmpOp::Le, e, hi)?,
    ]);
    Ok(if negated {
        Expr::Not(Box::new(range))
    } else {
        range
    })
}

fn cast_expr(e: Expr, type_name: &str) -> Result<Expr> {
    let target = DataType::parse(type_name)
        .ok_or_else(|| PrestoError::user(format!("unknown type '{type_name}'")))?;
    Ok(Expr::Cast {
        expr: Box::new(e),
        data_type: target,
    })
}

fn scalar_call(name: &str, args: Vec<Expr>) -> Result<Expr> {
    // Untyped NULL literals adopt the common type of the other arguments
    // (`coalesce(NULL, 7)` is bigint), matching ANSI coercion.
    let mut args = args;
    let common = args
        .iter()
        .filter(|a| {
            !matches!(
                a,
                Expr::Literal {
                    value: Value::Null,
                    ..
                }
            )
        })
        .map(Expr::data_type)
        .try_fold(None, |acc: Option<DataType>, t| match acc {
            None => Some(Some(t)),
            Some(prev) => DataType::common_super_type(prev, t).map(Some),
        })
        .flatten();
    if let Some(t) = common {
        for a in args.iter_mut() {
            if let Expr::Literal {
                value: Value::Null,
                data_type,
            } = a
            {
                *data_type = t;
            }
        }
    }
    let types: Vec<DataType> = args.iter().map(Expr::data_type).collect();
    let (function, data_type) = ScalarFn::resolve(name, &types)?;
    Ok(Expr::Call {
        function,
        args,
        data_type,
    })
}

/// Expand `*` and `alias.*` into explicit (expression, name) items.
fn expand_items(items: &[SelectItem], scope: &Scope) -> Result<Vec<(AstExpr, String)>> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                if scope.columns.is_empty() {
                    return Err(PrestoError::user("SELECT * requires a FROM clause"));
                }
                for c in &scope.columns {
                    let ast = match &c.relation {
                        Some(r) => AstExpr::qualified(r.clone(), c.name.clone()),
                        None => AstExpr::ident(c.name.clone()),
                    };
                    out.push((ast, c.name.clone()));
                }
            }
            SelectItem::QualifiedWildcard(relation) => {
                let mut any = false;
                for c in &scope.columns {
                    if c.relation
                        .as_deref()
                        .is_some_and(|r| r.eq_ignore_ascii_case(relation))
                    {
                        out.push((
                            AstExpr::qualified(relation.clone(), c.name.clone()),
                            c.name.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(PrestoError::user(format!(
                        "relation '{relation}' not found for wildcard"
                    )));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    AstExpr::Identifier(q) => match q.parts.last() {
                        Some(part) => part.clone(),
                        None => format!("_col{}", out.len()),
                    },
                    _ => format!("_col{}", out.len()),
                });
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn contains_aggregate(ast: &AstExpr) -> bool {
    let mut found = false;
    walk(ast, &mut |e| {
        if let AstExpr::Call {
            name,
            over: None,
            wildcard,
            args,
            distinct,
        } = e
        {
            let has_arg = *wildcard || !args.is_empty();
            if AggregateKind::resolve(name, has_arg, *distinct).is_ok() {
                // min/max are ambiguous with scalar functions only when the
                // name also resolves as scalar; treat call with one arg and
                // aggregate-resolvable name as aggregate.
                found = true;
            }
        }
    });
    found
}

fn collect_aggregates(ast: &AstExpr, out: &mut Vec<AstExpr>) {
    walk(ast, &mut |e| {
        if let AstExpr::Call {
            name,
            over: None,
            wildcard,
            args,
            distinct,
        } = e
        {
            let has_arg = *wildcard || !args.is_empty();
            if AggregateKind::resolve(name, has_arg, *distinct).is_ok() {
                out.push(e.clone());
            }
        }
    });
}

fn contains_window(ast: &AstExpr) -> bool {
    let mut found = false;
    walk(ast, &mut |e| {
        if matches!(e, AstExpr::Call { over: Some(_), .. }) {
            found = true;
        }
    });
    found
}

fn collect_windows(ast: &AstExpr, out: &mut Vec<AstExpr>) {
    walk(ast, &mut |e| {
        if matches!(e, AstExpr::Call { over: Some(_), .. }) {
            out.push(e.clone());
        }
    });
}

fn dedup_asts(list: &mut Vec<AstExpr>) {
    let mut seen: Vec<AstExpr> = Vec::new();
    list.retain(|e| {
        if seen.contains(e) {
            false
        } else {
            seen.push(e.clone());
            true
        }
    });
}

/// Pre-order AST walk. Does not descend into nested window specs' order
/// keys (they are handled by the window planner).
fn walk(ast: &AstExpr, f: &mut impl FnMut(&AstExpr)) {
    f(ast);
    match ast {
        AstExpr::Identifier(_) | AstExpr::Literal(_) => {}
        AstExpr::Binary { left, right, .. } => {
            walk(left, f);
            walk(right, f);
        }
        AstExpr::Unary { expr, .. } | AstExpr::Not(expr) => walk(expr, f),
        AstExpr::IsNull { expr, .. } => walk(expr, f),
        AstExpr::Between {
            expr, low, high, ..
        } => {
            walk(expr, f);
            walk(low, f);
            walk(high, f);
        }
        AstExpr::InList { expr, list, .. } => {
            walk(expr, f);
            for e in list {
                walk(e, f);
            }
        }
        AstExpr::Like { expr, pattern, .. } => {
            walk(expr, f);
            walk(pattern, f);
        }
        AstExpr::Case {
            operand,
            branches,
            otherwise,
        } => {
            if let Some(op) = operand {
                walk(op, f);
            }
            for (c, r) in branches {
                walk(c, f);
                walk(r, f);
            }
            if let Some(e) = otherwise {
                walk(e, f);
            }
        }
        AstExpr::Cast { expr, .. } => walk(expr, f),
        AstExpr::Call { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
    }
}
