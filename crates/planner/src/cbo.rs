//! Cost-based optimizations (§IV-C): join re-ordering, join distribution
//! selection, and index-join selection.
//!
//! All three degrade gracefully without statistics — re-ordering keeps the
//! syntactic order, distribution defaults to partitioned, and index joins
//! require a known-small probe — which is exactly what separates the
//! "Hive/HDFS (no stats)" and "Hive/HDFS (table/column stats)" lines of
//! Fig. 6.

use presto_common::id::PlanNodeIdAllocator;
use presto_common::{Result, Session};
use presto_connector::CatalogManager;
use presto_expr::{CmpOp, Expr};

use crate::plan::{JoinDistribution, JoinType, PlanNode};
use crate::stats::estimate;

/// Probe-row threshold below which an index join is considered.
const INDEX_JOIN_PROBE_THRESHOLD: f64 = 100_000.0;

// ---- join reordering ----

/// Re-order chains of inner equi-joins using cardinality estimates: flatten
/// the join tree into sources + equality edges, then greedily rebuild
/// left-deep, always joining in the source that minimizes the estimated
/// intermediate size. A final projection restores the original column order
/// so the rest of the plan is unaffected.
pub fn reorder_joins(
    node: PlanNode,
    session: &Session,
    catalogs: &CatalogManager,
    ids: &mut PlanNodeIdAllocator,
) -> Result<PlanNode> {
    // Bottom-up: rewrite children first so nested chains collapse.
    let node = crate::optimizer::map_plan_children(node, &mut |c| {
        reorder_joins(c, session, catalogs, ids)
    })?;
    if !session.join_reordering {
        return Ok(node);
    }
    let PlanNode::Join {
        join_type: JoinType::Inner,
        ..
    } = &node
    else {
        return Ok(node);
    };
    // Flatten the maximal inner-join chain.
    let mut sources: Vec<PlanNode> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new(); // global channel pairs
    let mut residuals: Vec<Expr> = Vec::new();
    flatten(node.clone(), &mut sources, &mut edges, &mut residuals);
    if sources.len() < 3 {
        // A two-way join gains nothing from reordering; build-side choice
        // is handled by distribution selection (which may flip).
        return Ok(flip_small_build(node, catalogs));
    }
    // Need cardinalities for every source; otherwise keep syntactic order.
    let rows: Vec<f64> = match sources
        .iter()
        .map(|s| estimate(s, catalogs).rows.value())
        .collect::<Option<Vec<f64>>>()
    {
        Some(r) => r,
        None => return Ok(node),
    };
    // Source channel offsets in the ORIGINAL order.
    let widths: Vec<usize> = sources.iter().map(|s| s.output_schema().len()).collect();
    let mut original_offset = vec![0usize; sources.len()];
    for i in 1..sources.len() {
        original_offset[i] = original_offset[i - 1] + widths[i - 1];
    }
    let total_width: usize = widths.iter().sum();
    let source_of = |global: usize| -> (usize, usize) {
        for (i, &off) in original_offset.iter().enumerate() {
            if global >= off && global < off + widths[i] {
                return (i, global - off);
            }
        }
        unreachable!("channel {global} out of range")
    };

    // Greedy order: start from the pair with the smallest estimated output.
    let connected = |a: usize, b: usize| -> bool {
        edges.iter().any(|&(x, y)| {
            let (sx, _) = source_of(x);
            let (sy, _) = source_of(y);
            (sx == a && sy == b) || (sx == b && sy == a)
        })
    };
    let mut in_tree = vec![false; sources.len()];
    let mut order: Vec<usize> = Vec::new();
    // Seed: smallest source that has at least one edge.
    let seed = (0..sources.len())
        .filter(|&i| (0..sources.len()).any(|j| j != i && connected(i, j)))
        .min_by(|&a, &b| rows[a].total_cmp(&rows[b]));
    let Some(seed) = seed else { return Ok(node) };
    order.push(seed);
    in_tree[seed] = true;
    while order.len() < sources.len() {
        // Prefer connected sources, smallest first (cheap surrogate for
        // smallest intermediate result under the FK assumption).
        let next = (0..sources.len())
            .filter(|&i| !in_tree[i])
            .min_by(|&a, &b| {
                let ca = order.iter().any(|&t| connected(t, a));
                let cb = order.iter().any(|&t| connected(t, b));
                match (ca, cb) {
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    _ => rows[a].total_cmp(&rows[b]),
                }
            })
            .expect("order.len() < sources.len(), so a source remains");
        order.push(next);
        in_tree[next] = true;
    }
    if order.iter().copied().eq(0..sources.len()) {
        // Already in the best order found; avoid churn.
        return Ok(node);
    }

    // Rebuild in the new order, remapping channels. `layout` tracks which
    // source occupies which output slot of the current tree; each new
    // source joins as the *build* (right) side only when it is the smaller
    // relation, otherwise the tree becomes the build and the new source
    // probes (the classic put-the-big-table-on-the-probe-side rule).
    let mut edge_used = vec![false; edges.len()];
    let mut tree: Option<PlanNode> = None;
    let mut layout: Vec<usize> = Vec::new();
    let offset_in = |layout: &[usize], widths: &[usize], source: usize| -> usize {
        let mut off = 0;
        for &t in layout {
            if t == source {
                break;
            }
            off += widths[t];
        }
        off
    };
    for &s in &order {
        let source = sources[s].clone();
        match tree.take() {
            None => {
                tree = Some(source);
                layout.push(s);
            }
            Some(current) => {
                // Keys: edges between the tree and this source, expressed as
                // (tree channel, source-local channel).
                let mut tree_keys = Vec::new();
                let mut source_keys = Vec::new();
                for (ei, &(a, b)) in edges.iter().enumerate() {
                    if edge_used[ei] {
                        continue;
                    }
                    let (sa, wa) = source_of(a);
                    let (sb, wb) = source_of(b);
                    let (tree_side, new_side) = if layout.contains(&sa) && sb == s {
                        ((sa, wa), wb)
                    } else if layout.contains(&sb) && sa == s {
                        ((sb, wb), wa)
                    } else {
                        continue;
                    };
                    tree_keys.push(offset_in(&layout, &widths, tree_side.0) + tree_side.1);
                    source_keys.push(new_side);
                    edge_used[ei] = true;
                }
                let join_type = if tree_keys.is_empty() {
                    JoinType::Cross
                } else {
                    JoinType::Inner
                };
                let tree_rows = estimate(&current, catalogs).rows.or(f64::MAX);
                let source_rows = rows[s];
                if source_rows <= tree_rows || join_type == JoinType::Cross {
                    // Source is the build side.
                    tree = Some(PlanNode::Join {
                        id: ids.next_id(),
                        left: Box::new(current),
                        right: Box::new(source),
                        join_type,
                        left_keys: tree_keys,
                        right_keys: source_keys,
                        filter: None,
                        distribution: None,
                    });
                    layout.push(s);
                } else {
                    // The accumulated tree is smaller: make it the build and
                    // let the big new source stream as the probe.
                    tree = Some(PlanNode::Join {
                        id: ids.next_id(),
                        left: Box::new(source),
                        right: Box::new(current),
                        join_type,
                        left_keys: source_keys,
                        right_keys: tree_keys,
                        filter: None,
                        distribution: None,
                    });
                    layout.insert(0, s);
                }
            }
        }
    }
    // Final output slots, derived from the layout.
    let mut new_offset_of_source = vec![0usize; sources.len()];
    {
        let mut off = 0usize;
        for &s in &layout {
            new_offset_of_source[s] = off;
            off += widths[s];
        }
    }
    let global_to_new = |global: usize| -> usize {
        let (s, within) = source_of(global);
        new_offset_of_source[s] + within
    };
    let mut result = tree.expect("non-empty join order built a tree");
    // Unused edges (cycles in the join graph) become residual filters.
    let mut residual_conjuncts: Vec<Expr> = residuals
        .into_iter()
        .map(|e| e.remap_columns(&global_to_new))
        .collect();
    let result_schema = result.output_schema();
    for (ei, &(a, b)) in edges.iter().enumerate() {
        if !edge_used[ei] {
            let (na, nb) = (global_to_new(a), global_to_new(b));
            residual_conjuncts.push(Expr::cmp(
                CmpOp::Eq,
                Expr::column(na, result_schema.data_type(na)),
                Expr::column(nb, result_schema.data_type(nb)),
            ));
        }
    }
    if !residual_conjuncts.is_empty() {
        result = PlanNode::Filter {
            id: ids.next_id(),
            input: Box::new(result),
            predicate: Expr::and(residual_conjuncts),
        };
    }
    // Restore the original column order.
    let schema = result.output_schema();
    let exprs: Vec<Expr> = (0..total_width)
        .map(|orig| {
            let new = global_to_new(orig);
            Expr::column(new, schema.data_type(new))
        })
        .collect();
    let names: Vec<String> = {
        // Original names, source by source in original order.
        let mut names = Vec::with_capacity(total_width);
        for s in &sources {
            for f in s.output_schema().fields() {
                names.push(f.name.clone());
            }
        }
        names
    };
    Ok(PlanNode::Project {
        id: ids.next_id(),
        input: Box::new(result),
        expressions: exprs,
        names,
    })
}

/// Flatten a tree of inner equi-joins (no residual filters interleaved
/// except as collected residuals) into sources + global-channel equality
/// edges.
fn flatten(
    node: PlanNode,
    sources: &mut Vec<PlanNode>,
    edges: &mut Vec<(usize, usize)>,
    residuals: &mut Vec<Expr>,
) {
    match node {
        PlanNode::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            filter,
            ..
        } => {
            let base = current_width(sources);
            let lwidth = left.output_schema().len();
            flatten(*left, sources, edges, residuals);
            let right_base = current_width(sources);
            flatten(*right, sources, edges, residuals);
            for (&lk, &rk) in left_keys.iter().zip(&right_keys) {
                edges.push((base + lk, right_base + rk));
            }
            if let Some(f) = filter {
                residuals.push(f.remap_columns(&|c| {
                    if c < lwidth {
                        base + c
                    } else {
                        right_base + (c - lwidth)
                    }
                }));
            }
        }
        other => sources.push(other),
    }
}

fn current_width(sources: &[PlanNode]) -> usize {
    sources.iter().map(|s| s.output_schema().len()).sum()
}

/// For a two-way inner join with known stats, make the smaller side the
/// build (right) side.
fn flip_small_build(node: PlanNode, catalogs: &CatalogManager) -> PlanNode {
    match node {
        PlanNode::Join {
            id,
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            filter,
            distribution,
        } => {
            let lrows = estimate(&left, catalogs).rows.value();
            let rrows = estimate(&right, catalogs).rows.value();
            if let (Some(l), Some(r)) = (lrows, rrows) {
                if l < r {
                    // Swap sides; output order is restored by a projection.
                    let lwidth = left.output_schema().len();
                    let rwidth = right.output_schema().len();
                    let new_filter = filter.map(|f| {
                        f.remap_columns(&|c| if c < lwidth { rwidth + c } else { c - lwidth })
                    });
                    let join = PlanNode::Join {
                        id,
                        left: right,
                        right: left,
                        join_type: JoinType::Inner,
                        left_keys: right_keys,
                        right_keys: left_keys,
                        filter: new_filter,
                        distribution,
                    };
                    let schema = join.output_schema();
                    let exprs: Vec<Expr> = (0..lwidth + rwidth)
                        .map(|i| {
                            let src = if i < lwidth { rwidth + i } else { i - lwidth };
                            Expr::column(src, schema.data_type(src))
                        })
                        .collect();
                    let names: Vec<String> = (0..lwidth + rwidth)
                        .map(|i| {
                            let src = if i < lwidth { rwidth + i } else { i - lwidth };
                            schema.field(src).name.clone()
                        })
                        .collect();
                    return PlanNode::Project {
                        id: presto_common::PlanNodeId(4_000_000 + id.0),
                        input: Box::new(join),
                        expressions: exprs,
                        names,
                    };
                }
            }
            PlanNode::Join {
                id,
                left,
                right,
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                filter,
                distribution,
            }
        }
        other => other,
    }
}

// ---- join distribution ----

/// Choose replicated vs partitioned distribution per join (§IV-C "join
/// strategy selection"). Cross joins always replicate the right side.
pub fn select_join_distribution(
    node: PlanNode,
    session: &Session,
    catalogs: &CatalogManager,
) -> PlanNode {
    let node = crate::optimizer::map_plan_children(node, &mut |c| {
        Ok(select_join_distribution(c, session, catalogs))
    })
    .expect("infallible");
    match node {
        PlanNode::Join {
            id,
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            filter,
            distribution: None,
        } => {
            let distribution = if join_type == JoinType::Cross || left_keys.is_empty() {
                JoinDistribution::Replicated
            } else {
                match session.join_distribution {
                    presto_common::session::JoinDistribution::Broadcast => {
                        JoinDistribution::Replicated
                    }
                    presto_common::session::JoinDistribution::Partitioned => {
                        JoinDistribution::Partitioned
                    }
                    presto_common::session::JoinDistribution::Automatic => {
                        let build_rows = estimate(&right, catalogs).rows;
                        match build_rows.value() {
                            Some(r) if r <= session.broadcast_threshold_rows => {
                                JoinDistribution::Replicated
                            }
                            // Unknown build size: partitioned is the safe
                            // choice (broadcasting an unexpectedly huge
                            // build side runs the cluster out of memory).
                            _ => JoinDistribution::Partitioned,
                        }
                    }
                }
            };
            PlanNode::Join {
                id,
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                filter,
                distribution: Some(distribution),
            }
        }
        other => other,
    }
}

// ---- index join selection ----

/// Replace hash joins with index joins when the inner side is a bare scan
/// of a table whose layout indexes the join keys and the probe side is
/// known-small (§IV-B3-3).
pub fn select_index_joins(
    node: PlanNode,
    session: &Session,
    catalogs: &CatalogManager,
    ids: &mut PlanNodeIdAllocator,
) -> Result<PlanNode> {
    let node = crate::optimizer::map_plan_children(node, &mut |c| {
        select_index_joins(c, session, catalogs, ids)
    })?;
    let _ = session;
    match node {
        PlanNode::Join {
            id,
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            filter: None,
            distribution,
        } if !left_keys.is_empty() => {
            if let PlanNode::TableScan {
                catalog,
                table,
                table_schema,
                columns,
                predicate,
                ..
            } = right.as_ref()
            {
                if predicate.is_all() {
                    // Keys in table-column coordinates.
                    let table_keys: Vec<usize> = right_keys.iter().map(|&k| columns[k]).collect();
                    let indexed = catalogs
                        .catalog(catalog)
                        .map(|c| {
                            c.metadata()
                                .table_layouts(table)
                                .iter()
                                .any(|l| l.has_index_on(&table_keys))
                        })
                        .unwrap_or(false);
                    let probe_small = estimate(&left, catalogs)
                        .rows
                        .value()
                        .is_some_and(|r| r <= INDEX_JOIN_PROBE_THRESHOLD);
                    if indexed && probe_small {
                        return Ok(PlanNode::IndexJoin {
                            id,
                            probe: left,
                            catalog: catalog.clone(),
                            table: table.clone(),
                            table_schema: table_schema.clone(),
                            probe_keys: left_keys,
                            index_keys: table_keys,
                            output_columns: columns.clone(),
                        });
                    }
                }
            }
            Ok(PlanNode::Join {
                id,
                left,
                right,
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                filter: None,
                distribution,
            })
        }
        other => Ok(other),
    }
}
