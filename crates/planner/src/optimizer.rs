//! Rule-based plan optimization (§IV-C).
//!
//! "The process works by evaluating a set of transformation rules greedily
//! until a fixed point is reached … Presto contains several rules,
//! including well-known optimizations such as predicate and limit
//! pushdown, column pruning, and decorrelation." This module implements
//! the syntactic rules (constant folding, predicate pushdown with
//! equi-join-key extraction, pushdown into connectors as
//! [`TupleDomain`]s, limit pushdown, column pruning); the cost-based rules
//! (join reordering, join distribution, index joins) live in [`crate::cbo`].

use presto_common::id::PlanNodeIdAllocator;
use presto_common::{PrestoError, Result, Session, Value};
use presto_connector::{CatalogManager, Domain};
use presto_expr::interpreter::evaluate_row;
use presto_expr::{CmpOp, Expr};
use presto_page::Page;
use std::collections::BTreeSet;

use crate::cbo;
use crate::plan::{JoinType, PlanNode, SortKey};

/// Run all optimization passes over `plan`.
pub fn optimize(
    plan: PlanNode,
    session: &Session,
    catalogs: &CatalogManager,
    ids: &mut PlanNodeIdAllocator,
) -> Result<PlanNode> {
    let plan = fold_constants(plan)?;
    let plan = push_filters(plan, ids)?;
    // A second pass reaches filters uncovered by the first (e.g. conjuncts
    // that crossed a project).
    let plan = push_filters(plan, ids)?;
    let plan = push_limits(plan);
    // Index joins match before reordering can flip the indexed side away.
    let plan = cbo::select_index_joins(plan, session, catalogs, ids)?;
    let plan = cbo::reorder_joins(plan, session, catalogs, ids)?;
    let plan = cbo::select_join_distribution(plan, session, catalogs);
    let plan = extract_scan_domains(plan);
    let required: BTreeSet<usize> = (0..plan.output_schema().len()).collect();
    let (plan, _) = prune_columns(plan, &required, ids)?;
    Ok(plan)
}

// ---- constant folding ----

/// Fold constant sub-expressions throughout the plan.
pub fn fold_constants(node: PlanNode) -> Result<PlanNode> {
    map_expressions(node, &|e| fold_expr(e))
}

/// Evaluate constant subtrees; leave anything that errors (e.g. division
/// by zero) for runtime so error semantics are preserved.
pub fn fold_expr(expr: Expr) -> Expr {
    // Fold children first.
    let expr = match expr {
        Expr::Arith {
            op,
            left,
            right,
            data_type,
        } => Expr::Arith {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
            data_type,
        },
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        Expr::And(es) => {
            let mut folded = Vec::new();
            for e in es {
                let e = fold_expr(e);
                match e {
                    Expr::Literal {
                        value: Value::Boolean(true),
                        ..
                    } => continue,
                    Expr::Literal {
                        value: Value::Boolean(false),
                        ..
                    } => return Expr::literal(false),
                    other => folded.push(other),
                }
            }
            return Expr::and(folded);
        }
        Expr::Or(es) => {
            let mut folded = Vec::new();
            for e in es {
                let e = fold_expr(e);
                match e {
                    Expr::Literal {
                        value: Value::Boolean(false),
                        ..
                    } => continue,
                    Expr::Literal {
                        value: Value::Boolean(true),
                        ..
                    } => return Expr::literal(true),
                    other => folded.push(other),
                }
            }
            return Expr::or(folded);
        }
        Expr::Not(e) => Expr::Not(Box::new(fold_expr(*e))),
        Expr::IsNull(e) => Expr::IsNull(Box::new(fold_expr(*e))),
        Expr::Case {
            branches,
            otherwise,
            data_type,
        } => Expr::Case {
            branches: branches
                .into_iter()
                .map(|(c, v)| (fold_expr(c), fold_expr(v)))
                .collect(),
            otherwise: otherwise.map(|e| Box::new(fold_expr(*e))),
            data_type,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(fold_expr(*expr)),
            data_type,
        },
        Expr::InList { expr, list } => Expr::InList {
            expr: Box::new(fold_expr(*expr)),
            list,
        },
        Expr::Call {
            function,
            args,
            data_type,
        } => Expr::Call {
            function,
            args: args.into_iter().map(fold_expr).collect(),
            data_type,
        },
        leaf => leaf,
    };
    if expr.is_constant() && expr.is_deterministic() && !matches!(expr, Expr::Literal { .. }) {
        let dummy = Page::zero_column(1);
        if let Ok(v) = evaluate_row(&expr, &dummy, 0) {
            return Expr::typed_literal(v, expr.data_type());
        }
    }
    expr
}

/// Apply `f` to every expression in the plan.
fn map_expressions(node: PlanNode, f: &dyn Fn(Expr) -> Expr) -> Result<PlanNode> {
    Ok(match node {
        PlanNode::Filter {
            id,
            input,
            predicate,
        } => PlanNode::Filter {
            id,
            input: Box::new(map_expressions(*input, f)?),
            predicate: f(predicate),
        },
        PlanNode::Project {
            id,
            input,
            expressions,
            names,
        } => PlanNode::Project {
            id,
            input: Box::new(map_expressions(*input, f)?),
            expressions: expressions.into_iter().map(f).collect(),
            names,
        },
        PlanNode::Join {
            id,
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            filter,
            distribution,
        } => PlanNode::Join {
            id,
            left: Box::new(map_expressions(*left, f)?),
            right: Box::new(map_expressions(*right, f)?),
            join_type,
            left_keys,
            right_keys,
            filter: filter.map(f),
            distribution,
        },
        PlanNode::Aggregate {
            id,
            input,
            group_by,
            aggregates,
            step,
        } => PlanNode::Aggregate {
            id,
            input: Box::new(map_expressions(*input, f)?),
            group_by,
            aggregates,
            step,
        },
        PlanNode::Sort { id, input, keys } => PlanNode::Sort {
            id,
            input: Box::new(map_expressions(*input, f)?),
            keys,
        },
        PlanNode::TopN {
            id,
            input,
            keys,
            count,
        } => PlanNode::TopN {
            id,
            input: Box::new(map_expressions(*input, f)?),
            keys,
            count,
        },
        PlanNode::Limit { id, input, count } => PlanNode::Limit {
            id,
            input: Box::new(map_expressions(*input, f)?),
            count,
        },
        PlanNode::Window {
            id,
            input,
            partition_by,
            order_by,
            functions,
        } => PlanNode::Window {
            id,
            input: Box::new(map_expressions(*input, f)?),
            partition_by,
            order_by,
            functions,
        },
        PlanNode::Union { id, inputs } => PlanNode::Union {
            id,
            inputs: inputs
                .into_iter()
                .map(|i| map_expressions(i, f))
                .collect::<Result<Vec<_>>>()?,
        },
        PlanNode::TableWrite {
            id,
            input,
            catalog,
            table,
        } => PlanNode::TableWrite {
            id,
            input: Box::new(map_expressions(*input, f)?),
            catalog,
            table,
        },
        PlanNode::Output { id, input, names } => PlanNode::Output {
            id,
            input: Box::new(map_expressions(*input, f)?),
            names,
        },
        PlanNode::IndexJoin {
            id,
            probe,
            catalog,
            table,
            table_schema,
            probe_keys,
            index_keys,
            output_columns,
        } => PlanNode::IndexJoin {
            id,
            probe: Box::new(map_expressions(*probe, f)?),
            catalog,
            table,
            table_schema,
            probe_keys,
            index_keys,
            output_columns,
        },
        leaf @ (PlanNode::TableScan { .. }
        | PlanNode::Values { .. }
        | PlanNode::RemoteSource { .. }) => leaf,
    })
}

// ---- predicate pushdown ----

/// Substitute column references with the projection expressions they map to.
fn substitute(expr: &Expr, projections: &[Expr]) -> Expr {
    match expr {
        Expr::Column { index, .. } => projections[*index].clone(),
        Expr::Literal { .. } => expr.clone(),
        Expr::Arith {
            op,
            left,
            right,
            data_type,
        } => Expr::Arith {
            op: *op,
            left: Box::new(substitute(left, projections)),
            right: Box::new(substitute(right, projections)),
            data_type: *data_type,
        },
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(substitute(left, projections)),
            right: Box::new(substitute(right, projections)),
        },
        Expr::And(es) => Expr::And(es.iter().map(|e| substitute(e, projections)).collect()),
        Expr::Or(es) => Expr::Or(es.iter().map(|e| substitute(e, projections)).collect()),
        Expr::Not(e) => Expr::Not(Box::new(substitute(e, projections))),
        Expr::IsNull(e) => Expr::IsNull(Box::new(substitute(e, projections))),
        Expr::Case {
            branches,
            otherwise,
            data_type,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (substitute(c, projections), substitute(v, projections)))
                .collect(),
            otherwise: otherwise
                .as_ref()
                .map(|e| Box::new(substitute(e, projections))),
            data_type: *data_type,
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(substitute(expr, projections)),
            data_type: *data_type,
        },
        Expr::InList { expr, list } => Expr::InList {
            expr: Box::new(substitute(expr, projections)),
            list: list.clone(),
        },
        Expr::Call {
            function,
            args,
            data_type,
        } => Expr::Call {
            function: *function,
            args: args.iter().map(|a| substitute(a, projections)).collect(),
            data_type: *data_type,
        },
    }
}

/// Push filters toward the leaves and normalize joins (single-side ON
/// conjuncts into inputs, cross-side equalities into equi-join keys).
pub fn push_filters(node: PlanNode, ids: &mut PlanNodeIdAllocator) -> Result<PlanNode> {
    match node {
        PlanNode::Filter {
            id,
            input,
            predicate,
        } => {
            let input = push_filters(*input, ids)?;
            push_filter_into(input, predicate.conjuncts(), id)
        }
        PlanNode::Join {
            id,
            left,
            right,
            join_type,
            mut left_keys,
            mut right_keys,
            filter,
            distribution,
        } => {
            let lwidth = left.output_schema().len();
            let mut left = push_filters(*left, ids)?;
            let mut right = push_filters(*right, ids)?;
            let mut residual: Vec<Expr> = Vec::new();
            let mut join_type = join_type;
            if let Some(f) = filter {
                for conjunct in f.conjuncts() {
                    match classify(&conjunct, lwidth) {
                        Side::Left if join_type != JoinType::Left => {
                            left = filter_node(left, conjunct, ids);
                        }
                        Side::Right => {
                            let remapped = conjunct.remap_columns(&|c| c - lwidth);
                            right = filter_node(right, remapped, ids);
                        }
                        Side::Both => {
                            if let Some((lk, rk)) = as_equi_key(&conjunct, lwidth) {
                                left_keys.push(lk);
                                right_keys.push(rk - lwidth);
                                if join_type == JoinType::Cross {
                                    join_type = JoinType::Inner;
                                }
                            } else {
                                residual.push(conjunct);
                            }
                        }
                        _ => residual.push(conjunct),
                    }
                }
            }
            Ok(PlanNode::Join {
                id,
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                left_keys,
                right_keys,
                filter: if residual.is_empty() {
                    None
                } else {
                    Some(Expr::and(residual))
                },
                distribution,
            })
        }
        other => {
            // Recurse into children generically.
            map_children(other, &mut |child| push_filters(child, ids))
        }
    }
}

/// Where a conjunct's column references fall relative to a join boundary.
enum Side {
    None,
    Left,
    Right,
    Both,
}

fn classify(expr: &Expr, lwidth: usize) -> Side {
    let cols = expr.referenced_columns();
    if cols.is_empty() {
        return Side::None;
    }
    let any_left = cols.iter().any(|&c| c < lwidth);
    let any_right = cols.iter().any(|&c| c >= lwidth);
    match (any_left, any_right) {
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        (true, true) => Side::Both,
        (false, false) => Side::None,
    }
}

/// `left.col = right.col` conjuncts become hash-join keys.
fn as_equi_key(expr: &Expr, lwidth: usize) -> Option<(usize, usize)> {
    if let Expr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = expr
    {
        if let (Expr::Column { index: a, .. }, Expr::Column { index: b, .. }) =
            (left.as_ref(), right.as_ref())
        {
            if *a < lwidth && *b >= lwidth {
                return Some((*a, *b));
            }
            if *b < lwidth && *a >= lwidth {
                return Some((*b, *a));
            }
        }
    }
    None
}

fn filter_node(input: PlanNode, predicate: Expr, ids: &mut PlanNodeIdAllocator) -> PlanNode {
    PlanNode::Filter {
        id: ids.next_id(),
        input: Box::new(input),
        predicate,
    }
}

/// Push a set of conjuncts into `input`, keeping whatever cannot sink as a
/// Filter at this level.
fn push_filter_into(
    input: PlanNode,
    conjuncts: Vec<Expr>,
    id: presto_common::PlanNodeId,
) -> Result<PlanNode> {
    match input {
        PlanNode::Project {
            id: pid,
            input: pin,
            expressions,
            names,
        } => {
            // Rewrite conjuncts through the projection and sink below.
            let rewritten: Vec<Expr> = conjuncts
                .iter()
                .map(|c| substitute(c, &expressions))
                .collect();
            let filtered = PlanNode::Filter {
                id,
                input: pin,
                predicate: Expr::and(rewritten),
            };
            Ok(PlanNode::Project {
                id: pid,
                input: Box::new(filtered),
                expressions,
                names,
            })
        }
        PlanNode::Filter {
            id: fid,
            input: fin,
            predicate,
        } => {
            let mut all = predicate.conjuncts();
            all.extend(conjuncts);
            Ok(PlanNode::Filter {
                id: fid,
                input: fin,
                predicate: Expr::and(all),
            })
        }
        PlanNode::Join {
            id: jid,
            left,
            right,
            join_type,
            mut left_keys,
            mut right_keys,
            filter,
            distribution,
        } => {
            let lwidth = left.output_schema().len();
            let mut left = *left;
            let mut right = *right;
            let mut keep: Vec<Expr> = Vec::new();
            let mut join_type = join_type;
            let mut residual: Vec<Expr> = filter.map(|f| f.conjuncts()).unwrap_or_default();
            let mut next_filter_id = 1_000_000 + jid.0; // deterministic-ish fresh ids
            let mut fresh = || {
                next_filter_id += 1;
                presto_common::PlanNodeId(next_filter_id)
            };
            for conjunct in conjuncts {
                match classify(&conjunct, lwidth) {
                    Side::Left => {
                        left = PlanNode::Filter {
                            id: fresh(),
                            input: Box::new(left),
                            predicate: conjunct,
                        };
                    }
                    Side::Right if join_type != JoinType::Left => {
                        let remapped = conjunct.remap_columns(&|c| c - lwidth);
                        right = PlanNode::Filter {
                            id: fresh(),
                            input: Box::new(right),
                            predicate: remapped,
                        };
                    }
                    Side::Both if join_type != JoinType::Left => {
                        if let Some((lk, rk)) = as_equi_key(&conjunct, lwidth) {
                            left_keys.push(lk);
                            right_keys.push(rk - lwidth);
                            if join_type == JoinType::Cross {
                                join_type = JoinType::Inner;
                            }
                        } else if join_type == JoinType::Cross {
                            join_type = JoinType::Inner;
                            residual.push(conjunct);
                        } else {
                            residual.push(conjunct);
                        }
                    }
                    _ => keep.push(conjunct),
                }
            }
            let join = PlanNode::Join {
                id: jid,
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                left_keys,
                right_keys,
                filter: if residual.is_empty() {
                    None
                } else {
                    Some(Expr::and(residual))
                },
                distribution,
            };
            if keep.is_empty() {
                Ok(join)
            } else {
                Ok(PlanNode::Filter {
                    id,
                    input: Box::new(join),
                    predicate: Expr::and(keep),
                })
            }
        }
        PlanNode::Union { id: uid, inputs } => {
            let predicate = Expr::and(conjuncts);
            let inputs = inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| PlanNode::Filter {
                    id: presto_common::PlanNodeId(2_000_000 + uid.0 + i as u32),
                    input: Box::new(input),
                    predicate: predicate.clone(),
                })
                .collect();
            Ok(PlanNode::Union { id: uid, inputs })
        }
        PlanNode::Aggregate {
            id: aid,
            input: ain,
            group_by,
            aggregates,
            step,
        } => {
            // Conjuncts over group-key outputs sink below the aggregation.
            let group_output_count = group_by.len();
            let mut below = Vec::new();
            let mut above = Vec::new();
            for c in conjuncts {
                if c.referenced_columns()
                    .iter()
                    .all(|&col| col < group_output_count)
                {
                    below.push(c.remap_columns(&|col| group_by[col]));
                } else {
                    above.push(c);
                }
            }
            let mut input_node = *ain;
            if !below.is_empty() {
                input_node = PlanNode::Filter {
                    id: presto_common::PlanNodeId(3_000_000 + aid.0),
                    input: Box::new(input_node),
                    predicate: Expr::and(below),
                };
            }
            let agg = PlanNode::Aggregate {
                id: aid,
                input: Box::new(input_node),
                group_by,
                aggregates,
                step,
            };
            if above.is_empty() {
                Ok(agg)
            } else {
                Ok(PlanNode::Filter {
                    id,
                    input: Box::new(agg),
                    predicate: Expr::and(above),
                })
            }
        }
        PlanNode::Sort {
            id: sid,
            input: sin,
            keys,
        } => {
            let filtered = PlanNode::Filter {
                id,
                input: sin,
                predicate: Expr::and(conjuncts),
            };
            Ok(PlanNode::Sort {
                id: sid,
                input: Box::new(filtered),
                keys,
            })
        }
        other => Ok(PlanNode::Filter {
            id,
            input: Box::new(other),
            predicate: Expr::and(conjuncts),
        }),
    }
}

/// Generic child-rewriting helper, shared with the CBO rules.
pub fn map_plan_children(
    node: PlanNode,
    f: &mut dyn FnMut(PlanNode) -> Result<PlanNode>,
) -> Result<PlanNode> {
    map_children(node, f)
}

/// Generic child-rewriting helper.
fn map_children(
    node: PlanNode,
    f: &mut dyn FnMut(PlanNode) -> Result<PlanNode>,
) -> Result<PlanNode> {
    Ok(match node {
        PlanNode::Filter {
            id,
            input,
            predicate,
        } => PlanNode::Filter {
            id,
            input: Box::new(f(*input)?),
            predicate,
        },
        PlanNode::Project {
            id,
            input,
            expressions,
            names,
        } => PlanNode::Project {
            id,
            input: Box::new(f(*input)?),
            expressions,
            names,
        },
        PlanNode::Aggregate {
            id,
            input,
            group_by,
            aggregates,
            step,
        } => PlanNode::Aggregate {
            id,
            input: Box::new(f(*input)?),
            group_by,
            aggregates,
            step,
        },
        PlanNode::Join {
            id,
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            filter,
            distribution,
        } => PlanNode::Join {
            id,
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            join_type,
            left_keys,
            right_keys,
            filter,
            distribution,
        },
        PlanNode::IndexJoin {
            id,
            probe,
            catalog,
            table,
            table_schema,
            probe_keys,
            index_keys,
            output_columns,
        } => PlanNode::IndexJoin {
            id,
            probe: Box::new(f(*probe)?),
            catalog,
            table,
            table_schema,
            probe_keys,
            index_keys,
            output_columns,
        },
        PlanNode::Sort { id, input, keys } => PlanNode::Sort {
            id,
            input: Box::new(f(*input)?),
            keys,
        },
        PlanNode::TopN {
            id,
            input,
            keys,
            count,
        } => PlanNode::TopN {
            id,
            input: Box::new(f(*input)?),
            keys,
            count,
        },
        PlanNode::Limit { id, input, count } => PlanNode::Limit {
            id,
            input: Box::new(f(*input)?),
            count,
        },
        PlanNode::Window {
            id,
            input,
            partition_by,
            order_by,
            functions,
        } => PlanNode::Window {
            id,
            input: Box::new(f(*input)?),
            partition_by,
            order_by,
            functions,
        },
        PlanNode::Union { id, inputs } => PlanNode::Union {
            id,
            inputs: inputs.into_iter().map(f).collect::<Result<Vec<_>>>()?,
        },
        PlanNode::TableWrite {
            id,
            input,
            catalog,
            table,
        } => PlanNode::TableWrite {
            id,
            input: Box::new(f(*input)?),
            catalog,
            table,
        },
        PlanNode::Output { id, input, names } => PlanNode::Output {
            id,
            input: Box::new(f(*input)?),
            names,
        },
        leaf => leaf,
    })
}

// ---- limit pushdown ----

/// `Limit(Sort)` → `TopN`; `Limit(Project)` → `Project(Limit)`.
pub fn push_limits(node: PlanNode) -> PlanNode {
    let node = match node {
        PlanNode::Limit { id, input, count } => match *input {
            PlanNode::Sort {
                id: sid,
                input: sin,
                keys,
            } => {
                let _ = sid;
                PlanNode::TopN {
                    id,
                    input: sin,
                    keys,
                    count,
                }
            }
            PlanNode::Project {
                id: pid,
                input: pin,
                expressions,
                names,
            } => PlanNode::Project {
                id: pid,
                input: Box::new(PlanNode::Limit {
                    id,
                    input: pin,
                    count,
                }),
                expressions,
                names,
            },
            other => PlanNode::Limit {
                id,
                input: Box::new(other),
                count,
            },
        },
        other => other,
    };
    map_children(node, &mut |child| Ok(push_limits(child))).expect("limit pushdown is infallible")
}

// ---- scan domain extraction ----

/// For filters directly above scans, extract per-column [`Domain`]s and
/// push them into the connector (§IV-B3-2). The engine keeps the residual
/// filter; connectors apply domains best-effort.
pub fn extract_scan_domains(node: PlanNode) -> PlanNode {
    let node = match node {
        PlanNode::Filter {
            id,
            input,
            predicate,
        } => match *input {
            PlanNode::TableScan {
                id: sid,
                catalog,
                table,
                layout,
                table_schema,
                columns,
                predicate: mut domain,
            } => {
                let mut fully_translated = Vec::new();
                for (ci, conjunct) in predicate.conjuncts().iter().enumerate() {
                    // Conjunct channels index the scan output; map to table
                    // column indices for the connector.
                    if let Some((channel, d)) = conjunct_domain(conjunct) {
                        domain.constrain(columns[channel], d);
                        if conjunct_is_exact(conjunct) {
                            fully_translated.push(ci);
                        }
                    }
                }
                let scan = PlanNode::TableScan {
                    id: sid,
                    catalog,
                    table,
                    layout,
                    table_schema,
                    columns,
                    predicate: domain,
                };
                // The engine re-applies the filter: connector enforcement is
                // best-effort (PORC prunes stripes, not rows).
                PlanNode::Filter {
                    id,
                    input: Box::new(scan),
                    predicate,
                }
            }
            other => PlanNode::Filter {
                id,
                input: Box::new(other),
                predicate,
            },
        },
        other => other,
    };
    map_children(node, &mut |child| Ok(extract_scan_domains(child)))
        .expect("domain extraction is infallible")
}

/// Translate one conjunct into a column domain, when possible.
fn conjunct_domain(expr: &Expr) -> Option<(usize, Domain)> {
    match expr {
        Expr::Cmp { op, left, right } => {
            let (channel, value, op) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column { index, .. }, Expr::Literal { value, .. }) => {
                    (*index, value.clone(), *op)
                }
                (Expr::Literal { value, .. }, Expr::Column { index, .. }) => {
                    (*index, value.clone(), op.flip())
                }
                _ => return None,
            };
            if value.is_null() {
                return None;
            }
            let domain = match op {
                CmpOp::Eq => Domain::point(value),
                CmpOp::Gt | CmpOp::Ge => Domain::at_least(value),
                CmpOp::Lt | CmpOp::Le => Domain::at_most(value),
                CmpOp::Ne => return None,
            };
            Some((channel, domain))
        }
        Expr::InList { expr, list } => match expr.as_ref() {
            Expr::Column { index, .. } if !list.iter().any(Value::is_null) => {
                Some((*index, Domain::Set(list.clone())))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Whether the extracted domain enforces the conjunct exactly (unused for
/// now — the engine always re-filters — but kept for connectors that
/// guarantee exact enforcement).
fn conjunct_is_exact(expr: &Expr) -> bool {
    matches!(expr, Expr::Cmp { op: CmpOp::Eq, .. } | Expr::InList { .. })
}

// ---- column pruning ----

/// Prune unused columns throughout the plan. `required` holds the output
/// channels the parent needs; returns the rewritten node plus the mapping
/// old-channel → new-channel for every retained channel.
pub fn prune_columns(
    node: PlanNode,
    required: &BTreeSet<usize>,
    ids: &mut PlanNodeIdAllocator,
) -> Result<(PlanNode, Vec<(usize, usize)>)> {
    match node {
        PlanNode::TableScan {
            id,
            catalog,
            table,
            layout,
            table_schema,
            columns,
            predicate,
        } => {
            let kept: Vec<usize> = (0..columns.len())
                .filter(|c| required.contains(c))
                .collect();
            // Never prune to zero columns: keep the first so pages carry
            // cardinality cheaply.
            let kept = if kept.is_empty() && !columns.is_empty() {
                vec![0]
            } else {
                kept
            };
            let mapping: Vec<(usize, usize)> = kept
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            let new_columns: Vec<usize> = kept.iter().map(|&c| columns[c]).collect();
            Ok((
                PlanNode::TableScan {
                    id,
                    catalog,
                    table,
                    layout,
                    table_schema,
                    columns: new_columns,
                    predicate,
                },
                mapping,
            ))
        }
        PlanNode::Values { id, schema, rows } => {
            let width = schema.len();
            let mapping: Vec<(usize, usize)> = (0..width).map(|c| (c, c)).collect();
            Ok((PlanNode::Values { id, schema, rows }, mapping))
        }
        PlanNode::Filter {
            id,
            input,
            predicate,
        } => {
            let mut child_required: BTreeSet<usize> = required.clone();
            child_required.extend(predicate.referenced_columns());
            let (new_input, mapping) = prune_columns(*input, &child_required, ids)?;
            let predicate = {
                let lookup = mapping_fn(&mapping);
                predicate.remap_columns(&lookup)
            };
            Ok((
                PlanNode::Filter {
                    id,
                    input: Box::new(new_input),
                    predicate,
                },
                mapping,
            ))
        }
        PlanNode::Project {
            id,
            input,
            expressions,
            names,
        } => {
            let kept: Vec<usize> = (0..expressions.len())
                .filter(|c| required.contains(c))
                .collect();
            let kept = if kept.is_empty() && !expressions.is_empty() {
                vec![0]
            } else {
                kept
            };
            let mut child_required = BTreeSet::new();
            for &k in &kept {
                child_required.extend(expressions[k].referenced_columns());
            }
            if child_required.is_empty() {
                // Keep one channel so row counts flow (e.g. COUNT(*) plans).
                if let Some(first) = input.output_schema().fields().first().map(|_| 0) {
                    child_required.insert(first);
                }
            }
            let (new_input, child_mapping) = prune_columns(*input, &child_required, ids)?;
            let lookup = mapping_fn(&child_mapping);
            let new_exprs: Vec<Expr> = kept
                .iter()
                .map(|&k| expressions[k].remap_columns(&lookup))
                .collect();
            let new_names: Vec<String> = kept.iter().map(|&k| names[k].clone()).collect();
            let mapping: Vec<(usize, usize)> = kept
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                PlanNode::Project {
                    id,
                    input: Box::new(new_input),
                    expressions: new_exprs,
                    names: new_names,
                },
                mapping,
            ))
        }
        PlanNode::Aggregate {
            id,
            input,
            group_by,
            aggregates,
            step,
        } => {
            let group_count = group_by.len();
            // Group keys always survive; aggregates only if required.
            let kept_aggs: Vec<usize> = (0..aggregates.len())
                .filter(|i| required.contains(&(group_count + i)))
                .collect();
            let mut child_required: BTreeSet<usize> = group_by.iter().copied().collect();
            for &a in &kept_aggs {
                if let Some(c) = aggregates[a].input {
                    child_required.insert(c);
                }
            }
            if child_required.is_empty() {
                child_required.insert(0);
            }
            let (new_input, child_mapping) = prune_columns(*input, &child_required, ids)?;
            let lookup = mapping_fn(&child_mapping);
            let new_group_by: Vec<usize> = group_by.iter().map(|&g| lookup(g)).collect();
            let new_aggs: Vec<_> = kept_aggs
                .iter()
                .map(|&a| {
                    let mut spec = aggregates[a].clone();
                    spec.input = spec.input.map(&lookup);
                    spec
                })
                .collect();
            let mut mapping: Vec<(usize, usize)> = (0..group_count).map(|g| (g, g)).collect();
            for (new_i, &old_a) in kept_aggs.iter().enumerate() {
                mapping.push((group_count + old_a, group_count + new_i));
            }
            Ok((
                PlanNode::Aggregate {
                    id,
                    input: Box::new(new_input),
                    group_by: new_group_by,
                    aggregates: new_aggs,
                    step,
                },
                mapping,
            ))
        }
        PlanNode::Join {
            id,
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            filter,
            distribution,
        } => {
            let lwidth = left.output_schema().len();
            let mut left_required: BTreeSet<usize> = left_keys.iter().copied().collect();
            let mut right_required: BTreeSet<usize> = right_keys.iter().copied().collect();
            for &r in required {
                if r < lwidth {
                    left_required.insert(r);
                } else {
                    right_required.insert(r - lwidth);
                }
            }
            if let Some(f) = &filter {
                for c in f.referenced_columns() {
                    if c < lwidth {
                        left_required.insert(c);
                    } else {
                        right_required.insert(c - lwidth);
                    }
                }
            }
            if left_required.is_empty() {
                left_required.insert(0);
            }
            if right_required.is_empty() {
                right_required.insert(0);
            }
            let (new_left, lmap) = prune_columns(*left, &left_required, ids)?;
            let (new_right, rmap) = prune_columns(*right, &right_required, ids)?;
            let new_lwidth = new_left.output_schema().len();
            let llookup = mapping_fn(&lmap);
            let rlookup = mapping_fn(&rmap);
            let new_left_keys: Vec<usize> = left_keys.iter().map(|&k| llookup(k)).collect();
            let new_right_keys: Vec<usize> = right_keys.iter().map(|&k| rlookup(k)).collect();
            let combined = |c: usize| -> usize {
                if c < lwidth {
                    llookup(c)
                } else {
                    new_lwidth + rlookup(c - lwidth)
                }
            };
            let new_filter = filter.map(|f| f.remap_columns(&combined));
            let mut mapping: Vec<(usize, usize)> = Vec::new();
            for &(old, new) in &lmap {
                mapping.push((old, new));
            }
            for &(old, new) in &rmap {
                mapping.push((lwidth + old, new_lwidth + new));
            }
            Ok((
                PlanNode::Join {
                    id,
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    join_type,
                    left_keys: new_left_keys,
                    right_keys: new_right_keys,
                    filter: new_filter,
                    distribution,
                },
                mapping,
            ))
        }
        PlanNode::IndexJoin {
            id,
            probe,
            catalog,
            table,
            table_schema,
            probe_keys,
            index_keys,
            output_columns,
        } => {
            let pwidth = probe.output_schema().len();
            let mut probe_required: BTreeSet<usize> = probe_keys.iter().copied().collect();
            for &r in required {
                if r < pwidth {
                    probe_required.insert(r);
                }
            }
            if probe_required.is_empty() {
                probe_required.insert(0);
            }
            let (new_probe, pmap) = prune_columns(*probe, &probe_required, ids)?;
            let plookup = mapping_fn(&pmap);
            let new_probe_keys: Vec<usize> = probe_keys.iter().map(|&k| plookup(k)).collect();
            let new_pwidth = new_probe.output_schema().len();
            let mut mapping: Vec<(usize, usize)> = pmap.clone();
            for i in 0..output_columns.len() {
                mapping.push((pwidth + i, new_pwidth + i));
            }
            Ok((
                PlanNode::IndexJoin {
                    id,
                    probe: Box::new(new_probe),
                    catalog,
                    table,
                    table_schema,
                    probe_keys: new_probe_keys,
                    index_keys,
                    output_columns,
                },
                mapping,
            ))
        }
        PlanNode::Sort { id, input, keys } => {
            let mut child_required = required.clone();
            child_required.extend(keys.iter().map(|k| k.channel));
            let (new_input, mapping) = prune_columns(*input, &child_required, ids)?;
            let keys = {
                let lookup = mapping_fn(&mapping);
                remap_keys(&keys, &lookup)
            };
            Ok((
                PlanNode::Sort {
                    id,
                    input: Box::new(new_input),
                    keys,
                },
                mapping,
            ))
        }
        PlanNode::TopN {
            id,
            input,
            keys,
            count,
        } => {
            let mut child_required = required.clone();
            child_required.extend(keys.iter().map(|k| k.channel));
            let (new_input, mapping) = prune_columns(*input, &child_required, ids)?;
            let keys = {
                let lookup = mapping_fn(&mapping);
                remap_keys(&keys, &lookup)
            };
            Ok((
                PlanNode::TopN {
                    id,
                    input: Box::new(new_input),
                    keys,
                    count,
                },
                mapping,
            ))
        }
        PlanNode::Limit { id, input, count } => {
            let (new_input, mapping) = prune_columns(*input, required, ids)?;
            Ok((
                PlanNode::Limit {
                    id,
                    input: Box::new(new_input),
                    count,
                },
                mapping,
            ))
        }
        PlanNode::Window {
            id,
            input,
            partition_by,
            order_by,
            functions,
        } => {
            // Keep all pass-through channels + everything the window needs;
            // prune only unused window outputs.
            let input_width = input.output_schema().len();
            let mut child_required: BTreeSet<usize> = (0..input_width).collect();
            child_required.extend(partition_by.iter().copied());
            let kept_fns: Vec<usize> = (0..functions.len())
                .filter(|i| required.contains(&(input_width + i)))
                .collect();
            let (new_input, child_mapping) = prune_columns(*input, &child_required, ids)?;
            let lookup = mapping_fn(&child_mapping);
            let new_partition: Vec<usize> = partition_by.iter().map(|&c| lookup(c)).collect();
            let new_order = remap_keys(&order_by, &lookup);
            let new_fns: Vec<_> = kept_fns
                .iter()
                .map(|&i| {
                    let mut f = functions[i].clone();
                    f.input = f.input.map(&lookup);
                    f
                })
                .collect();
            let new_width = new_input.output_schema().len();
            let mut mapping = child_mapping.clone();
            for (new_i, &old_i) in kept_fns.iter().enumerate() {
                mapping.push((input_width + old_i, new_width + new_i));
            }
            Ok((
                PlanNode::Window {
                    id,
                    input: Box::new(new_input),
                    partition_by: new_partition,
                    order_by: new_order,
                    functions: new_fns,
                },
                mapping,
            ))
        }
        PlanNode::Union { id, inputs } => {
            // Union requires positional consistency: prune the same channels
            // from every input.
            let width = inputs[0].output_schema().len();
            let kept: Vec<usize> = (0..width).filter(|c| required.contains(c)).collect();
            let kept = if kept.is_empty() { vec![0] } else { kept };
            let child_required: BTreeSet<usize> = kept.iter().copied().collect();
            let mut new_inputs = Vec::new();
            for input in inputs {
                let (pruned, child_map) = prune_columns(input, &child_required, ids)?;
                // Re-project to the kept channels in order so all inputs agree.
                let lookup = mapping_fn(&child_map);
                let schema = pruned.output_schema();
                let exprs: Vec<Expr> = kept
                    .iter()
                    .map(|&c| Expr::column(lookup(c), schema.data_type(lookup(c))))
                    .collect();
                let names: Vec<String> = kept.iter().map(|&c| format!("_u{c}")).collect();
                // Skip the re-projection when it is an identity.
                let identity = exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, Expr::Column { index, .. } if *index == i))
                    && exprs.len() == schema.len();
                if identity {
                    new_inputs.push(pruned);
                } else {
                    new_inputs.push(PlanNode::Project {
                        id: ids.next_id(),
                        input: Box::new(pruned),
                        expressions: exprs,
                        names,
                    });
                }
            }
            let mapping: Vec<(usize, usize)> = kept
                .iter()
                .enumerate()
                .map(|(new, &old)| (old, new))
                .collect();
            Ok((
                PlanNode::Union {
                    id,
                    inputs: new_inputs,
                },
                mapping,
            ))
        }
        PlanNode::TableWrite {
            id,
            input,
            catalog,
            table,
        } => {
            // Writers need every input column.
            let width = input.output_schema().len();
            let all: BTreeSet<usize> = (0..width).collect();
            let (new_input, _) = prune_columns(*input, &all, ids)?;
            Ok((
                PlanNode::TableWrite {
                    id,
                    input: Box::new(new_input),
                    catalog,
                    table,
                },
                vec![(0, 0)],
            ))
        }
        PlanNode::Output { id, input, names } => {
            let width = input.output_schema().len();
            let all: BTreeSet<usize> = (0..width).collect();
            let (new_input, _) = prune_columns(*input, &all, ids)?;
            let mapping: Vec<(usize, usize)> = (0..width).map(|c| (c, c)).collect();
            Ok((
                PlanNode::Output {
                    id,
                    input: Box::new(new_input),
                    names,
                },
                mapping,
            ))
        }
        PlanNode::RemoteSource {
            id,
            fragment,
            schema,
        } => {
            let width = schema.len();
            let mapping: Vec<(usize, usize)> = (0..width).map(|c| (c, c)).collect();
            Ok((
                PlanNode::RemoteSource {
                    id,
                    fragment,
                    schema,
                },
                mapping,
            ))
        }
    }
}

fn mapping_fn(mapping: &[(usize, usize)]) -> impl Fn(usize) -> usize + '_ {
    move |old| {
        mapping
            .iter()
            .find(|(o, _)| *o == old)
            .map(|(_, n)| *n)
            .unwrap_or_else(|| panic!("column {old} pruned while still referenced"))
    }
}

fn remap_keys(keys: &[SortKey], lookup: &dyn Fn(usize) -> usize) -> Vec<SortKey> {
    keys.iter()
        .map(|k| SortKey {
            channel: lookup(k.channel),
            ..*k
        })
        .collect()
}

// keep PrestoError in scope for future rules
#[allow(unused)]
fn _unused(e: PrestoError) {}
