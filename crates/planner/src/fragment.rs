//! Plan fragmentation: cutting the optimized plan into per-stage fragments
//! (§IV-C3, Fig. 3).
//!
//! "The engine inserts buffered in-memory data transfers (shuffles) between
//! stages … the optimizer must reason carefully about the total number of
//! shuffles introduced into the plan." Every node declares the partitioning
//! it *requires*; each piece of the plan tracks the partitioning it
//! *provides* (from connector data layouts and from exchanges already
//! inserted below). An exchange is inserted only when the provided property
//! does not satisfy the requirement — so a join of two tables bucketed on
//! the join key runs co-located with zero shuffles, and an aggregation over
//! data already hash-partitioned on its grouping keys aggregates in place.

use presto_common::id::PlanNodeIdAllocator;
use presto_common::{PrestoError, Result, Schema, Session};
use presto_connector::CatalogManager;

use crate::plan::{AggregateSpec, AggregateStep, JoinDistribution, PlanNode};

/// How the tasks of one fragment are laid out (§IV-D2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentPartitioning {
    /// Leaf fragment driven by connector splits. With `bucket_count`, the
    /// scheduler creates one task per bucket and routes same-bucket splits
    /// of every scan in the fragment to the same task (co-located joins).
    Source { bucket_count: Option<usize> },
    /// Fixed hash partitioning across `count` tasks.
    Hash { count: usize },
    /// A single task.
    Single,
    /// Table-writer fragment whose task count the engine scales
    /// dynamically with output backpressure (§IV-E3).
    ScaledWriter,
}

/// How a fragment's output routes to its consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputPartitioning {
    /// All rows to the single consumer task.
    Gather,
    /// Hash-partition rows on `channels` across `count` consumer tasks.
    Hash { channels: Vec<usize>, count: usize },
    /// Replicate every page to every consumer task.
    Broadcast,
    /// Distribute pages round-robin over however many consumer tasks exist
    /// (used for scaled writers).
    RoundRobin,
    /// Root fragment: stream to the client.
    None,
}

/// One executable stage.
#[derive(Debug, Clone)]
pub struct PlanFragment {
    pub id: u32,
    pub root: PlanNode,
    pub partitioning: FragmentPartitioning,
    pub output: OutputPartitioning,
}

impl PlanFragment {
    /// Fragment ids this fragment reads from (its children in the stage
    /// tree), discovered from RemoteSource leaves.
    pub fn source_fragments(&self) -> Vec<u32> {
        fn collect(node: &PlanNode, out: &mut Vec<u32>) {
            if let PlanNode::RemoteSource { fragment, .. } = node {
                out.push(*fragment);
            }
            for c in node.children() {
                collect(c, out);
            }
        }
        let mut out = Vec::new();
        collect(&self.root, &mut out);
        out
    }

    /// All table scans in this fragment.
    pub fn scans(&self) -> Vec<&PlanNode> {
        fn collect<'a>(node: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
            if matches!(node, PlanNode::TableScan { .. }) {
                out.push(node);
            }
            for c in node.children() {
                collect(c, out);
            }
        }
        let mut out = Vec::new();
        collect(&self.root, &mut out);
        out
    }

    /// Whether the fragment contains a table writer.
    pub fn has_writer(&self) -> bool {
        fn any(node: &PlanNode) -> bool {
            matches!(node, PlanNode::TableWrite { .. }) || node.children().iter().any(|c| any(c))
        }
        any(&self.root)
    }
}

/// A fully fragmented plan: `fragments[root]` streams to the client.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub fragments: Vec<PlanFragment>,
    pub root: u32,
    /// Dynamic-filter channels (inner-join build domain → probe-side scan),
    /// collected by [`crate::dynfilter::collect_dynamic_filters`].
    pub dynamic_filters: Vec<crate::dynfilter::DynamicFilterSpec>,
    /// Fusable scan→filter→project[→partial-agg] chains (with fallback
    /// reasons), collected by [`crate::fusion::collect_fused_chains`].
    pub fused_chains: Vec<crate::fusion::FusedChainSpec>,
}

impl PhysicalPlan {
    pub fn fragment(&self, id: u32) -> &PlanFragment {
        &self.fragments[id as usize]
    }

    pub fn output_schema(&self) -> Schema {
        self.fragment(self.root).root.output_schema()
    }

    /// Human-readable distributed plan.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for f in self.fragments.iter().rev() {
            out.push_str(&format!(
                "Fragment {} [{:?}] output={:?}\n{}\n",
                f.id,
                f.partitioning,
                f.output,
                f.root.explain()
            ));
        }
        out.push_str(&crate::dynfilter::explain_dynamic_filters(
            &self.dynamic_filters,
        ));
        out.push_str(&crate::fusion::explain_fused_chains(&self.fused_chains));
        out
    }

    /// Total number of data shuffles (non-root exchanges), the Fig. 3
    /// metric the optimizer minimizes.
    pub fn shuffle_count(&self) -> usize {
        self.fragments.len() - 1
    }
}

/// What a piece of the open (not yet cut) fragment provides.
#[derive(Debug, Clone, PartialEq)]
enum Dist {
    /// Split-driven leaf; `bucketed` carries (output channels, bucket count)
    /// when the chosen layout is bucketed with the engine's hash function.
    Source {
        bucketed: Option<(Vec<usize>, usize)>,
    },
    /// Hash-partitioned across `count` tasks on `channels` (`None` when the
    /// channels were projected away and the mapping is lost).
    Hashed {
        channels: Option<Vec<usize>>,
        count: usize,
    },
    Single,
}

impl Dist {
    /// Whether data partitioned this way already groups all rows sharing
    /// `keys` onto one task (the shuffle-elision test). The partition
    /// channels must be a prefix-free exact sequence match: the engine and
    /// bucketed layouts hash columns in order.
    fn satisfies_hash(&self, keys: &[usize]) -> bool {
        match self {
            Dist::Single => true,
            Dist::Source {
                bucketed: Some((channels, _)),
            } => channels.as_slice() == keys,
            Dist::Hashed {
                channels: Some(channels),
                ..
            } => channels.as_slice() == keys,
            _ => false,
        }
    }

    fn is_single(&self) -> bool {
        matches!(self, Dist::Single)
    }

    fn task_count_hint(&self, default: usize) -> usize {
        match self {
            Dist::Single => 1,
            Dist::Hashed { count, .. } => *count,
            Dist::Source {
                bucketed: Some((_, count)),
            } => *count,
            Dist::Source { bucketed: None } => default,
        }
    }
}

struct Piece {
    node: PlanNode,
    dist: Dist,
}

struct Fragmenter<'a> {
    session: &'a Session,
    catalogs: &'a CatalogManager,
    fragments: Vec<PlanFragment>,
    ids: PlanNodeIdAllocator,
}

/// Fragment an optimized plan.
pub fn fragment_plan(
    plan: PlanNode,
    session: &Session,
    catalogs: &CatalogManager,
) -> Result<PhysicalPlan> {
    let mut f = Fragmenter {
        session,
        catalogs,
        fragments: Vec::new(),
        ids: {
            let mut ids = PlanNodeIdAllocator::new();
            for _ in 0..100_000 {
                ids.next_id();
            }
            ids
        },
    };
    let piece = f.visit(plan)?;
    // Root must be a single task streaming to the client.
    let piece = if piece.dist.is_single() {
        piece
    } else {
        f.exchange(piece, ExchangeKind::Gather)?
    };
    let root_partitioning = f.partitioning_of(&piece.dist, &piece.node);
    let root_id = f.fragments.len() as u32;
    f.fragments.push(PlanFragment {
        id: root_id,
        root: piece.node,
        partitioning: root_partitioning,
        output: OutputPartitioning::None,
    });
    let mut plan = PhysicalPlan {
        fragments: f.fragments,
        root: root_id,
        dynamic_filters: Vec::new(),
        fused_chains: Vec::new(),
    };
    plan.dynamic_filters = crate::dynfilter::collect_dynamic_filters(&plan);
    plan.fused_chains = crate::fusion::collect_fused_chains(&plan);
    Ok(plan)
}

enum ExchangeKind {
    Gather,
    Hash { channels: Vec<usize>, count: usize },
    Broadcast,
    RoundRobin,
}

impl<'a> Fragmenter<'a> {
    fn partitioning_of(&self, dist: &Dist, node: &PlanNode) -> FragmentPartitioning {
        // A fragment containing a table scan is always source-partitioned.
        let has_scan = {
            fn any_scan(n: &PlanNode) -> bool {
                matches!(n, PlanNode::TableScan { .. }) || n.children().iter().any(|c| any_scan(c))
            }
            any_scan(node)
        };
        match dist {
            Dist::Source { bucketed } if has_scan => FragmentPartitioning::Source {
                bucket_count: bucketed.as_ref().map(|(_, c)| *c),
            },
            Dist::Source { .. } => FragmentPartitioning::Single,
            Dist::Hashed { count, .. } => FragmentPartitioning::Hash { count: *count },
            Dist::Single => FragmentPartitioning::Single,
        }
    }

    /// Close `piece` into a fragment whose output is the given exchange;
    /// return a new piece reading from it.
    fn exchange(&mut self, piece: Piece, kind: ExchangeKind) -> Result<Piece> {
        let schema = piece.node.output_schema();
        let partitioning = self.partitioning_of(&piece.dist, &piece.node);
        let id = self.fragments.len() as u32;
        let (output, dist) = match kind {
            ExchangeKind::Gather => (OutputPartitioning::Gather, Dist::Single),
            ExchangeKind::Hash { channels, count } => (
                OutputPartitioning::Hash {
                    channels: channels.clone(),
                    count,
                },
                Dist::Hashed {
                    channels: Some(channels),
                    count,
                },
            ),
            ExchangeKind::Broadcast => (
                OutputPartitioning::Broadcast,
                // Replicated data satisfies nothing by itself; the consumer
                // side's distribution governs.
                Dist::Single,
            ),
            ExchangeKind::RoundRobin => (
                OutputPartitioning::RoundRobin,
                Dist::Hashed {
                    channels: None,
                    count: 1,
                },
            ),
        };
        self.fragments.push(PlanFragment {
            id,
            root: piece.node,
            partitioning,
            output,
        });
        Ok(Piece {
            node: PlanNode::RemoteSource {
                id: self.ids.next_id(),
                fragment: id,
                schema,
            },
            dist,
        })
    }

    fn default_partitions(&self) -> usize {
        self.session.hash_partition_count.max(1)
    }

    fn visit(&mut self, node: PlanNode) -> Result<Piece> {
        match node {
            PlanNode::TableScan {
                id,
                catalog,
                table,
                layout: _,
                table_schema,
                columns,
                predicate,
            } => {
                // Pick the most useful layout the connector offers
                // (§IV-B3-1); prefer bucketed layouts whose bucket columns
                // survive the scan projection.
                let layouts = self
                    .catalogs
                    .catalog(&catalog)?
                    .metadata()
                    .table_layouts(&table);
                let mut chosen = "default".to_string();
                let mut bucketed = None;
                for l in &layouts {
                    if let Some(p) = &l.partitioning {
                        let channels: Option<Vec<usize>> = p
                            .columns
                            .iter()
                            .map(|tc| columns.iter().position(|c| c == tc))
                            .collect();
                        if let Some(channels) = channels {
                            chosen = l.name.clone();
                            bucketed = Some((channels, p.bucket_count));
                            break;
                        }
                    }
                }
                if bucketed.is_none() {
                    if let Some(l) = layouts.first() {
                        chosen = l.name.clone();
                    }
                }
                Ok(Piece {
                    node: PlanNode::TableScan {
                        id,
                        catalog,
                        table,
                        layout: chosen,
                        table_schema,
                        columns,
                        predicate,
                    },
                    dist: Dist::Source { bucketed },
                })
            }
            PlanNode::Values { id, schema, rows } => Ok(Piece {
                node: PlanNode::Values { id, schema, rows },
                dist: Dist::Single,
            }),
            PlanNode::Filter {
                id,
                input,
                predicate,
            } => {
                let p = self.visit(*input)?;
                Ok(Piece {
                    node: PlanNode::Filter {
                        id,
                        input: Box::new(p.node),
                        predicate,
                    },
                    dist: p.dist,
                })
            }
            PlanNode::Project {
                id,
                input,
                expressions,
                names,
            } => {
                let p = self.visit(*input)?;
                // Translate the provided partitioning through the projection.
                let translate = |channels: &[usize]| -> Option<Vec<usize>> {
                    channels
                        .iter()
                        .map(|&c| {
                            expressions.iter().position(|e| {
                                matches!(e, presto_expr::Expr::Column { index, .. } if *index == c)
                            })
                        })
                        .collect()
                };
                let dist = match &p.dist {
                    Dist::Source {
                        bucketed: Some((ch, n)),
                    } => match translate(ch) {
                        Some(ch) => Dist::Source {
                            bucketed: Some((ch, *n)),
                        },
                        None => Dist::Source { bucketed: None },
                    },
                    Dist::Hashed {
                        channels: Some(ch),
                        count,
                    } => Dist::Hashed {
                        channels: translate(ch),
                        count: *count,
                    },
                    other => other.clone(),
                };
                Ok(Piece {
                    node: PlanNode::Project {
                        id,
                        input: Box::new(p.node),
                        expressions,
                        names,
                    },
                    dist,
                })
            }
            PlanNode::Aggregate {
                id,
                input,
                group_by,
                aggregates,
                step,
            } => {
                debug_assert_eq!(step, AggregateStep::Single, "fragmenter sees Single only");
                let p = self.visit(*input)?;
                let splittable = aggregates
                    .iter()
                    .all(|a| a.function.kind.supports_partial());
                if p.dist.satisfies_hash(&group_by) && !group_by.is_empty() {
                    // Data already partitioned on (exactly) the grouping
                    // keys: aggregate in place — the §IV-C3 elision.
                    let dist = remap_group_dist(&p.dist, &group_by);
                    return Ok(Piece {
                        node: PlanNode::Aggregate {
                            id,
                            input: Box::new(p.node),
                            group_by,
                            aggregates,
                            step: AggregateStep::Single,
                        },
                        dist,
                    });
                }
                if p.dist.is_single() {
                    return Ok(Piece {
                        node: PlanNode::Aggregate {
                            id,
                            input: Box::new(p.node),
                            group_by,
                            aggregates,
                            step: AggregateStep::Single,
                        },
                        dist: Dist::Single,
                    });
                }
                if !splittable {
                    // Single-phase only: shuffle raw rows, aggregate once.
                    let kind = if group_by.is_empty() {
                        ExchangeKind::Gather
                    } else {
                        ExchangeKind::Hash {
                            channels: group_by.clone(),
                            count: self.default_partitions(),
                        }
                    };
                    let p = self.exchange(p, kind)?;
                    let dist = remap_group_dist(&p.dist, &group_by);
                    return Ok(Piece {
                        node: PlanNode::Aggregate {
                            id,
                            input: Box::new(p.node),
                            group_by,
                            aggregates,
                            step: AggregateStep::Single,
                        },
                        dist,
                    });
                }
                // Partial in the producing fragment…
                let partial = PlanNode::Aggregate {
                    id,
                    input: Box::new(p.node),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                    step: AggregateStep::Partial,
                };
                let partial_piece = Piece {
                    node: partial,
                    dist: p.dist,
                };
                // …then exchange on the group keys (which occupy channels
                // 0..g of the partial output)…
                let group_count = group_by.len();
                let kind = if group_by.is_empty() {
                    ExchangeKind::Gather
                } else {
                    ExchangeKind::Hash {
                        channels: (0..group_count).collect(),
                        count: self.default_partitions(),
                    }
                };
                let remote = self.exchange(partial_piece, kind)?;
                // …and finalize. Final specs read the intermediate columns,
                // which start right after the group keys.
                let mut final_aggs = Vec::with_capacity(aggregates.len());
                let mut channel = group_count;
                for a in &aggregates {
                    final_aggs.push(AggregateSpec {
                        function: a.function,
                        input: Some(channel),
                        name: a.name.clone(),
                    });
                    channel += a.function.intermediate_types().len();
                }
                let dist = remap_group_dist(&remote.dist, &(0..group_count).collect::<Vec<_>>());
                Ok(Piece {
                    node: PlanNode::Aggregate {
                        id: self.ids.next_id(),
                        input: Box::new(remote.node),
                        group_by: (0..group_count).collect(),
                        aggregates: final_aggs,
                        step: AggregateStep::Final,
                    },
                    dist,
                })
            }
            PlanNode::Join {
                id,
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                filter,
                distribution,
            } => {
                let lp = self.visit(*left)?;
                let rp = self.visit(*right)?;
                let mut distribution = distribution.unwrap_or(JoinDistribution::Partitioned);
                // Co-located beats broadcast: if both sides are already
                // partitioned on the join keys with matching bucket counts,
                // no exchange at all is needed (§IV-C3).
                if distribution == JoinDistribution::Replicated
                    && !left_keys.is_empty()
                    && lp.dist.satisfies_hash(&left_keys)
                    && rp.dist.satisfies_hash(&right_keys)
                    && lp.dist.task_count_hint(self.default_partitions())
                        == rp.dist.task_count_hint(self.default_partitions())
                    && !lp.dist.is_single()
                {
                    distribution = JoinDistribution::Partitioned;
                }
                match distribution {
                    JoinDistribution::Replicated => {
                        // Build side broadcast into the probe fragment.
                        let build =
                            if rp.dist.is_single() && matches!(rp.node, PlanNode::Values { .. }) {
                                rp // tiny literal build stays inline
                            } else {
                                self.exchange(rp, ExchangeKind::Broadcast)?
                            };
                        Ok(Piece {
                            dist: lp.dist.clone(),
                            node: PlanNode::Join {
                                id,
                                left: Box::new(lp.node),
                                right: Box::new(build.node),
                                join_type,
                                left_keys,
                                right_keys,
                                filter,
                                distribution: Some(JoinDistribution::Replicated),
                            },
                        })
                    }
                    JoinDistribution::Partitioned => {
                        let l_ok = lp.dist.satisfies_hash(&left_keys) && !left_keys.is_empty();
                        let r_ok = rp.dist.satisfies_hash(&right_keys) && !right_keys.is_empty();
                        let (lfinal, rfinal) = match (l_ok, r_ok) {
                            (true, true) => {
                                // Both sides co-partitioned: no shuffle at
                                // all (co-located join) when bucket counts
                                // align; otherwise repartition the right.
                                let lcount = lp.dist.task_count_hint(self.default_partitions());
                                let rcount = rp.dist.task_count_hint(self.default_partitions());
                                if lcount == rcount {
                                    (lp, rp)
                                } else {
                                    let r = self.exchange(
                                        rp,
                                        ExchangeKind::Hash {
                                            channels: right_keys.clone(),
                                            count: lcount,
                                        },
                                    )?;
                                    (lp, r)
                                }
                            }
                            (true, false) => {
                                let count = lp.dist.task_count_hint(self.default_partitions());
                                let r = self.exchange(
                                    rp,
                                    ExchangeKind::Hash {
                                        channels: right_keys.clone(),
                                        count,
                                    },
                                )?;
                                (lp, r)
                            }
                            (false, true) => {
                                let count = rp.dist.task_count_hint(self.default_partitions());
                                let l = self.exchange(
                                    lp,
                                    ExchangeKind::Hash {
                                        channels: left_keys.clone(),
                                        count,
                                    },
                                )?;
                                (l, rp)
                            }
                            (false, false) => {
                                let count = self.default_partitions();
                                let l = self.exchange(
                                    lp,
                                    ExchangeKind::Hash {
                                        channels: left_keys.clone(),
                                        count,
                                    },
                                )?;
                                let r = self.exchange(
                                    rp,
                                    ExchangeKind::Hash {
                                        channels: right_keys.clone(),
                                        count,
                                    },
                                )?;
                                (l, r)
                            }
                        };
                        let dist = lfinal.dist.clone();
                        Ok(Piece {
                            node: PlanNode::Join {
                                id,
                                left: Box::new(lfinal.node),
                                right: Box::new(rfinal.node),
                                join_type,
                                left_keys,
                                right_keys,
                                filter,
                                distribution: Some(JoinDistribution::Partitioned),
                            },
                            dist,
                        })
                    }
                }
            }
            PlanNode::IndexJoin {
                id,
                probe,
                catalog,
                table,
                table_schema,
                probe_keys,
                index_keys,
                output_columns,
            } => {
                let p = self.visit(*probe)?;
                Ok(Piece {
                    dist: p.dist.clone(),
                    node: PlanNode::IndexJoin {
                        id,
                        probe: Box::new(p.node),
                        catalog,
                        table,
                        table_schema,
                        probe_keys,
                        index_keys,
                        output_columns,
                    },
                })
            }
            PlanNode::Sort { id, input, keys } => {
                let p = self.visit(*input)?;
                let p = if p.dist.is_single() {
                    p
                } else {
                    self.exchange(p, ExchangeKind::Gather)?
                };
                Ok(Piece {
                    node: PlanNode::Sort {
                        id,
                        input: Box::new(p.node),
                        keys,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::TopN {
                id,
                input,
                keys,
                count,
            } => {
                let p = self.visit(*input)?;
                if p.dist.is_single() {
                    return Ok(Piece {
                        node: PlanNode::TopN {
                            id,
                            input: Box::new(p.node),
                            keys,
                            count,
                        },
                        dist: Dist::Single,
                    });
                }
                // Partial TopN per task, then final TopN after a gather.
                let partial = Piece {
                    node: PlanNode::TopN {
                        id,
                        input: Box::new(p.node),
                        keys: keys.clone(),
                        count,
                    },
                    dist: p.dist,
                };
                let remote = self.exchange(partial, ExchangeKind::Gather)?;
                Ok(Piece {
                    node: PlanNode::TopN {
                        id: self.ids.next_id(),
                        input: Box::new(remote.node),
                        keys,
                        count,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::Limit { id, input, count } => {
                let p = self.visit(*input)?;
                if p.dist.is_single() {
                    return Ok(Piece {
                        node: PlanNode::Limit {
                            id,
                            input: Box::new(p.node),
                            count,
                        },
                        dist: Dist::Single,
                    });
                }
                let partial = Piece {
                    node: PlanNode::Limit {
                        id,
                        input: Box::new(p.node),
                        count,
                    },
                    dist: p.dist,
                };
                let remote = self.exchange(partial, ExchangeKind::Gather)?;
                Ok(Piece {
                    node: PlanNode::Limit {
                        id: self.ids.next_id(),
                        input: Box::new(remote.node),
                        count,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::Window {
                id,
                input,
                partition_by,
                order_by,
                functions,
            } => {
                let p = self.visit(*input)?;
                let p = if partition_by.is_empty() {
                    if p.dist.is_single() {
                        p
                    } else {
                        self.exchange(p, ExchangeKind::Gather)?
                    }
                } else if p.dist.satisfies_hash(&partition_by) {
                    p
                } else {
                    self.exchange(
                        p,
                        ExchangeKind::Hash {
                            channels: partition_by.clone(),
                            count: self.default_partitions(),
                        },
                    )?
                };
                Ok(Piece {
                    dist: p.dist.clone(),
                    node: PlanNode::Window {
                        id,
                        input: Box::new(p.node),
                        partition_by,
                        order_by,
                        functions,
                    },
                })
            }
            PlanNode::Union { id, inputs } => {
                // Gather every branch into one single-task fragment.
                let mut sources = Vec::new();
                for input in inputs {
                    let p = self.visit(input)?;
                    let p = if p.dist.is_single() {
                        p
                    } else {
                        self.exchange(p, ExchangeKind::Gather)?
                    };
                    sources.push(p.node);
                }
                Ok(Piece {
                    node: PlanNode::Union {
                        id,
                        inputs: sources,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::TableWrite {
                id,
                input,
                catalog,
                table,
            } => {
                let p = self.visit(*input)?;
                // Writers get their own fragment so the engine can scale
                // task count with backpressure (§IV-E3).
                let p = if self.session.writer_scaling && !p.dist.is_single() {
                    self.exchange(p, ExchangeKind::RoundRobin)?
                } else {
                    p
                };
                let write = PlanNode::TableWrite {
                    id,
                    input: Box::new(p.node),
                    catalog,
                    table,
                };
                let write_dist = p.dist.clone();
                if write_dist.is_single() {
                    return Ok(Piece {
                        node: write,
                        dist: Dist::Single,
                    });
                }
                // Sum the per-writer row counts on a single task.
                let remote = self.exchange(
                    Piece {
                        node: write,
                        dist: write_dist,
                    },
                    ExchangeKind::Gather,
                )?;
                let sum = AggregateSpec {
                    function: presto_expr::AggregateFunction::new(
                        presto_expr::AggregateKind::Sum,
                        Some(presto_common::DataType::Bigint),
                    )
                    .expect("sum(bigint)"),
                    input: Some(0),
                    name: "rows".to_string(),
                };
                Ok(Piece {
                    node: PlanNode::Aggregate {
                        id: self.ids.next_id(),
                        input: Box::new(remote.node),
                        group_by: vec![],
                        aggregates: vec![sum],
                        step: AggregateStep::Single,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::Output { id, input, names } => {
                let p = self.visit(*input)?;
                let p = if p.dist.is_single() {
                    p
                } else {
                    self.exchange(p, ExchangeKind::Gather)?
                };
                Ok(Piece {
                    node: PlanNode::Output {
                        id,
                        input: Box::new(p.node),
                        names,
                    },
                    dist: Dist::Single,
                })
            }
            PlanNode::RemoteSource { .. } => {
                Err(PrestoError::internal("fragmenter input already fragmented"))
            }
        }
    }
}

/// Distribution of an Aggregate output: group keys move to channels 0..g.
fn remap_group_dist(input: &Dist, group_by: &[usize]) -> Dist {
    match input {
        Dist::Single => Dist::Single,
        Dist::Source {
            bucketed: Some((ch, n)),
        } if ch.as_slice() == group_by => Dist::Source {
            bucketed: Some(((0..group_by.len()).collect(), *n)),
        },
        Dist::Hashed {
            channels: Some(ch),
            count,
        } if ch.as_slice() == group_by => Dist::Hashed {
            channels: Some((0..group_by.len()).collect()),
            count: *count,
        },
        Dist::Source { .. } => Dist::Source { bucketed: None },
        Dist::Hashed { count, .. } => Dist::Hashed {
            channels: None,
            count: *count,
        },
    }
}
