//! Query planning: analysis, optimization, and fragmentation.
//!
//! The pipeline mirrors §IV-B/§IV-C of the paper:
//!
//! 1. [`analyzer::Analyzer`] resolves names/types and lowers the AST into a
//!    logical [`plan::PlanNode`] tree (Fig. 2);
//! 2. [`optimizer::optimize`] applies the greedy rule set — constant
//!    folding, predicate/limit pushdown, connector-domain extraction,
//!    column pruning — plus the cost-based rules in [`cbo`] (join
//!    re-ordering, join distribution selection, index joins);
//! 3. [`fragment::fragment_plan`] cuts the plan into distributable
//!    [`fragment::PlanFragment`]s, inserting shuffles only where the plan's
//!    data-layout properties do not already satisfy the requirement
//!    (Fig. 3 and the §IV-C3 shuffle-elision discussion).

pub mod analyzer;
pub mod cbo;
pub mod dynfilter;
pub mod fragment;
pub mod fusion;
pub mod optimizer;
pub mod plan;
pub mod stats;

use presto_common::id::PlanNodeIdAllocator;
use presto_common::{Result, Session};
use presto_connector::CatalogManager;
use presto_sql::ast::Statement;

pub use dynfilter::{DynamicFilterKey, DynamicFilterSpec};
pub use fragment::{FragmentPartitioning, OutputPartitioning, PhysicalPlan, PlanFragment};
pub use fusion::{FusedChainSpec, FusedStage};
pub use plan::{AggregateStep, JoinDistribution, JoinType, PlanNode, SortKey};

/// Plan a parsed statement end-to-end: analyze → optimize → fragment.
pub fn plan_statement(
    statement: &Statement,
    session: &Session,
    catalogs: &CatalogManager,
) -> Result<PhysicalPlan> {
    let mut analyzer = analyzer::Analyzer::new(catalogs, session);
    let logical = analyzer.analyze(statement)?;
    let mut ids = PlanNodeIdAllocator::new();
    // Start fresh ids above the analyzer's range to keep EXPLAIN readable.
    for _ in 0..10_000 {
        ids.next_id();
    }
    let optimized = optimizer::optimize(logical, session, catalogs, &mut ids)?;
    fragment::fragment_plan(optimized, session, catalogs)
}

/// Analyze + optimize only (for EXPLAIN and tests).
pub fn plan_logical(
    statement: &Statement,
    session: &Session,
    catalogs: &CatalogManager,
) -> Result<PlanNode> {
    let mut analyzer = analyzer::Analyzer::new(catalogs, session);
    let logical = analyzer.analyze(statement)?;
    let mut ids = PlanNodeIdAllocator::new();
    for _ in 0..10_000 {
        ids.next_id();
    }
    optimizer::optimize(logical, session, catalogs, &mut ids)
}
