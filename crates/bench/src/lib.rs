//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every figure and table in the paper's evaluation (§VI) plus every
//! measured claim in §V has a binary in `src/bin/` that regenerates it; see
//! EXPERIMENTS.md for the index. This module provides the common cluster
//! fixtures (one per connector configuration in Table I) and small stats
//! helpers.

use presto_cache::MetadataCache;
use presto_cluster::{Cluster, ClusterConfig};
use presto_common::NodeId;
use presto_connector::{CatalogManager, Connector};
use presto_connectors::{HiveConnector, MemoryConnector, RaptorConnector, ShardedSqlConnector};
use presto_workload::TpchGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

pub mod kernels;
pub mod report;

/// Scale factor for benchmark data; override with `PRESTO_SF`.
pub fn scale_factor() -> f64 {
    std::env::var("PRESTO_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// Worker count; override with `PRESTO_WORKERS`.
pub fn worker_count() -> usize {
    std::env::var("PRESTO_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

pub fn bench_config() -> ClusterConfig {
    ClusterConfig {
        workers: worker_count(),
        threads_per_worker: 2,
        leaf_parallelism: 2,
        ..Default::default()
    }
}

/// A scratch directory under the target dir, wiped per run.
pub fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("presto-bench-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The evaluation fixture: all four Table I connectors loaded and mounted.
pub struct BenchCluster {
    pub cluster: Cluster,
    pub hive: Arc<HiveConnector>,
    pub raptor: Arc<RaptorConnector>,
    pub sharded: Arc<ShardedSqlConnector>,
    pub memory: Arc<MemoryConnector>,
    pub dir: std::path::PathBuf,
}

impl BenchCluster {
    /// Build the full fixture at the given TPC-H scale.
    pub fn new(name: &str, scale: f64) -> BenchCluster {
        let dir = scratch_dir(name);
        let config = bench_config();
        let generator = TpchGenerator::new(scale);

        let memory = MemoryConnector::new();
        generator.load_memory(&memory);

        // One engine-wide metadata cache, shared by every connector and
        // charged against the cluster's worker pools at start.
        let cache = MetadataCache::new(config.cache.clone());

        let hive = HiveConnector::with_cache(dir.join("hive"), Arc::clone(&cache)).expect("hive");
        generator.load_hive(&hive).expect("load hive");

        let nodes: Vec<NodeId> = (0..config.workers as u32).map(NodeId).collect();
        let raptor = RaptorConnector::with_cache(dir.join("raptor"), nodes, Arc::clone(&cache))
            .expect("raptor");
        generator
            .load_raptor(&raptor, config.workers * 2)
            .expect("load raptor");
        load_abtest_tables(&raptor, scale);

        let sharded = ShardedSqlConnector::with_cache(8, Arc::clone(&cache));
        load_ads_table(&sharded, scale);

        let mut catalogs = CatalogManager::new();
        catalogs.register("memory", Arc::clone(&memory) as Arc<dyn Connector>);
        catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
        catalogs.register("raptor", Arc::clone(&raptor) as Arc<dyn Connector>);
        catalogs.register("sharded", Arc::clone(&sharded) as Arc<dyn Connector>);
        let cluster = Cluster::start_with_cache(config, catalogs, cache).expect("cluster");
        BenchCluster {
            cluster,
            hive,
            raptor,
            sharded,
            memory,
            dir,
        }
    }
}

impl Drop for BenchCluster {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// exposure/conversion tables for the A/B Testing use case, bucketed on
/// uid in Raptor so joins run co-located (§II-C).
pub fn load_abtest_tables(raptor: &RaptorConnector, scale: f64) {
    use presto_common::{DataType, Schema, Value};
    let schema = Schema::of(&[
        ("uid", DataType::Bigint),
        ("test_id", DataType::Bigint),
        ("v", DataType::Double),
    ]);
    let users = ((200_000.0 * scale) as i64).max(2_000);
    let rows_exposure = users * 10;
    let mut rng = StdRng::seed_from_u64(77);
    for table in ["exposure", "conversion"] {
        raptor
            .create_bucketed_table(table, &schema, vec![0], 8)
            .expect("bucketed");
        let n = if table == "exposure" {
            rows_exposure
        } else {
            rows_exposure / 3
        };
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    Value::Bigint(rng.gen_range(0..users)),
                    Value::Bigint(rng.gen_range(0..20)),
                    Value::Double(rng.gen_range(0.0..10.0)),
                ]
            })
            .collect();
        let pages: Vec<presto_page::Page> = rows
            .chunks(8192)
            .map(|c| presto_page::Page::from_rows(&schema, c))
            .collect();
        raptor.load_table(table, &pages).expect("load");
    }
}

/// ads table for the Developer/Advertiser Analytics use case, sharded on
/// advertiser_id (§II-D).
pub fn load_ads_table(sharded: &ShardedSqlConnector, scale: f64) {
    use presto_common::{DataType, Schema, Value};
    let schema = Schema::of(&[
        ("ad_id", DataType::Bigint),
        ("advertiser_id", DataType::Bigint),
        ("clicks", DataType::Bigint),
        ("spend", DataType::Double),
        ("day", DataType::Bigint),
    ]);
    let n = ((500_000.0 * scale) as i64).max(2_000);
    let mut rng = StdRng::seed_from_u64(99);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Bigint(i % (n / 10).max(1)),
                Value::Bigint(rng.gen_range(0..50)),
                Value::Bigint(rng.gen_range(0..10)),
                Value::Double(rng.gen_range(0.0..5.0)),
                Value::Bigint(rng.gen_range(0..30)),
            ]
        })
        .collect();
    sharded.load_table("ads", schema, 1, &rows);
}

/// Percentile of a sorted duration slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Geometric mean of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Fixed-width milliseconds for tables.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// One summary line per metadata-cache layer, from cluster telemetry.
pub fn print_cache_summary(cluster: &Cluster) {
    for (name, c) in cluster.telemetry().cache_counters_by_layer() {
        println!(
            "cache {name:<16} hits {:>6}  misses {:>6}  hit_rate {:>5.1}%  evictions {:>4}  bytes {:>9}",
            c.hits,
            c.misses,
            c.hit_rate() * 100.0,
            c.evictions,
            c.bytes,
        );
    }
    let total = cluster.telemetry().cache_counters();
    println!(
        "cache {:<16} hits {:>6}  misses {:>6}  hit_rate {:>5.1}%  evictions {:>4}  bytes {:>9}",
        "TOTAL",
        total.hits,
        total.misses,
        total.hit_rate() * 100.0,
        total.evictions,
        total.bytes,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_and_geomean() {
        let d: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&d, 0.5), Duration::from_millis(51));
        assert_eq!(percentile(&d, 1.0), Duration::from_millis(100));
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }
}
