//! Hash-kernel micro-benchmarks (§V-E): the vectorized flat-table join and
//! group-by kernels against the pre-flat baseline implementations
//! (`HashMap<u64, Vec<u32>>` join table, `HashMap<Vec<u8>, u32>` group-by),
//! over flat, dictionary-encoded and RLE inputs.
//!
//! The baselines reproduce the engine's previous kernels faithfully —
//! per-key `Vec` allocations, per-row builder appends on the probe — so the
//! `hash_kernels` binary measures exactly the delta the flat layout buys.

use presto_common::{DataType, Schema};
use presto_exec::agg::GroupByHash;
use presto_exec::join::{HashBuilderOperator, JoinBridge, LookupJoinOperator, ProbeJoinType};
use presto_exec::Operator;
use presto_page::blocks::{DictionaryBlock, LongBlock};
use presto_page::hash::hash_columns;
use presto_page::{Block, BlockBuilder, Page};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub const PAGE_ROWS: usize = 4096;

/// How the generated key column is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyEncoding {
    Flat,
    Dictionary,
    Rle,
}

impl KeyEncoding {
    pub fn label(self) -> &'static str {
        match self {
            KeyEncoding::Flat => "flat",
            KeyEncoding::Dictionary => "dict",
            KeyEncoding::Rle => "rle",
        }
    }
}

pub fn kv_schema() -> Schema {
    Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)])
}

/// Deterministic keyed pages: `rows` total rows, keys in `0..cardinality`.
/// Dictionary pages share one dictionary `Arc` (and therefore one
/// dictionary id) across all pages; RLE pages hold one run per page.
pub fn make_pages(rows: usize, cardinality: usize, encoding: KeyEncoding) -> Vec<Page> {
    let cardinality = cardinality.max(1);
    let dictionary = Arc::new(Block::from(LongBlock::from_values(
        (0..cardinality as i64).collect(),
    )));
    let mut pages = Vec::new();
    let mut produced = 0usize;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    while produced < rows {
        let n = PAGE_ROWS.min(rows - produced);
        let keys: Block = match encoding {
            KeyEncoding::Flat => {
                let values: Vec<i64> = (0..n)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % cardinality as u64) as i64
                    })
                    .collect();
                Block::from(LongBlock::from_values(values))
            }
            KeyEncoding::Dictionary => {
                let ids: Vec<u32> = (0..n)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % cardinality as u64) as u32
                    })
                    .collect();
                Block::Dictionary(DictionaryBlock::new(Arc::clone(&dictionary), ids))
            }
            KeyEncoding::Rle => {
                let key = (produced / PAGE_ROWS) % cardinality;
                Block::rle(
                    Block::from(LongBlock::from_values(vec![key as i64])),
                    n,
                )
            }
        };
        let payload = Block::from(LongBlock::from_values(
            (produced as i64..(produced + n) as i64).collect(),
        ));
        pages.push(Page::new(vec![keys, payload]));
        produced += n;
    }
    pages
}

/// One measured kernel run.
pub struct KernelRun {
    pub rows: usize,
    pub output_rows: usize,
    pub elapsed: Duration,
}

impl KernelRun {
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The engine's previous join kernel, replicated from the pre-flat
/// `JoinBridge`/`LookupJoinOperator`: single-threaded finalize into a
/// `HashMap<u64, Vec<u32>>` with per-key `Vec` chains, then a probe that
/// re-hashes each page with a fresh dictionary cache, accumulates
/// `(probe row, build addr)` pairs, and materializes them in a second
/// per-row `append_from` pass.
pub fn baseline_join(build: &[Page], probe: &[Page]) -> KernelRun {
    let start = Instant::now();
    let mut rows: Vec<(u32, u32)> = Vec::new();
    let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
    for (pi, page) in build.iter().enumerate() {
        let hashes = hash_columns(page, &[0]);
        for (ri, &h) in hashes.iter().enumerate() {
            if page.block(0).is_null(ri) {
                continue;
            }
            let idx = rows.len() as u32;
            rows.push((pi as u32, ri as u32));
            map.entry(h).or_default().push(idx);
        }
    }
    let mut output_rows = 0usize;
    for page in probe {
        // The old probe called `hash_columns` per page: dictionary entry
        // hashes were recomputed for every page, not cached across pages.
        let hashes = hash_columns(page, &[0]);
        let mut pairs: Vec<(u32, (u32, u32))> = Vec::new();
        let mut candidate_of_probe = vec![0u32; page.row_count()];
        for (row, &h) in hashes.iter().enumerate() {
            if page.block(0).is_null(row) {
                continue;
            }
            for &idx in map.get(&h).map(Vec::as_slice).unwrap_or(&[]) {
                let (bp, br) = rows[idx as usize];
                let build_page = &build[bp as usize];
                if build_page.block(0).eq_at(br as usize, page.block(0), row) {
                    pairs.push((row as u32, (bp, br)));
                    candidate_of_probe[row] += 1;
                }
            }
        }
        let mut builders: Vec<BlockBuilder> = (0..4)
            .map(|_| BlockBuilder::with_capacity(DataType::Bigint, pairs.len()))
            .collect();
        for &(prow, (bp, br)) in &pairs {
            let build_page = &build[bp as usize];
            builders[0].append_from(page.block(0), prow as usize);
            builders[1].append_from(page.block(1), prow as usize);
            builders[2].append_from(build_page.block(0), br as usize);
            builders[3].append_from(build_page.block(1), br as usize);
        }
        let out = Page::new(builders.into_iter().map(BlockBuilder::finish).collect());
        output_rows += out.row_count();
    }
    let total: usize = build.iter().chain(probe).map(Page::row_count).sum();
    KernelRun {
        rows: total,
        output_rows,
        elapsed: start.elapsed(),
    }
}

/// The flat partitioned kernel driven through the real operators.
pub fn flat_join(build: &[Page], probe: &[Page]) -> KernelRun {
    let start = Instant::now();
    let bridge = JoinBridge::new(vec![0], 1);
    let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
    for page in build {
        builder.add_input(page.clone()).expect("build input");
    }
    builder.finish();
    let mut join = LookupJoinOperator::new(
        bridge,
        ProbeJoinType::Inner,
        vec![0],
        kv_schema(),
        kv_schema(),
        None,
    );
    let mut output_rows = 0usize;
    for page in probe {
        join.add_input(page.clone()).expect("probe input");
        while let Some(out) = join.output().expect("join output") {
            output_rows += out.row_count();
        }
    }
    let total: usize = build.iter().chain(probe).map(Page::row_count).sum();
    KernelRun {
        rows: total,
        output_rows,
        elapsed: start.elapsed(),
    }
}

/// Byte encoding of one bigint cell, as the old `encode_cell` produced it.
fn baseline_encode(block: &Block, row: usize, out: &mut Vec<u8>) {
    out.clear();
    if block.is_null(row) {
        out.push(0);
    } else {
        out.push(1);
        out.extend_from_slice(&block.i64_at(row).to_le_bytes());
    }
}

/// The engine's previous group-by kernel, replicated from the pre-flat
/// `GroupByHash`: `HashMap<Vec<u8>, u32>` with a fresh key encoding and
/// map lookup per row, a cloned `Vec<u8>` per new group, and the
/// dictionary entry → group cache that operator already carried.
pub fn baseline_group_by(pages: &[Page]) -> KernelRun {
    let start = Instant::now();
    let mut map: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut key_builder = BlockBuilder::new(DataType::Bigint);
    let mut dict_cache: Option<(u64, Vec<i64>)> = None;
    let mut key = Vec::with_capacity(16);
    for page in pages {
        // Dictionary fast path, as in the old operator: resolve per entry,
        // memoized across pages sharing one dictionary.
        if let Block::Dictionary(d) = page.block(0).loaded() {
            let valid = matches!(&dict_cache, Some((id, _)) if *id == d.dictionary_id);
            if !valid {
                dict_cache = Some((d.dictionary_id, vec![-1; d.dictionary.len()]));
            }
            let mut out = Vec::with_capacity(d.ids.len());
            for &entry in &d.ids {
                let cached = match &dict_cache {
                    Some((_, groups)) => groups[entry as usize],
                    None => -1,
                };
                if cached >= 0 {
                    out.push(cached as u32);
                    continue;
                }
                baseline_encode(&d.dictionary, entry as usize, &mut key);
                let group = match map.get(key.as_slice()) {
                    Some(&id) => id,
                    None => {
                        let id = map.len() as u32;
                        map.insert(key.clone(), id);
                        key_builder.append_from(&d.dictionary, entry as usize);
                        id
                    }
                };
                if let Some((_, groups)) = &mut dict_cache {
                    groups[entry as usize] = group as i64;
                }
                out.push(group);
            }
            continue;
        }
        let block = page.block(0);
        let mut ids: Vec<u32> = Vec::with_capacity(page.row_count());
        for row in 0..page.row_count() {
            baseline_encode(block, row, &mut key);
            let id = match map.get(key.as_slice()) {
                Some(&id) => id,
                None => {
                    let id = map.len() as u32;
                    map.insert(key.clone(), id);
                    key_builder.append_from(block, row);
                    id
                }
            };
            ids.push(id);
        }
    }
    let total: usize = pages.iter().map(Page::row_count).sum();
    KernelRun {
        rows: total,
        output_rows: map.len(),
        elapsed: start.elapsed(),
    }
}

/// The flat-table + key-arena kernel.
pub fn flat_group_by(pages: &[Page]) -> KernelRun {
    let start = Instant::now();
    let mut hash = GroupByHash::new(vec![0], vec![DataType::Bigint]);
    for page in pages {
        let _ = hash.group_ids(page);
    }
    let total: usize = pages.iter().map(Page::row_count).sum();
    KernelRun {
        rows: total,
        output_rows: hash.group_count(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_flat_kernels_agree() {
        for encoding in [KeyEncoding::Flat, KeyEncoding::Dictionary, KeyEncoding::Rle] {
            let build = make_pages(2_000, 64, KeyEncoding::Flat);
            let probe = make_pages(3_000, 64, encoding);
            let a = baseline_join(&build, &probe);
            let b = flat_join(&build, &probe);
            assert_eq!(a.output_rows, b.output_rows, "{encoding:?} join output");
            let g1 = baseline_group_by(&probe);
            let g2 = flat_group_by(&probe);
            assert_eq!(g1.output_rows, g2.output_rows, "{encoding:?} group count");
        }
    }
}
