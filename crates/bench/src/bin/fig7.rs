//! Figure 7: "Query runtime distribution for selected use cases".
//!
//! The paper plots CDFs of production query runtimes for the four Table I
//! use cases, spanning ~20 ms web queries to multi-hour ETL. We replay the
//! four workload generators against their Table I connectors and print the
//! CDF series. Absolute times are scaled to the simulated data; the
//! *ordering* (Dev/Advertiser ≪ A/B ≪ Interactive ≪ ETL) is the result.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin fig7
//! ```

use presto_bench::{percentile, print_cache_summary, scale_factor, BenchCluster};
use presto_workload::usecases::{UseCase, WorkloadGenerator};
use std::time::Duration;

fn main() {
    let scale = scale_factor();
    let queries_per_case: usize = std::env::var("PRESTO_FIG7_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("Figure 7 reproduction: query runtime CDF per use case (SF {scale})\n");
    let fixture = BenchCluster::new("fig7", scale);
    // Shared storage is slower than local flash.
    fixture.hive.set_read_latency(Duration::from_micros(300));

    let mut series: Vec<(&'static str, Vec<Duration>)> = Vec::new();
    for use_case in UseCase::all() {
        let mut generator = WorkloadGenerator::new(use_case, 2024);
        let session = use_case.session();
        // Table I concurrency, scaled down: issue small concurrent batches.
        let batch = match use_case {
            UseCase::DeveloperAdvertiser => 4,
            UseCase::AbTesting => 4,
            UseCase::Interactive => 4,
            UseCase::BatchEtl => 2,
        };
        let mut times = Vec::new();
        let mut remaining = queries_per_case;
        while remaining > 0 {
            let n = batch.min(remaining);
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    fixture
                        .cluster
                        .submit(generator.next_query(), session.clone())
                })
                .collect();
            for h in handles {
                match h.join().unwrap() {
                    Ok(out) => times.push(out.wall_time),
                    Err(e) => eprintln!("{}: {e}", use_case.label()),
                }
            }
            remaining -= n;
        }
        times.sort();
        series.push((use_case.label(), times));
    }

    // CDF table, log-spaced buckets like the paper's x-axis.
    let buckets: Vec<Duration> = [
        1u64, 2, 4, 8, 16, 32, 64, 125, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 60_000,
    ]
    .iter()
    .map(|&ms| Duration::from_millis(ms))
    .collect();
    print!("{:<12}", "runtime<=");
    for (label, _) in &series {
        print!("{label:>28}");
    }
    println!();
    for b in &buckets {
        print!("{:<12}", format!("{}ms", b.as_millis()));
        for (_, times) in &series {
            let frac = times.iter().filter(|t| **t <= *b).count() as f64 / times.len() as f64;
            print!("{:>27.0}%", frac * 100.0);
        }
        println!();
    }
    println!("\npercentiles:");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "use case", "p25", "p50", "p90", "max"
    );
    for (label, times) in &series {
        println!(
            "{label:<28} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}",
            percentile(times, 0.25),
            percentile(times, 0.50),
            percentile(times, 0.90),
            percentile(times, 1.0),
        );
    }
    println!("\nexpected shape (paper): Dev/Advertiser fastest, then A/B Testing,");
    println!("then Interactive Analytics, with Batch ETL slowest by a wide margin.");
    println!();
    print_cache_summary(&fixture.cluster);
}
