//! Figure 6: "Query runtimes for a subset of TPC-DS" across three
//! connector configurations — Raptor, Hive/HDFS without statistics, and
//! Hive/HDFS with table/column statistics.
//!
//! The paper's message: one unmodified Presto cluster adapts to connector
//! characteristics. Raptor (local flash, always-fresh statistics) is
//! fastest; Hive with statistics closes much of the gap via cost-based
//! join re-ordering and distribution selection; Hive without statistics is
//! slowest. The queries here are the DESIGN.md stand-ins (TPC-H tables,
//! TPC-DS-shaped queries, labels preserved).
//!
//! ```sh
//! cargo run --release -p presto-bench --bin fig6
//! ```

use presto_bench::{
    bench_config, geomean, ms, print_cache_summary, scale_factor, scratch_dir, worker_count,
};
use presto_cache::MetadataCache;
use presto_cluster::Cluster;
use presto_common::{NodeId, Session};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::{HiveConnector, RaptorConnector};
use presto_workload::{TpchGenerator, FIG6_QUERIES};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let scale = scale_factor();
    let dir = scratch_dir("fig6");
    let config = bench_config();
    println!(
        "Figure 6 reproduction: TPC-DS-shaped query runtimes (SF {scale}, {} workers)",
        worker_count()
    );
    println!("paper: Fig. 6 — Raptor < Hive+stats < Hive(no stats)\n");

    let generator = TpchGenerator::new(scale);
    let cache = MetadataCache::new(config.cache.clone());
    // Raptor: shared-nothing local storage, bucketed on join keys.
    let raptor = RaptorConnector::with_cache(
        dir.join("raptor"),
        (0..config.workers as u32).map(NodeId).collect::<Vec<_>>(),
        Arc::clone(&cache),
    )
    .expect("raptor");
    generator
        .load_raptor(&raptor, config.workers * 2)
        .expect("load raptor");
    // Hive: shared storage with simulated remote-read latency.
    let hive = HiveConnector::with_cache(dir.join("hive"), Arc::clone(&cache)).expect("hive");
    generator.load_hive(&hive).expect("load hive");
    hive.set_read_latency(Duration::from_micros(300));

    let mut catalogs = CatalogManager::new();
    catalogs.register("raptor", Arc::clone(&raptor) as Arc<dyn Connector>);
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start_with_cache(config, catalogs, cache).expect("cluster");

    let run = |label: &str, sql: &str, session: &Session| -> Duration {
        match cluster.execute_with_session(sql, session) {
            Ok(out) => out.wall_time,
            Err(e) => {
                eprintln!("{label}: FAILED: {e}");
                Duration::ZERO
            }
        }
    };

    // Three configurations, as in the paper.
    let raptor_session = Session::for_catalog("raptor");
    let mut hive_nostats = Session::for_catalog("hive");
    hive_nostats.join_reordering = true; // CBO on, but stats are hidden
    let hive_stats = Session::for_catalog("hive");

    println!(
        "{:<6} {:>12} {:>18} {:>16}",
        "query", "raptor_ms", "hive_nostats_ms", "hive_stats_ms"
    );
    let mut ratios_nostats = Vec::new();
    let mut ratios_stats = Vec::new();
    for (label, sql) in FIG6_QUERIES {
        // Warm the Raptor path once so first-run effects don't skew q09.
        let r = {
            let a = run(label, sql, &raptor_session);
            let b = run(label, sql, &raptor_session);
            a.min(b)
        };
        hive.set_statistics_enabled(false);
        let hn = run(label, sql, &hive_nostats);
        hive.set_statistics_enabled(true);
        let hs = run(label, sql, &hive_stats);
        println!("{label:<6} {:>12} {:>18} {:>16}", ms(r), ms(hn), ms(hs));
        if r > Duration::ZERO {
            ratios_nostats.push(hn.as_secs_f64() / r.as_secs_f64());
            ratios_stats.push(hs.as_secs_f64() / r.as_secs_f64());
        }
    }
    println!("\ngeomean slowdown vs Raptor:");
    println!(
        "  Hive/HDFS (no stats):          {:.2}x",
        geomean(&ratios_nostats)
    );
    println!(
        "  Hive/HDFS (table/column stats): {:.2}x",
        geomean(&ratios_stats)
    );
    println!("\nexpected shape (paper): Raptor fastest; statistics close much of the gap.");
    println!();
    print_cache_summary(&cluster);
    std::fs::remove_dir_all(&dir).ok();
}
