//! §V-E "Operating on Compressed Data".
//!
//! The engine processes dictionary and RLE blocks without decoding:
//! expressions evaluate once per distinct dictionary entry (or once per
//! run) instead of once per row. This bench compares the page processor
//! with compressed-block processing on vs off over low-cardinality data.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin compressed
//! ```

use presto_common::{DataType, Session, Value};
use presto_expr::{CmpOp, Expr, PageProcessor, ScalarFn};
use presto_page::blocks::{DictionaryBlock, LongBlock, VarcharBlock};
use presto_page::{Block, Page};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn dictionary_pages(rows: usize) -> Vec<Page> {
    // Low-cardinality ship-instruction column, dictionary-encoded like an
    // ORC stripe (Fig. 5), plus a numeric column.
    let entries = [
        "DELIVER IN PERSON",
        "COLLECT COD",
        "NONE",
        "TAKE BACK RETURN",
    ];
    let dictionary = Arc::new(Block::from(VarcharBlock::from_strs(&entries)));
    let mut rng = StdRng::seed_from_u64(9);
    (0..rows)
        .step_by(8192)
        .map(|start| {
            let n = 8192.min(rows - start);
            let ids: Vec<u32> = (0..n)
                .map(|_| rng.gen_range(0..entries.len() as u32))
                .collect();
            let nums: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            Page::new(vec![
                Block::Dictionary(DictionaryBlock::new(Arc::clone(&dictionary), ids)),
                Block::from(LongBlock::from_values(nums)),
            ])
        })
        .collect()
}

fn main() {
    let rows: usize = std::env::var("PRESTO_COMPRESSED_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);
    println!("§V-E reproduction: processing dictionary blocks without decoding ({rows} rows)\n");
    let pages = dictionary_pages(rows);
    // Projection: lower(shipinstruct) — string work per evaluation; filter
    // keeps most rows so projection cost dominates.
    let (f, t) = ScalarFn::resolve("lower", &[DataType::Varchar]).unwrap();
    let projections = vec![
        Expr::Call {
            function: f,
            args: vec![Expr::column(0, DataType::Varchar)],
            data_type: t,
        },
        Expr::column(1, DataType::Bigint),
    ];
    let filter = Expr::cmp(
        CmpOp::Ne,
        Expr::column(0, DataType::Varchar),
        Expr::typed_literal(Value::varchar("nonexistent"), DataType::Varchar),
    );

    let run = |compressed: bool| -> (std::time::Duration, usize) {
        let mut session = Session::default();
        session.process_compressed = compressed;
        let mut processor = PageProcessor::new(Some(&filter), &projections, &session);
        let start = Instant::now();
        let mut out = 0;
        for page in &pages {
            out += processor.process(page).expect("process").row_count();
        }
        (start.elapsed(), out)
    };
    let (decoded_time, n1) = run(false);
    let (compressed_time, n2) = run(true);
    assert_eq!(n1, n2);
    println!("{:<34} {:>12}", "mode", "time");
    println!("{:<34} {:>12.2?}", "decode-first (baseline)", decoded_time);
    println!(
        "{:<34} {:>12.2?}",
        "dictionary-aware (§V-E)", compressed_time
    );
    println!(
        "\nspeedup: {:.1}x over {} rows ({} distinct values per dictionary)",
        decoded_time.as_secs_f64() / compressed_time.as_secs_f64(),
        rows,
        4
    );
    println!("\nexpected shape (paper): processing the dictionary (4 entries) instead of");
    println!("every row wins by a wide margin on low-cardinality data.");
}
