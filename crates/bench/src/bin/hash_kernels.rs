//! §V-E hash-kernel benchmark: flat-table join build+probe and group-by
//! against the previous HashMap-based kernels, across input encodings.
//!
//! Reports rows/sec per kernel and the flat/baseline speedup. Expected
//! shape: the flat kernels ≥ 2× the baselines on flat input, with
//! dictionary input faster than flat input (entry-level match caching) and
//! RLE input fastest (one probe per page).
//!
//! ```sh
//! cargo run --release -p presto-bench --bin hash_kernels [-- --smoke]
//! ```
//!
//! Emits `BENCH_hash_kernels.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_bench::kernels::{
    baseline_group_by, baseline_join, flat_group_by, flat_join, make_pages, KernelRun, KeyEncoding,
};
use presto_common::json::Json;

fn mrps(r: &KernelRun) -> String {
    format!("{:8.2} Mrows/s", r.rows_per_sec() / 1e6)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode runs the same paths at trivial sizes so the suite can be
    // exercised from `cargo test -q` (tier-1) without release-build timing.
    let (build_rows, probe_rows, group_rows, reps) = if smoke {
        (2_000, 4_000, 4_000, 1)
    } else {
        (500_000, 2_000_000, 4_000_000, 3)
    };
    // Join keys are near-unique on the build side (~1 match per probe row)
    // so the measurement is the hash build + probe, not output
    // materialization, which costs the same in both kernels.
    let join_cardinality = build_rows;
    // High-cardinality grouping: the table no longer fits in cache, so the
    // kernels are bound by layout locality rather than per-row arithmetic.
    let group_cardinality = 1_000_000.min(group_rows / 4).max(16);
    println!(
        "hash_kernels: build {build_rows} probe {probe_rows} group {group_rows} rows, \
         join cardinality {join_cardinality}, group cardinality {group_cardinality}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut join_report = Vec::new();
    let mut group_report = Vec::new();

    println!("\njoin build+probe (inner, bigint key):");
    for encoding in [KeyEncoding::Flat, KeyEncoding::Dictionary, KeyEncoding::Rle] {
        let build = make_pages(build_rows, join_cardinality, KeyEncoding::Flat);
        let probe = make_pages(probe_rows, join_cardinality, encoding);
        let mut base_best: Option<KernelRun> = None;
        let mut flat_best: Option<KernelRun> = None;
        for _ in 0..reps {
            let b = baseline_join(&build, &probe);
            let f = flat_join(&build, &probe);
            assert_eq!(b.output_rows, f.output_rows, "kernels must agree");
            if base_best.as_ref().is_none_or(|x| b.elapsed < x.elapsed) {
                base_best = Some(b);
            }
            if flat_best.as_ref().is_none_or(|x| f.elapsed < x.elapsed) {
                flat_best = Some(f);
            }
        }
        let (b, f) = (
            base_best.expect("baseline run"),
            flat_best.expect("flat run"),
        );
        let speedup = b.elapsed.as_secs_f64() / f.elapsed.as_secs_f64().max(1e-9);
        println!(
            "  {:<5} baseline {}  flat {}  speedup {:4.2}x  ({} out rows)",
            encoding.label(),
            mrps(&b),
            mrps(&f),
            speedup,
            f.output_rows,
        );
        join_report.push(Json::obj([
            ("encoding", Json::Str(encoding.label().into())),
            ("baseline_mrows_per_sec", Json::Num(b.rows_per_sec() / 1e6)),
            ("flat_mrows_per_sec", Json::Num(f.rows_per_sec() / 1e6)),
            ("speedup", Json::Num(speedup)),
            ("output_rows", Json::Int(f.output_rows as i64)),
        ]));
    }

    println!("\ngroup-by (bigint key):");
    for encoding in [KeyEncoding::Flat, KeyEncoding::Dictionary, KeyEncoding::Rle] {
        let pages = make_pages(group_rows, group_cardinality, encoding);
        let mut base_best: Option<KernelRun> = None;
        let mut flat_best: Option<KernelRun> = None;
        for _ in 0..reps {
            let b = baseline_group_by(&pages);
            let f = flat_group_by(&pages);
            assert_eq!(b.output_rows, f.output_rows, "group counts must agree");
            if base_best.as_ref().is_none_or(|x| b.elapsed < x.elapsed) {
                base_best = Some(b);
            }
            if flat_best.as_ref().is_none_or(|x| f.elapsed < x.elapsed) {
                flat_best = Some(f);
            }
        }
        let (b, f) = (
            base_best.expect("baseline run"),
            flat_best.expect("flat run"),
        );
        let speedup = b.elapsed.as_secs_f64() / f.elapsed.as_secs_f64().max(1e-9);
        println!(
            "  {:<5} baseline {}  flat {}  speedup {:4.2}x  ({} groups)",
            encoding.label(),
            mrps(&b),
            mrps(&f),
            speedup,
            f.output_rows,
        );
        group_report.push(Json::obj([
            ("encoding", Json::Str(encoding.label().into())),
            ("baseline_mrows_per_sec", Json::Num(b.rows_per_sec() / 1e6)),
            ("flat_mrows_per_sec", Json::Num(f.rows_per_sec() / 1e6)),
            ("speedup", Json::Num(speedup)),
            ("groups", Json::Int(f.output_rows as i64)),
        ]));
    }

    println!();
    BenchReport::new("hash_kernels")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("build_rows", Json::Int(build_rows as i64))
        .config("probe_rows", Json::Int(probe_rows as i64))
        .config("group_rows", Json::Int(group_rows as i64))
        .metric("join", Json::Arr(join_report))
        .metric("group_by", Json::Arr(group_report))
        .write();
}
