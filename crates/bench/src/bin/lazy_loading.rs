//! §V-D "Lazy Data Loading".
//!
//! Paper: "Tests on a sample of production workload from the Batch ETL use
//! case show that lazy loading reduces data fetched by 78%, cells loaded by
//! 22% and total CPU time by 14%." We run a selective query over a wide
//! PORC table with lazy loading on and off and report the same three
//! metrics.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin lazy_loading
//! ```

use presto_bench::{bench_config, scale_factor, scratch_dir};
use presto_cluster::Cluster;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::HiveConnector;
use presto_page::Page;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let scale = scale_factor();
    let rows = ((20_000_000.0 * scale) as usize).max(400_000);
    println!("§V-D reproduction: lazy data loading over a wide table ({rows} rows)\n");
    let dir = scratch_dir("lazy");
    let hive = HiveConnector::new(dir.join("hive")).expect("hive");
    // A wide table: 2 filter/projection columns + 10 wide payload columns.
    let mut fields = vec![("id", DataType::Bigint), ("bucket", DataType::Bigint)];
    let wide: Vec<String> = (0..10).map(|i| format!("payload{i}")).collect();
    for w in &wide {
        fields.push((w.as_str(), DataType::Varchar));
    }
    let schema = Schema::of(&fields);
    let mut rng = StdRng::seed_from_u64(3);
    let pages: Vec<Page> = (0..rows)
        .step_by(8192)
        .map(|start| {
            let n = 8192.min(rows - start);
            let data: Vec<Vec<Value>> = (0..n)
                .map(|i| {
                    let mut row = vec![
                        Value::Bigint((start + i) as i64),
                        Value::Bigint(rng.gen_range(0..100)),
                    ];
                    for w in 0..10 {
                        row.push(Value::varchar(format!(
                            "wide-payload-{w}-{}-abcdefghijklmnopqrstuvwxyz",
                            start + i
                        )));
                    }
                    row
                })
                .collect();
            Page::from_rows(&schema, &data)
        })
        .collect();
    hive.load_table("wide", schema, &pages).expect("load");

    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start(bench_config(), catalogs).expect("cluster");

    // Selective query touching 2 payload columns out of 10. The filter is
    // an arithmetic expression the connector cannot push down (so stripe
    // min/max pruning does not apply — that optimization is §V-C), and it
    // is clustered: ~10% of stripes match in full, the rest not at all.
    // That is the access pattern where lazy loading pays: the filter
    // column decodes everywhere, the payload columns only where rows
    // survive — like the paper's production ETL sample.
    let sql = "SELECT payload0, payload7 FROM wide                WHERE (id / 8192) % 10 = 3 AND id % 2 = 0";
    let run = |lazy: bool| -> (u64, u64, std::time::Duration) {
        let before = hive.io_stats().snapshot();
        let mut session = Session::for_catalog("hive");
        session.lazy_loading = lazy;
        let out = cluster.execute_with_session(sql, &session).expect("query");
        let after = hive.io_stats().snapshot();
        (after.0 - before.0, after.1 - before.1, out.cpu_time)
    };
    // Warm the file cache once so the comparison is I/O-pattern only.
    run(true);
    let (lazy_bytes, lazy_cells, lazy_cpu) = run(true);
    let (eager_bytes, eager_cells, eager_cpu) = run(false);

    println!(
        "{:<24} {:>16} {:>16} {:>12}",
        "mode", "data fetched", "cells loaded", "cpu"
    );
    println!(
        "{:<24} {:>14}KB {:>16} {:>12.2?}",
        "eager (baseline)",
        eager_bytes / 1024,
        eager_cells,
        eager_cpu
    );
    println!(
        "{:<24} {:>14}KB {:>16} {:>12.2?}",
        "lazy (§V-D)",
        lazy_bytes / 1024,
        lazy_cells,
        lazy_cpu
    );
    let pct = |a: f64, b: f64| ((1.0 - a / b) * 100.0).max(0.0);
    println!("\nreductions from lazy loading:");
    println!(
        "  data fetched: {:>5.0}%   (paper: 78%)",
        pct(lazy_bytes as f64, eager_bytes as f64)
    );
    println!(
        "  cells loaded: {:>5.0}%   (paper: 22%)",
        pct(lazy_cells as f64, eager_cells as f64)
    );
    println!(
        "  cpu time:     {:>5.0}%   (paper: 14%)",
        pct(lazy_cpu.as_secs_f64(), eager_cpu.as_secs_f64())
    );
    std::fs::remove_dir_all(&dir).ok();
}
