//! Whole-pipeline fused compiled execution on TPC-H-shaped scans.
//!
//! Two scan-heavy pipelines, both of the shape the fusion pass targets
//! (scan → filter → project → partial aggregation):
//!
//! * **q6** — a TPC-H Q6-shaped selective filter feeding a global
//!   aggregate. The fused loop evaluates the filter into a selection
//!   vector, gathers only the channels the projection needs, and feeds
//!   the aggregation through the zero-group fast path that never touches
//!   the group hash table.
//! * **q1** — a TPC-H Q1-shaped weakly-selective filter feeding a
//!   grouped aggregation, exercising the pre-hashed group-by path.
//!
//! Each query runs with `pipeline_fusion` on and off on the same
//! cluster; results are diffed row for row (fusion is an optimization,
//! never a semantic change — measures are integer cents/basis-points so
//! sums are bit-deterministic), wall times compared best-of-N.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin fusion_bench
//! cargo run -p presto-bench --bin fusion_bench -- --smoke
//! ```
//!
//! Emits `BENCH_fusion.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_bench::{bench_config, ms, worker_count};
use presto_cluster::Cluster;
use presto_common::json::Json;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use presto_page::Page;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Rows per page as loaded into the memory connector; the scan serves
/// pages at this granularity.
const PAGE_ROWS: usize = 4096;

/// TPC-H Q6 shape: multi-predicate range filter (keeps ~30% of rows),
/// arithmetic projection, global SUM. Prices are cents and discounts
/// basis points so the aggregate is exact integer arithmetic. The range
/// bounds are tuned so the aggregation — the stage fusion bypasses
/// entirely via the zero-group fast path — dominates over the filter
/// work both paths share.
const Q6: &str = "SELECT SUM(extendedprice * discount) FROM lineitem \
                  WHERE shipdate >= 365 AND shipdate < 1825 \
                  AND discount >= 2 AND discount <= 8 AND quantity < 43";

/// TPC-H Q1 shape: weak filter, grouped aggregation over a varchar key.
const Q1: &str = "SELECT returnflag, COUNT(*), SUM(extendedprice), SUM(quantity * discount) \
                  FROM lineitem WHERE shipdate < 2300 \
                  GROUP BY returnflag";

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows: usize = if smoke { 40_000 } else { 2_000_000 };
    let iterations = if smoke { 1 } else { 5 };

    println!(
        "pipeline-fusion reproduction: fused vs discrete scan pipelines, lineitem {rows} rows, {} workers",
        worker_count()
    );
    println!("paper: §IV-B \"operations are fused within a single loop\" (monomorphized compiled pipelines)\n");

    let memory = MemoryConnector::new();
    load_lineitem(&memory, rows);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", Arc::clone(&memory) as Arc<dyn Connector>);
    let cluster = Cluster::start(bench_config(), catalogs).expect("cluster");

    let on = Session::for_catalog("memory");
    assert!(on.pipeline_fusion, "fusion should default on");
    let mut off = Session::for_catalog("memory");
    off.pipeline_fusion = false;

    // `--explain` dumps the annotated plans instead of benchmarking —
    // the raw material for digging into a regression.
    if std::env::args().any(|a| a == "--explain") {
        let probes = ["SELECT COUNT(*) FROM lineitem", Q6, Q1];
        for (label, session) in [("fusion on", &on), ("fusion off", &off)] {
            for sql in probes {
                let out = cluster
                    .execute_with_session(&format!("EXPLAIN ANALYZE {sql}"), session)
                    .expect("explain");
                println!("=== {label}: {sql}\n{}", out.rows()[0][0].as_str().expect("text"));
            }
        }
        return;
    }

    let fused_before = cluster.telemetry().fusion_metrics();
    let q6 = compare(&cluster, "q6 selective filter + global agg", Q6, &on, &off, iterations);
    let fused_after = cluster.telemetry().fusion_metrics();
    assert!(
        fused_after.pipelines > fused_before.pipelines,
        "fusion-on run did not execute any fused pipeline"
    );
    assert!(
        fused_after.scan_rows >= fused_before.scan_rows + rows as u64,
        "fused scan stage did not account the scanned rows"
    );
    let q1 = compare(&cluster, "q1 weak filter + grouped agg", Q1, &on, &off, iterations);

    let q6_speedup = q6.speedup();
    let q1_speedup = q1.speedup();
    println!("\nfused vs discrete (best of {iterations}):");
    println!("  {:<36} {:>12} {:>12} {:>9}", "", "fusion_off", "fusion_on", "speedup");
    for (name, r) in [("q6 wall_ms", &q6), ("q1 wall_ms", &q1)] {
        println!(
            "  {:<36} {:>12} {:>12} {:>8.2}x",
            name,
            ms(r.off_wall),
            ms(r.on_wall),
            r.speedup()
        );
    }
    if !smoke {
        assert!(
            q6_speedup >= 2.0,
            "q6 fused speedup {q6_speedup:.2}x below the 2x target"
        );
        // Parity-or-better: grouped partial aggregation is already
        // vectorized unfused, so the fused win is small — guard against
        // regression with headroom for scheduler noise.
        assert!(
            q1_speedup >= 0.9,
            "q1 fused pipeline slower than discrete ({q1_speedup:.2}x)"
        );
    }

    println!();
    BenchReport::new("fusion")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("lineitem_rows", Json::Int(rows as i64))
        .config("page_rows", Json::Int(PAGE_ROWS as i64))
        .config("iterations", Json::Int(iterations as i64))
        .metric("q6_result_rows", Json::Int(q6.result_rows as i64))
        .metric("q6_wall_ms_off", Json::Num(q6.off_wall.as_secs_f64() * 1e3))
        .metric("q6_wall_ms_on", Json::Num(q6.on_wall.as_secs_f64() * 1e3))
        .metric("q6_speedup", Json::Num(q6_speedup))
        .metric("q1_result_rows", Json::Int(q1.result_rows as i64))
        .metric("q1_wall_ms_off", Json::Num(q1.off_wall.as_secs_f64() * 1e3))
        .metric("q1_wall_ms_on", Json::Num(q1.on_wall.as_secs_f64() * 1e3))
        .metric("q1_speedup", Json::Num(q1_speedup))
        .metric("fused_pipelines", Json::Int(fused_after.pipelines as i64))
        .metric("fused_scan_rows", Json::Int(fused_after.scan_rows as i64))
        .metric("fused_filter_rows", Json::Int(fused_after.filter_rows as i64))
        .write();
    println!("fusion_bench: ok");
}

struct Comparison {
    off_wall: Duration,
    on_wall: Duration,
    result_rows: usize,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.off_wall.as_secs_f64() / self.on_wall.as_secs_f64().max(1e-9)
    }
}

fn compare(
    cluster: &Cluster,
    name: &str,
    sql: &str,
    on: &Session,
    off: &Session,
    iterations: usize,
) -> Comparison {
    // Warm both paths once (metadata cache, compilation).
    let warm_off = run_once(cluster, sql, off);
    let warm_on = run_once(cluster, sql, on);
    assert_eq!(
        warm_off.1, warm_on.1,
        "{name}: fusion changed the query result"
    );
    println!(
        "{name}: results identical, {} rows both ways (zero diffs)",
        warm_on.1.len()
    );
    let mut off_wall = warm_off.0;
    let mut on_wall = warm_on.0;
    for _ in 0..iterations {
        let (w, rows) = run_once(cluster, sql, off);
        assert_eq!(rows, warm_on.1, "{name}: fusion-off result drifted");
        off_wall = off_wall.min(w);
        let (w, rows) = run_once(cluster, sql, on);
        assert_eq!(rows, warm_on.1, "{name}: fusion-on result drifted");
        on_wall = on_wall.min(w);
    }
    Comparison {
        off_wall,
        on_wall,
        result_rows: warm_on.1.len(),
    }
}

/// Run once; rows come back sorted and rendered so the differential
/// check is an exact byte comparison.
fn run_once(cluster: &Cluster, sql: &str, session: &Session) -> (Duration, Vec<String>) {
    let out = cluster.execute_with_session(sql, session).expect("query");
    let mut rows: Vec<String> = out.rows().iter().map(|r| format!("{r:?}")).collect();
    rows.sort_unstable();
    (out.wall_time, rows)
}

/// Lineitem with exact-integer measures: prices in cents, discounts in
/// basis points, dates as day numbers — the warehouse-typical encoding
/// that keeps aggregate results bit-deterministic for the diff.
fn load_lineitem(memory: &MemoryConnector, rows: usize) {
    let schema = Schema::of(&[
        ("shipdate", DataType::Bigint),
        ("quantity", DataType::Bigint),
        ("discount", DataType::Bigint),
        ("extendedprice", DataType::Bigint),
        ("returnflag", DataType::Varchar),
    ]);
    let mut rng = StdRng::seed_from_u64(0x5EED_F05E);
    let mut pages = Vec::with_capacity(rows.div_ceil(PAGE_ROWS));
    let mut chunk: Vec<Vec<Value>> = Vec::with_capacity(PAGE_ROWS);
    for _ in 0..rows {
        let flag = ["A", "N", "R"][rng.gen_range(0..3)];
        chunk.push(vec![
            Value::Bigint(rng.gen_range(0..2557)),
            Value::Bigint(rng.gen_range(1..51)),
            Value::Bigint(rng.gen_range(0..11)),
            Value::Bigint(rng.gen_range(100_00..10_000_00)),
            Value::varchar(flag),
        ]);
        if chunk.len() == PAGE_ROWS {
            pages.push(Page::from_rows(&schema, &chunk));
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        pages.push(Page::from_rows(&schema, &chunk));
    }
    memory.load_table("lineitem", schema, pages);
}
