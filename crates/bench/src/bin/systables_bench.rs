//! `system.runtime` self-inspection benchmark: what SQL-on-itself costs.
//!
//! The §VII system catalog serves live cluster state by snapshotting
//! telemetry/history/worker structures at split-enumeration time and
//! streaming the rows out as engine pages. This run measures that
//! snapshot-to-page path end to end:
//!
//! 1. **Populate** — a workload of group-by/filter queries fills the
//!    query-history ring with per-task operator summaries.
//! 2. **Scan cost** — `SELECT COUNT(*)` over `runtime.queries` and the
//!    much wider `runtime.operators` (the full snapshot is materialized
//!    per scan regardless of projection), best-of-N wall time and
//!    effective rows/sec.
//! 3. **Aggregation + self-join** — a GROUP BY over operators and a
//!    queries ⋈ operators join, i.e. the dashboard-style queries the
//!    tables exist for.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin systables_bench [-- --smoke]
//! ```
//!
//! Emits `BENCH_systables.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_bench::{bench_config, ms};
use presto_cluster::Cluster;
use presto_common::json::Json;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn load_orders(mem: &MemoryConnector, rows: usize) {
    let schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Bigint),
    ]);
    let data: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| vec![Value::Bigint(i), Value::Bigint(i % 100), Value::Bigint(i % 500)])
        .collect();
    let pages: Vec<presto_page::Page> = data
        .chunks(4096)
        .map(|c| presto_page::Page::from_rows(&schema, c))
        .collect();
    mem.load_table("orders", schema, pages);
    mem.analyze("orders").expect("analyze");
}

/// Best-of-N wall time for one SQL statement; returns (wall, first row).
fn best_of(cluster: &Cluster, session: &Session, sql: &str, n: usize) -> (Duration, Vec<Value>) {
    let mut best = Duration::MAX;
    let mut row = Vec::new();
    for _ in 0..n {
        let t = Instant::now();
        let out = cluster.execute_with_session(sql, session).expect("query");
        best = best.min(t.elapsed());
        row = out.rows().into_iter().next().unwrap_or_default();
    }
    (best, row)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let table_rows: usize = if smoke { 10_000 } else { 200_000 };
    let workload: usize = if smoke { 12 } else { 160 };
    let iters: usize = if smoke { 3 } else { 15 };

    println!(
        "system.runtime scan cost: snapshot-to-page path over {workload} retained queries"
    );
    println!("paper: §VII \"SQL on itself\" — runtime state as ordinary tables\n");

    let mem = MemoryConnector::new();
    load_orders(&mem, table_rows);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", Arc::clone(&mem) as Arc<dyn Connector>);
    let cluster = Cluster::start(bench_config(), catalogs).expect("cluster");
    let session = Session::for_catalog("memory");

    // Populate: alternating shapes so history holds both fused single-stage
    // pipelines and multi-stage grouped aggregations.
    for i in 0..workload {
        let sql = if i % 2 == 0 {
            format!("SELECT custkey, COUNT(*) FROM orders WHERE custkey < {} GROUP BY custkey", 20 + i % 60)
        } else {
            format!("SELECT SUM(totalprice) FROM orders WHERE custkey < {}", 10 + i % 80)
        };
        cluster.execute_with_session(&sql, &session).expect("workload");
    }
    let history = cluster.query_history();
    assert_eq!(history.recorded(), workload as u64, "history missed queries");
    let retained_ops: u64 = history
        .snapshot()
        .iter()
        .flat_map(|e| &e.tasks)
        .map(|t| t.operators.len() as u64)
        .sum();
    assert!(retained_ops > 0, "workload produced no operator summaries");

    // Scan cost: COUNT(*) forces a full snapshot + page stream of the
    // table, and the count itself cross-checks the history rollup.
    let (q_wall, q_row) = best_of(&cluster, &session, "SELECT COUNT(*) FROM system.runtime.queries", iters);
    let queries_rows = q_row[0].as_i64().expect("count");
    assert!(queries_rows >= workload as i64, "queries table lost workload rows");
    let (o_wall, o_row) = best_of(&cluster, &session, "SELECT COUNT(*) FROM system.runtime.operators", iters);
    let operators_rows = o_row[0].as_i64().expect("count");
    assert!(
        operators_rows >= retained_ops as i64,
        "operators table ({operators_rows}) lost retained summaries ({retained_ops})"
    );
    let ops_per_sec = operators_rows as f64 / o_wall.as_secs_f64().max(1e-9);
    println!(
        "system-table scan: queries {queries_rows} rows in {}, operators {operators_rows} rows in {} ({:.2} Mrows/s)",
        ms(q_wall), ms(o_wall), ops_per_sec / 1e6
    );

    // Dashboard shapes: aggregation over operators; queries ⋈ operators.
    let (agg_wall, _) = best_of(
        &cluster,
        &session,
        "SELECT operator, COUNT(*), SUM(output_rows) FROM system.runtime.operators GROUP BY operator",
        iters,
    );
    let (join_wall, join_row) = best_of(
        &cluster,
        &session,
        "SELECT COUNT(*) FROM system.runtime.queries q \
         JOIN system.runtime.operators o ON q.query_id = o.query_id \
         WHERE q.state = 'finished'",
        iters,
    );
    assert!(
        join_row[0].as_i64().expect("count") >= retained_ops as i64,
        "system-⋈-system join dropped operator rows"
    );
    println!(
        "system-⋈-system join: {} per run, operator GROUP BY {} per run",
        ms(join_wall),
        ms(agg_wall)
    );

    BenchReport::new("systables")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("table_rows", Json::Int(table_rows as i64))
        .config("workload_queries", Json::Int(workload as i64))
        .config("history_capacity", Json::Int(cluster.config().query_history_capacity as i64))
        .config("iterations", Json::Int(iters as i64))
        .metric("queries_rows", Json::Int(queries_rows))
        .metric("operators_rows", Json::Int(operators_rows))
        .metric("queries_scan_ms", Json::Num(q_wall.as_secs_f64() * 1e3))
        .metric("operators_scan_ms", Json::Num(o_wall.as_secs_f64() * 1e3))
        .metric("operators_mrows_per_sec", Json::Num(ops_per_sec / 1e6))
        .metric("operator_group_by_ms", Json::Num(agg_wall.as_secs_f64() * 1e3))
        .metric("self_join_ms", Json::Num(join_wall.as_secs_f64() * 1e3))
        .write();
    println!("systables_bench: ok");
}
