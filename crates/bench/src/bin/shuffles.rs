//! §IV-C3 / Fig. 3: shuffle elision via plan properties.
//!
//! The paper's Fig. 3 shows a naive plan needing four shuffles; data-layout
//! properties collapse it ("this optimization applied to the plan in
//! Figure 3 causes it to collapse to a single data processing stage"). We
//! plan the A/B-testing join+aggregate over (a) randomly-distributed
//! tables and (b) Raptor tables bucketed on the join key, and report
//! shuffle counts and runtimes.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin shuffles
//! ```

use presto_bench::{load_abtest_tables, scale_factor, BenchCluster};
use presto_common::Session;
use presto_connector::ConnectorMetadata;
use presto_sql::parse_statement;
use std::time::Duration;

fn main() {
    let scale = scale_factor();
    println!("§IV-C3 reproduction: shuffle elision from data-layout properties (SF {scale})\n");
    let fixture = BenchCluster::new("shuffles", scale);
    // Unbucketed copies of the A/B tables in the memory catalog.
    {
        use presto_common::{DataType, Schema};
        let schema = Schema::of(&[
            ("uid", DataType::Bigint),
            ("test_id", DataType::Bigint),
            ("v", DataType::Double),
        ]);
        let _ = load_abtest_tables; // bucketed versions already in raptor
        for table in ["exposure", "conversion"] {
            // Re-read from raptor via the engine and materialize in memory.
            fixture.memory.create_table(table, &schema).unwrap();
            let out = fixture
                .cluster
                .execute_with_session(
                    &format!("INSERT INTO memory.{table} SELECT * FROM raptor.{table}"),
                    &Session::for_catalog("memory"),
                )
                .expect("copy");
            let _ = out;
            fixture.memory.analyze(table).unwrap();
        }
    }

    let sql = "SELECT e.uid, SUM(e.v), SUM(c.v) \
               FROM exposure e JOIN conversion c ON e.uid = c.uid \
               GROUP BY e.uid";
    for (label, catalog) in [
        ("random layout (memory)", "memory"),
        ("bucketed on uid (raptor)", "raptor"),
    ] {
        let session = Session::for_catalog(catalog);
        let stmt = parse_statement(sql).unwrap();
        let plan =
            presto_planner::plan_statement(&stmt, &session, fixture.cluster.catalogs()).unwrap();
        // Time it, best of 3.
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let out = fixture
                .cluster
                .execute_with_session(sql, &session)
                .expect("run");
            best = best.min(out.wall_time);
        }
        println!(
            "{label:<28} shuffles={:<2} fragments={:<2} runtime={:.1?}",
            plan.shuffle_count(),
            plan.fragments.len(),
            best
        );
    }
    println!("\nexpected shape (paper, Fig. 3): the co-partitioned layout collapses the");
    println!("join+aggregation into a single source stage — only the final output gather");
    println!("remains — and runs faster than the shuffled plan.");
}
