//! Figure 8: "Cluster avg. CPU utilization and concurrency over a 4-hour
//! period".
//!
//! The paper shows an Interactive Analytics cluster holding ~90% worker
//! CPU utilization while demand swings from 44 concurrent queries down to
//! 8 and back, with new cheap queries getting CPU within milliseconds
//! (§IV-F1's multi-level feedback queue). We compress the 4-hour trace
//! into a configurable window (default 60 s) and replay the same demand
//! shape, sampling utilization and concurrency every second.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin fig8
//! ```

use presto_bench::{scale_factor, BenchCluster};
use presto_workload::arrivals::DemandCurve;
use presto_workload::usecases::{UseCase, WorkloadGenerator};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

fn main() {
    let scale = scale_factor();
    let window: u64 = std::env::var("PRESTO_FIG8_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let peak: usize = std::env::var("PRESTO_FIG8_PEAK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let trough = (peak / 5).max(2);
    println!(
        "Figure 8 reproduction: CPU utilization vs concurrency over a {window}s window \
         (demand {peak} -> {trough} -> {peak}; paper: 44 -> 8 over 4h, ~90% CPU)\n"
    );
    let fixture = BenchCluster::new("fig8", scale);
    let threads = fixture.cluster.config().workers * fixture.cluster.config().threads_per_worker;
    let curve = DemandCurve {
        peak,
        trough,
        period: Duration::from_secs(window),
    };
    let mut generator = WorkloadGenerator::new(UseCase::Interactive, 4242);
    let session = UseCase::Interactive.session();

    let start = Instant::now();
    let mut handles: VecDeque<std::thread::JoinHandle<_>> = VecDeque::new();
    let mut last_busy: Duration = fixture.cluster.telemetry().worker_busy().iter().sum();
    let mut last_sample = Instant::now();
    println!(
        "{:>6} {:>18} {:>14} {:>12}",
        "t(s)", "target_concurrency", "running", "cpu_util%"
    );
    let mut utils = Vec::new();
    while start.elapsed() < Duration::from_secs(window) {
        // Reap finished queries.
        while let Some(h) = handles.front() {
            if h.is_finished() {
                let _ = handles.pop_front().unwrap().join();
            } else {
                break;
            }
        }
        // Top up to the demand target.
        let target = curve.target_at(start.elapsed());
        while handles.len() < target {
            handles.push_back(
                fixture
                    .cluster
                    .submit(generator.next_query(), session.clone()),
            );
        }
        // Sample once per second.
        if last_sample.elapsed() >= Duration::from_secs(1) {
            let busy: Duration = fixture.cluster.telemetry().worker_busy().iter().sum();
            let wall = last_sample.elapsed();
            let util = (busy - last_busy).as_secs_f64() / (wall.as_secs_f64() * threads as f64);
            utils.push(util);
            println!(
                "{:>6} {:>18} {:>14} {:>12.0}",
                start.elapsed().as_secs(),
                target,
                fixture.cluster.telemetry().running_queries(),
                util * 100.0
            );
            last_busy = busy;
            last_sample = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for h in handles {
        let _ = h.join();
    }
    let avg = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
    let peak_avg = {
        let edge: Vec<f64> = utils[..utils.len() / 4]
            .iter()
            .chain(&utils[utils.len() * 3 / 4..])
            .copied()
            .collect();
        edge.iter().sum::<f64>() / edge.len().max(1) as f64
    };
    let trough_avg = {
        let mid = &utils[utils.len() / 3..utils.len() * 2 / 3];
        mid.iter().sum::<f64>() / mid.len().max(1) as f64
    };
    println!("\naverage CPU utilization:          {:.0}%", avg * 100.0);
    println!("utilization at demand peak:       {:.0}%", peak_avg * 100.0);
    println!(
        "utilization during demand trough: {:.0}%",
        trough_avg * 100.0
    );
    println!(
        "concurrency dropped {:.0}x peak->trough; utilization only {:.2}x",
        peak as f64 / trough as f64,
        peak_avg / trough_avg.max(1e-9)
    );
    println!(
        "queries completed: {} (failed {})",
        fixture.cluster.telemetry().finished_queries(),
        fixture.cluster.telemetry().failed_queries()
    );
    println!("\nexpected shape (paper): utilization stays high (~90%) even as demand");
    println!("drops to the trough, because the MLFQ keeps workers saturated.");
}
