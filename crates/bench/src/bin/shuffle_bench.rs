//! §IV-E2 shuffle data-plane benchmark: the coalescing partitioned-output
//! writer and the concurrent non-blocking exchange fetcher against faithful
//! replicas of the previous paths.
//!
//! Scenario 1 (sink): hash-partitioned output across consumer counts
//! {4, 16, 64}. The baseline replica shatters every input page into up to
//! `consumers` fragments and serializes each eagerly (the old
//! `OutputRouting::Hash` arm); the new path is the [`PagePartitioner`]
//! scatter-and-coalesce. Expected shape: ≥ 2× throughput at 64 consumers
//! and mean delivered page rows ≥ half the target page size.
//!
//! Scenario 2 (fetch): N pre-filled sources drained by K driver threads at
//! injected latencies {0, 1ms}. The baseline replica is the old
//! sleep-under-the-shared-mutex client (every driver convoys behind one
//! lock that holds the simulated round trip); the new path issues
//! per-request deadlines and overlaps them. Expected shape: wall-clock
//! sub-linear in the source count once latency dominates.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin shuffle_bench [-- --smoke]
//! ```
//!
//! Emits `BENCH_shuffle.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_common::json::Json;
use presto_exec::partitioned_output::PagePartitioner;
use presto_page::hash::hash_columns;
use presto_page::{decode_framed_page, Block, LongBlock, Page};
use presto_shuffle::{ExchangeClient, OutputBuffer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic two-column (key, value) pages.
fn make_input(total_rows: usize, rows_per_page: usize, cardinality: usize) -> Vec<Page> {
    let mut pages = Vec::new();
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut produced = 0usize;
    while produced < total_rows {
        let n = rows_per_page.min(total_rows - produced);
        let mut keys = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            keys.push((state % cardinality as u64) as i64);
            values.push((state >> 32) as i64);
        }
        pages.push(Page::new(vec![
            Block::from(LongBlock::from_values(keys)),
            Block::from(LongBlock::from_values(values)),
        ]));
        produced += n;
    }
    pages
}

// --- Scenario 1: partitioned output sink -------------------------------

/// Faithful replica of the pre-coalescing hash route: one filter + eager
/// serialize per (page, destination) pair.
fn baseline_sink(pages: &[Page], buffer: &OutputBuffer, consumers: usize) {
    for page in pages {
        let hashes = hash_columns(page, &[0]);
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); consumers];
        for (i, h) in hashes.iter().enumerate() {
            positions[(h % consumers as u64) as usize].push(i as u32);
        }
        for (p, pos) in positions.iter().enumerate() {
            if !pos.is_empty() {
                buffer.enqueue(p, &page.filter(pos));
            }
        }
    }
    buffer.set_no_more_pages();
}

/// The new path: scatter into per-partition accumulators, flush at target.
fn coalescing_sink(pages: &[Page], buffer: &OutputBuffer, consumers: usize, target_rows: usize) {
    let mut partitioner = PagePartitioner::new(vec![0], consumers, target_rows, 1 << 20);
    for page in pages {
        for (p, out) in partitioner.add_page(page.clone()) {
            buffer.enqueue(p, &out);
        }
    }
    for (p, out) in partitioner.finish() {
        buffer.enqueue(p, &out);
    }
    buffer.set_no_more_pages();
}

/// Drain every partition through the token protocol, decoding frames.
fn drain(buffer: &OutputBuffer, consumers: usize) -> (usize, usize, u64) {
    let (mut pages, mut rows, mut key_sum) = (0usize, 0usize, 0u64);
    for p in 0..consumers {
        let mut token = 0u64;
        loop {
            let r = buffer.poll(p, token, 1 << 20);
            token = r.next_token;
            for frame in &r.pages {
                let page = decode_framed_page(frame).expect("valid frame");
                pages += 1;
                rows += page.row_count();
                for i in 0..page.row_count() {
                    key_sum = key_sum.wrapping_add(page.block(0).i64_at(i) as u64);
                }
            }
            if r.finished {
                break;
            }
        }
    }
    (pages, rows, key_sum)
}

struct SinkRun {
    elapsed: Duration,
    delivered_pages: usize,
    delivered_rows: usize,
    key_sum: u64,
    wire_bytes: u64,
}

fn run_sink(
    pages: &[Page],
    consumers: usize,
    target_rows: usize,
    compression_min: usize,
    coalesce: bool,
) -> SinkRun {
    let buffer = OutputBuffer::with_compression(consumers, usize::MAX, compression_min);
    let start = Instant::now();
    if coalesce {
        coalescing_sink(pages, &buffer, consumers, target_rows);
    } else {
        baseline_sink(pages, &buffer, consumers);
    }
    let elapsed = start.elapsed();
    let (wire, _logical) = buffer.byte_totals();
    let (delivered_pages, delivered_rows, key_sum) = drain(&buffer, consumers);
    SinkRun {
        elapsed,
        delivered_pages,
        delivered_rows,
        key_sum,
        wire_bytes: wire,
    }
}

// --- Scenario 2: exchange fetch ----------------------------------------

/// Faithful replica of the old exchange client: one shared mutex, the
/// simulated round-trip slept *while holding it*, pages decoded under it,
/// token advanced before the batch fully decodes.
struct BaselineFetcher {
    sources: Vec<(Arc<OutputBuffer>, u64, bool)>,
    cursor: usize,
    latency: Duration,
}

impl BaselineFetcher {
    fn poll_progress(&mut self) -> Vec<Page> {
        let n = self.sources.len();
        let mut out = Vec::new();
        for _ in 0..n {
            let idx = self.cursor % n;
            self.cursor += 1;
            let (buffer, token, finished) = &mut self.sources[idx];
            if *finished {
                continue;
            }
            if !self.latency.is_zero() {
                std::thread::sleep(self.latency); // the convoy
            }
            let r = buffer.poll(0, *token, 1 << 20);
            *token = r.next_token;
            *finished = r.finished;
            for frame in &r.pages {
                out.push(decode_framed_page(frame).expect("valid frame"));
            }
        }
        out
    }

    fn is_finished(&self) -> bool {
        self.sources.iter().all(|(_, _, f)| *f)
    }
}

fn fill_sources(n_sources: usize, pages_per_source: usize, rows_per_page: usize) -> Vec<Arc<OutputBuffer>> {
    (0..n_sources)
        .map(|s| {
            let buffer = OutputBuffer::new(1, usize::MAX);
            for page in make_input(pages_per_source * rows_per_page, rows_per_page, 1024 + s) {
                buffer.enqueue(0, &page);
            }
            buffer.set_no_more_pages();
            buffer
        })
        .collect()
}

fn run_baseline_fetch(sources: Vec<Arc<OutputBuffer>>, drivers: usize, latency: Duration) -> (usize, Duration) {
    let fetcher = Arc::new(parking_lot_mutex(BaselineFetcher {
        sources: sources.into_iter().map(|b| (b, 0, false)).collect(),
        cursor: 0,
        latency,
    }));
    let start = Instant::now();
    let rows: usize = std::thread::scope(|scope| {
        (0..drivers)
            .map(|_| {
                let fetcher = Arc::clone(&fetcher);
                scope.spawn(move || {
                    let mut rows = 0usize;
                    loop {
                        let mut guard = fetcher.lock();
                        if guard.is_finished() {
                            break;
                        }
                        let pages = guard.poll_progress();
                        drop(guard);
                        rows += pages.iter().map(Page::row_count).sum::<usize>();
                    }
                    rows
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("driver"))
            .sum()
    });
    (rows, start.elapsed())
}

fn run_new_fetch(sources: Vec<Arc<OutputBuffer>>, drivers: usize, latency: Duration) -> (usize, Duration) {
    let client = Arc::new(ExchangeClient::with_config(64 << 20, latency, 16, 3));
    for source in sources {
        client.add_source(source, 0);
    }
    let start = Instant::now();
    let rows: usize = std::thread::scope(|scope| {
        (0..drivers)
            .map(|_| {
                let client = Arc::clone(&client);
                scope.spawn(move || {
                    let mut rows = 0usize;
                    while !client.is_finished() {
                        let progressed = client.poll_progress().expect("poll");
                        while let Some(page) = client.next_page() {
                            rows += page.row_count();
                        }
                        if !progressed {
                            // Virtual requests in flight: yield briefly, as
                            // the worker's blocked-driver backoff would.
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                    rows
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("driver"))
            .sum()
    });
    (rows, start.elapsed())
}

fn parking_lot_mutex<T>(value: T) -> parking_lot::Mutex<T> {
    parking_lot::Mutex::new(value)
}

fn mrps(rows: usize, elapsed: Duration) -> String {
    format!("{:7.2} Mrows/s", rows as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fetch_only = std::env::args().any(|a| a == "--fetch-only");
    // Smoke mode runs the same paths at trivial sizes so the suite can be
    // exercised from `cargo test -q` (tier-1) without release-build timing.
    let (total_rows, rows_per_page, target_rows, fetch_pages, reps) = if smoke {
        // Enough rows that even 64 consumers fill target-sized pages.
        (160_000, 128, 1024, 8, 1)
    } else {
        (2_000_000, 256, 1024, 128, 3)
    };
    println!(
        "shuffle_bench: {total_rows} rows in {rows_per_page}-row pages, target {target_rows} \
         rows/page{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut sink_report = Vec::new();
    let mut compression_report = Json::Null;
    let mut fetch_report = Vec::new();

    println!("\nhash-partitioned sink (shatter baseline vs coalescing writer):");
    let input = make_input(total_rows, rows_per_page, 100_000);
    for consumers in [4usize, 16, 64] {
        if fetch_only {
            break;
        }
        let mut base_best: Option<SinkRun> = None;
        let mut new_best: Option<SinkRun> = None;
        for _ in 0..reps {
            let b = run_sink(&input, consumers, target_rows, usize::MAX, false);
            let n = run_sink(&input, consumers, target_rows, usize::MAX, true);
            assert_eq!(b.delivered_rows, n.delivered_rows, "row counts must agree");
            assert_eq!(b.key_sum, n.key_sum, "key checksums must agree");
            assert_eq!(n.delivered_rows, total_rows, "no rows lost");
            if base_best.as_ref().is_none_or(|x| b.elapsed < x.elapsed) {
                base_best = Some(b);
            }
            if new_best.as_ref().is_none_or(|x| n.elapsed < x.elapsed) {
                new_best = Some(n);
            }
        }
        let (b, n) = (base_best.expect("baseline"), new_best.expect("new"));
        let mean_rows = n.delivered_rows / n.delivered_pages.max(1);
        let base_mean = b.delivered_rows / b.delivered_pages.max(1);
        println!(
            "  {consumers:>3} consumers  baseline {} ({:>6} pages, mean {:>5} rows)  \
             coalescing {} ({:>5} pages, mean {:>5} rows)  speedup {:4.2}x",
            mrps(b.delivered_rows, b.elapsed),
            b.delivered_pages,
            base_mean,
            mrps(n.delivered_rows, n.elapsed),
            n.delivered_pages,
            mean_rows,
            b.elapsed.as_secs_f64() / n.elapsed.as_secs_f64().max(1e-9),
        );
        sink_report.push(Json::obj([
            ("consumers", Json::Int(consumers as i64)),
            ("baseline_ms", Json::Num(b.elapsed.as_secs_f64() * 1e3)),
            ("coalescing_ms", Json::Num(n.elapsed.as_secs_f64() * 1e3)),
            (
                "speedup",
                Json::Num(b.elapsed.as_secs_f64() / n.elapsed.as_secs_f64().max(1e-9)),
            ),
            ("mean_page_rows", Json::Int(mean_rows as i64)),
            ("baseline_mean_page_rows", Json::Int(base_mean as i64)),
        ]));
        if smoke {
            assert!(
                mean_rows >= target_rows / 2,
                "coalescing must deliver ≥ target/2 mean page rows, got {mean_rows}"
            );
        }
    }

    println!("\nwire compression (coalescing writer, 16 consumers):");
    if !fetch_only {
        let raw = run_sink(&input, 16, target_rows, usize::MAX, true);
        let compressed = run_sink(&input, 16, target_rows, 8 << 10, true);
        assert_eq!(raw.key_sum, compressed.key_sum, "compression must be lossless");
        println!(
            "  raw {:>11} wire bytes  lz {:>11} wire bytes  ratio {:4.2}x  ({} vs {})",
            raw.wire_bytes,
            compressed.wire_bytes,
            raw.wire_bytes as f64 / compressed.wire_bytes.max(1) as f64,
            mrps(raw.delivered_rows, raw.elapsed),
            mrps(compressed.delivered_rows, compressed.elapsed),
        );
        compression_report = Json::obj([
            ("raw_wire_bytes", Json::Int(raw.wire_bytes as i64)),
            ("lz_wire_bytes", Json::Int(compressed.wire_bytes as i64)),
            (
                "ratio",
                Json::Num(raw.wire_bytes as f64 / compressed.wire_bytes.max(1) as f64),
            ),
        ]);
    }

    println!("\nexchange fetch (sleep-under-lock baseline vs concurrent fetcher):");
    let drivers = 4;
    for (n_sources, latency) in [
        (8usize, Duration::ZERO),
        (8, Duration::from_millis(1)),
        (16, Duration::from_millis(1)),
    ] {
        if smoke && latency > Duration::ZERO && n_sources > 8 {
            continue; // keep smoke wall-clock tiny
        }
        let expect_rows = n_sources * fetch_pages * rows_per_page;
        let (mut base_elapsed, mut new_elapsed) = (Duration::MAX, Duration::MAX);
        for _ in 0..reps {
            let (base_rows, b) = run_baseline_fetch(
                fill_sources(n_sources, fetch_pages, rows_per_page),
                drivers,
                latency,
            );
            let (new_rows, n) =
                run_new_fetch(fill_sources(n_sources, fetch_pages, rows_per_page), drivers, latency);
            assert_eq!(base_rows, expect_rows, "baseline must deliver all rows");
            assert_eq!(new_rows, expect_rows, "fetcher must deliver all rows");
            base_elapsed = base_elapsed.min(b);
            new_elapsed = new_elapsed.min(n);
        }
        println!(
            "  {n_sources:>2} sources @ {:>5.1?} latency, {drivers} drivers  \
             baseline {:>9.2?}  concurrent {:>9.2?}  speedup {:4.2}x",
            latency,
            base_elapsed,
            new_elapsed,
            base_elapsed.as_secs_f64() / new_elapsed.as_secs_f64().max(1e-9),
        );
        fetch_report.push(Json::obj([
            ("sources", Json::Int(n_sources as i64)),
            ("latency_ms", Json::Num(latency.as_secs_f64() * 1e3)),
            ("drivers", Json::Int(drivers as i64)),
            ("baseline_ms", Json::Num(base_elapsed.as_secs_f64() * 1e3)),
            ("concurrent_ms", Json::Num(new_elapsed.as_secs_f64() * 1e3)),
            (
                "speedup",
                Json::Num(base_elapsed.as_secs_f64() / new_elapsed.as_secs_f64().max(1e-9)),
            ),
        ]));
    }
    println!("\nexpected shape: coalescing ≥ 2x the shatter baseline at 64 consumers with");
    println!("near-target mean page rows; with 1ms injected latency the concurrent fetcher's");
    println!("wall-clock stays sub-linear in source count (overlapped virtual round trips).");

    BenchReport::new("shuffle")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("total_rows", Json::Int(total_rows as i64))
        .config("rows_per_page", Json::Int(rows_per_page as i64))
        .config("target_rows", Json::Int(target_rows as i64))
        .metric("sink", Json::Arr(sink_report))
        .metric("compression", compression_report)
        .metric("fetch", Json::Arr(fetch_report))
        .write();
}
