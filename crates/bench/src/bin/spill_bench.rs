//! §IV-F2 graceful-degradation benchmark: a hash join + aggregation whose
//! build side exceeds the task memory budget must complete by spilling —
//! with results byte-identical to an unconstrained run — instead of being
//! killed.
//!
//! Two clusters run the same query over the same data:
//!
//! - **constrained**: 8 KB general + 8 KB reserved pool, spill enabled.
//!   Memory arbitration requests revocation, operators spill run files,
//!   and the query completes.
//! - **reference**: default pools, no spill.
//!
//! The benchmark asserts the sorted result sets are identical, that the
//! constrained run actually spilled (`spilled_bytes > 0`), and that no
//! run file outlives the query. Timings and spill totals are recorded so
//! the degradation cost is visible across commits.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin spill_bench [-- --smoke]
//! ```
//!
//! Emits `BENCH_spill.json` in the working directory.
#![deny(clippy::unwrap_used)]

use presto_bench::report::BenchReport;
use presto_cluster::{Cluster, ClusterConfig};
use presto_common::json::Json;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Sizing {
    orders_rows: i64,
    lineitem_rows: i64,
}

fn sizing(smoke: bool) -> Sizing {
    if smoke {
        Sizing {
            orders_rows: 1_000,
            lineitem_rows: 5_000,
        }
    } else {
        Sizing {
            orders_rows: 5_000,
            lineitem_rows: 40_000,
        }
    }
}

/// orders ⋈ lineitem with a wide GROUP BY: the join build side and the
/// aggregation table both dwarf an 8 KB pool, so both operators must
/// degrade through the spill path.
const QUERY: &str = "SELECT o.orderkey, o.custkey, COUNT(*), SUM(l.tax), SUM(l.discount) \
                     FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey \
                     GROUP BY o.orderkey, o.custkey";

fn catalogs(sz: &Sizing) -> CatalogManager {
    let mem = MemoryConnector::new();
    let orders = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
        ("totalprice", DataType::Double),
    ]);
    let rows: Vec<Vec<Value>> = (0..sz.orders_rows)
        .map(|i| {
            vec![
                Value::Bigint(i),
                Value::Bigint(i % 100),
                Value::Double(i as f64 * 1.5), // dyadic, exact in f64
            ]
        })
        .collect();
    let pages: Vec<presto_page::Page> = rows
        .chunks(200)
        .map(|chunk| presto_page::Page::from_rows(&orders, chunk))
        .collect();
    mem.load_table("orders", orders, pages);

    let lineitem = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("tax", DataType::Double),
        ("discount", DataType::Double),
    ]);
    let rows: Vec<Vec<Value>> = (0..sz.lineitem_rows)
        .map(|i| {
            // Dyadic values: every partial sum is exact in f64, so the
            // result is independent of accumulation order and the
            // byte-identical assertion is meaningful (spilling reorders
            // additions; with inexact addends both runs would be "right"
            // yet differ in the last ulp).
            vec![
                Value::Bigint(i % sz.orders_rows),
                Value::Double((i % 7) as f64 * 0.25),
                Value::Double((i % 11) as f64 * 0.125),
            ]
        })
        .collect();
    let pages: Vec<presto_page::Page> = rows
        .chunks(200)
        .map(|chunk| presto_page::Page::from_rows(&lineitem, chunk))
        .collect();
    mem.load_table("lineitem", lineitem, pages);
    mem.analyze("orders").expect("analyze orders");
    mem.analyze("lineitem").expect("analyze lineitem");

    let connector: Arc<dyn Connector> = mem;
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", connector);
    catalogs
}

fn spill_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("presto-spill-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spill_files(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir).map_or(0, |rd| rd.count())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sz = sizing(smoke);
    println!(
        "spill_bench mode={} orders={} lineitem={}",
        if smoke { "smoke" } else { "full" },
        sz.orders_rows,
        sz.lineitem_rows
    );

    // Reference: unconstrained pools, no spill.
    let reference = Cluster::start(ClusterConfig::test(), catalogs(&sz)).expect("cluster");
    let started = Instant::now();
    let expected = reference.execute(QUERY).expect("reference query");
    let reference_wall = started.elapsed();

    // Constrained: pools far below the build-side footprint; the query
    // can only finish by revoking memory and spilling.
    let dir = spill_dir();
    let config = ClusterConfig {
        node_memory_bytes: 8 << 10,
        reserved_pool_bytes: 8 << 10,
        ..ClusterConfig::test()
    };
    let constrained = Cluster::start(config, catalogs(&sz)).expect("cluster");
    let session = Session {
        spill_enabled: true,
        spill_dir: Some(dir.clone()),
        spill_max_bytes: 256 << 20,
        ..Session::default()
    };
    let started = Instant::now();
    let actual = constrained
        .execute_with_session(QUERY, &session)
        .expect("constrained query must degrade gracefully, not die");
    let constrained_wall = started.elapsed();

    // The acceptance bar: byte-identical results, real spill activity,
    // zero residue on disk.
    let mut expected_rows = expected.rows();
    let mut actual_rows = actual.rows();
    expected_rows.sort();
    actual_rows.sort();
    assert_eq!(
        format!("{expected_rows:?}"),
        format!("{actual_rows:?}"),
        "memory-limited run must be byte-identical to the unconstrained run"
    );
    let snap = constrained.metrics_snapshot();
    assert!(snap.spill.spilled_bytes > 0, "constrained run never spilled");
    assert!(snap.spill.spill_events > 0);
    assert!(snap.spill.queries_spilled >= 1);
    let leftover = spill_files(&dir);
    assert_eq!(leftover, 0, "{leftover} spill files leaked in {dir:?}");
    std::fs::remove_dir_all(&dir).ok();
    let revocations: i64 = snap
        .workers
        .iter()
        .map(|w| w.memory.revocation_requests)
        .sum();

    println!(
        "rows={} identical=true spilled_bytes={} spill_events={} revocations={}",
        actual_rows.len(),
        snap.spill.spilled_bytes,
        snap.spill.spill_events,
        revocations
    );
    println!(
        "reference={reference_wall:>8.2?} constrained={constrained_wall:>8.2?} slowdown={:.2}x",
        constrained_wall.as_secs_f64() / reference_wall.as_secs_f64().max(1e-9)
    );

    BenchReport::new("spill")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("orders_rows", Json::Int(sz.orders_rows))
        .config("lineitem_rows", Json::Int(sz.lineitem_rows))
        .config("node_memory_bytes", Json::Int(8 << 10))
        .metric("rows", Json::Int(actual_rows.len() as i64))
        .metric("identical", Json::Bool(true))
        .metric("spilled_bytes", Json::Int(snap.spill.spilled_bytes as i64))
        .metric("spill_events", Json::Int(snap.spill.spill_events as i64))
        .metric("revocation_requests", Json::Int(revocations))
        .metric(
            "reference_ms",
            Json::Num(reference_wall.as_secs_f64() * 1e3),
        )
        .metric(
            "constrained_ms",
            Json::Num(constrained_wall.as_secs_f64() * 1e3),
        )
        .metric(
            "slowdown",
            Json::Num(constrained_wall.as_secs_f64() / reference_wall.as_secs_f64().max(1e-9)),
        )
        .write();
    println!("spill_bench: ok");
}
