//! §IV-G fault-injection benchmark: the failure detector, clean teardown,
//! and coordinator retry under a seeded chaos schedule.
//!
//! Three scenarios, all driven from one seed (`--seed N` or the
//! `PRESTO_CHAOS_SEED` environment variable; default 42):
//!
//! 1. **Detection**: hang a worker's scheduler mid-query and measure the
//!    latency until the liveness detector declares it lost. The query must
//!    terminate within `liveness_timeout + grace`.
//! 2. **Teardown / retry**: crash a worker mid-query, repeatedly. Measures
//!    teardown latency (crash → every task retired and every pool byte
//!    returned) and the coordinator-retry success rate (the opt-in §IV-G
//!    deviation knob: the query re-runs on the survivors).
//! 3. **Chaos run**: a multi-threaded workload under a seeded
//!    [`ChaosSchedule`] (blips, a permanent hang, a crash) with split-level
//!    faults from the chaos connector (transient failures + stragglers).
//!    Invariants: every query terminates, only fault-shaped errors occur,
//!    and after the storm no task and no pool byte leaks.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin chaos_bench [-- --smoke] [-- --seed N]
//! ```
//!
//! Emits `BENCH_chaos.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_cluster::{ChaosProfile, ChaosSchedule, Cluster, ClusterConfig, WorkerState};
use presto_common::chaos::seed_from_env;
use presto_common::json::Json;
use presto_common::{DataType, ErrorCode, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::{ChaosConnector, ChaosPolicy, MemoryConnector};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Sizing {
    /// Rows in the orders table; the probe query cross-joins it with
    /// itself, so work grows quadratically.
    rows: i64,
    /// Crash/retry iterations in scenario 2.
    retry_trials: usize,
    /// Workload threads × queries per thread in scenario 3.
    threads: usize,
    queries_per_thread: usize,
}

fn sizing(smoke: bool) -> Sizing {
    if smoke {
        Sizing {
            rows: 1200,
            retry_trials: 2,
            threads: 4,
            queries_per_thread: 3,
        }
    } else {
        Sizing {
            rows: 4000,
            retry_trials: 8,
            threads: 8,
            queries_per_thread: 6,
        }
    }
}

/// A query slow enough to still be mid-flight when a fault lands: a
/// self cross join with a residual filter (`rows²` pairs scanned).
fn slow_join(rows: i64) -> String {
    format!(
        "SELECT o1.orderkey FROM orders o1 CROSS JOIN orders o2 \
         WHERE o1.orderkey + o2.orderkey = {}",
        rows - 1
    )
}

fn orders_connector(rows: i64) -> Arc<MemoryConnector> {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[
        ("orderkey", DataType::Bigint),
        ("custkey", DataType::Bigint),
    ]);
    let all: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Bigint(i), Value::Bigint(i % 100)])
        .collect();
    let pages: Vec<presto_page::Page> = all
        .chunks(50)
        .map(|chunk| presto_page::Page::from_rows(&schema, chunk))
        .collect();
    mem.load_table("orders", schema, pages);
    mem.analyze("orders").expect("analyze orders");
    mem
}

fn catalogs_of(connector: Arc<dyn Connector>) -> CatalogManager {
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", connector);
    catalogs
}

/// Poll until every worker's live-task list is empty and the general and
/// reserved pools read zero; returns the latency. Panics past `grace` —
/// residue after teardown is a leak.
fn await_clean(cluster: &Cluster, grace: Duration) -> Duration {
    let started = Instant::now();
    let deadline = started + grace;
    loop {
        let live = cluster.worker_live_tasks();
        let snap = cluster.metrics_snapshot();
        let residual: Vec<(i64, i64)> = snap
            .workers
            .iter()
            .map(|w| (w.memory.general_used, w.memory.reserved_used))
            .collect();
        if live.iter().all(|&n| n == 0) && residual.iter().all(|&(g, r)| g == 0 && r == 0) {
            return started.elapsed();
        }
        assert!(
            Instant::now() < deadline,
            "teardown leaked: live_tasks={live:?} (general,reserved)={residual:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Scenario 1: hung-worker detection latency and bounded query failure.
fn bench_detection(sz: &Sizing) -> Json {
    let liveness = Duration::from_millis(100);
    let grace = Duration::from_secs(5);
    let config = ClusterConfig {
        workers: 2,
        liveness_timeout: liveness,
        ..ClusterConfig::test()
    };
    let cluster =
        Cluster::start(config, catalogs_of(orders_connector(sz.rows))).expect("cluster");
    let handle = cluster.submit(slow_join(sz.rows), Session::default());
    std::thread::sleep(Duration::from_millis(10));
    let hung_at = Instant::now();
    cluster.hang_worker(1);
    while cluster.worker_states()[1] != WorkerState::Lost {
        assert!(
            hung_at.elapsed() < liveness + grace,
            "detector never declared the hung worker lost"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let detection = hung_at.elapsed();
    if let Err(e) = handle.join().expect("query thread") {
        assert_eq!(e.error.code, ErrorCode::WorkerFailed, "{e}");
    }
    let terminated = hung_at.elapsed();
    assert!(
        terminated < liveness + grace,
        "query outlived liveness_timeout + grace: {terminated:?}"
    );
    let teardown = await_clean(&cluster, grace);
    println!(
        "detection       liveness={liveness:>8.2?} detect={detection:>8.2?} \
         query_end={terminated:>8.2?} clean={teardown:>8.2?}"
    );
    Json::obj([
        ("liveness_ms", Json::Num(liveness.as_secs_f64() * 1e3)),
        ("detect_ms", Json::Num(detection.as_secs_f64() * 1e3)),
        ("query_end_ms", Json::Num(terminated.as_secs_f64() * 1e3)),
        ("clean_ms", Json::Num(teardown.as_secs_f64() * 1e3)),
    ])
}

/// Scenario 2: crash teardown latency and coordinator-retry success rate.
fn bench_teardown_retry(sz: &Sizing) -> Json {
    let grace = Duration::from_secs(10);
    let mut teardown_total = Duration::ZERO;
    let mut recovered = 0usize;
    for trial in 0..sz.retry_trials {
        let config = ClusterConfig {
            workers: 3,
            ..ClusterConfig::test()
        };
        let cluster =
            Cluster::start(config, catalogs_of(orders_connector(sz.rows))).expect("cluster");
        let session = Session {
            query_retry_attempts: 2,
            query_retry_backoff: Duration::from_millis(5),
            ..Session::default()
        };
        let handle = cluster.submit(slow_join(sz.rows), session);
        // Stagger the crash across trials so it lands in different phases.
        std::thread::sleep(Duration::from_millis(5 + 7 * trial as u64));
        cluster.kill_worker(2);
        let killed_at = Instant::now();
        match handle.join().expect("query thread") {
            Ok(out) => {
                assert_eq!(out.row_count(), sz.rows as usize, "retry must not lose rows");
                recovered += 1;
            }
            Err(e) => assert_eq!(e.error.code, ErrorCode::WorkerFailed, "{e}"),
        }
        teardown_total += await_clean(&cluster, grace);
        let _ = killed_at;
    }
    println!(
        "teardown/retry  trials={:<3} recovered={:<3} rate={:>5.2} avg_clean={:>8.2?}",
        sz.retry_trials,
        recovered,
        recovered as f64 / sz.retry_trials as f64,
        teardown_total / sz.retry_trials as u32,
    );
    Json::obj([
        ("trials", Json::Int(sz.retry_trials as i64)),
        ("recovered", Json::Int(recovered as i64)),
        (
            "retry_rate",
            Json::Num(recovered as f64 / sz.retry_trials as f64),
        ),
        (
            "avg_clean_ms",
            Json::Num(teardown_total.as_secs_f64() * 1e3 / sz.retry_trials as f64),
        ),
    ])
}

/// Scenario 3: seeded chaos storm over a concurrent workload.
fn bench_chaos_run(sz: &Sizing, seed: u64) -> Json {
    let liveness = Duration::from_millis(150);
    let grace = Duration::from_secs(10);
    let workers = 4;
    let policy = ChaosPolicy {
        seed,
        transient_fail_ratio: 0.05,
        delay_ratio: 0.10,
        delay: Duration::from_micros(500),
        ..ChaosPolicy::default()
    };
    let chaos_connector = ChaosConnector::with_policy(orders_connector(sz.rows), policy);
    let config = ClusterConfig {
        workers,
        liveness_timeout: liveness,
        ..ClusterConfig::test()
    };
    let cluster = Arc::new(
        Cluster::start(config, catalogs_of(Arc::clone(&chaos_connector) as _)).expect("cluster"),
    );
    let profile = ChaosProfile {
        span: Duration::from_millis(400),
        blips: 2,
        blip_max: Duration::from_millis(40),
        permanent_hang: true,
        crash: true,
    };
    let schedule = ChaosSchedule::generate(seed, workers, &profile);
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let schedule = schedule.clone();
        std::thread::spawn(move || schedule.run(&cluster, &stop))
    };
    let started = Instant::now();
    let per_thread = sz.queries_per_thread;
    let mut threads = Vec::new();
    for t in 0..sz.threads {
        let cluster = Arc::clone(&cluster);
        let sql = slow_join(sz.rows);
        threads.push(std::thread::spawn(move || {
            let session = Session {
                query_retry_attempts: 3,
                query_retry_backoff: Duration::from_millis(10),
                // Shuffle-frame corruption: every 97th exchange decode
                // fails transiently; the client's backoff retry absorbs it.
                // The period must exceed the largest re-fetched batch
                // (rows/50 frames) or the batch could never fully decode
                // and the fault would be permanent rather than transient.
                exchange_chaos_decode_every: 97,
                ..Session::default()
            };
            let mut ok = 0u32;
            let mut failed = 0u32;
            let mut slowest = Duration::ZERO;
            for i in 0..per_thread {
                let q = if (t + i) % 2 == 0 {
                    "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey".to_string()
                } else {
                    sql.clone()
                };
                let at = Instant::now();
                match cluster.execute_with_session(&q, &session) {
                    Ok(_) => ok += 1,
                    Err(e) => {
                        assert!(
                            matches!(
                                e.error.code,
                                ErrorCode::Killed
                                    | ErrorCode::WorkerFailed
                                    | ErrorCode::External { .. }
                            ),
                            "fault storm produced a non-fault error: {e}"
                        );
                        failed += 1;
                    }
                }
                slowest = slowest.max(at.elapsed());
            }
            (ok, failed, slowest)
        }));
    }
    let mut ok = 0u32;
    let mut failed = 0u32;
    let mut slowest = Duration::ZERO;
    for t in threads {
        let (o, f, s) = t.join().expect("workload thread");
        ok += o;
        failed += f;
        slowest = slowest.max(s);
    }
    stop.store(true, Ordering::SeqCst);
    storm.join().expect("storm thread");
    let total = (sz.threads * sz.queries_per_thread) as u32;
    assert_eq!(ok + failed, total, "every query must terminate");
    // After the storm, nothing may remain active for longer than the
    // detector needs to clear the wreckage.
    let quiet = Instant::now() + liveness + grace;
    while !cluster.active_queries().is_empty() {
        assert!(
            Instant::now() < quiet,
            "queries still active after liveness_timeout + grace"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let teardown = await_clean(&cluster, grace);
    println!(
        "chaos run       queries={total:<3} ok={ok:<3} failed={failed:<3} \
         events={:<2} split_faults={:<4} stragglers={:<4} slowest={slowest:>8.2?} \
         clean={teardown:>8.2?} wall={:>8.2?}",
        schedule.events.len(),
        chaos_connector.injected_failures(),
        chaos_connector.injected_delays(),
        started.elapsed(),
    );
    Json::obj([
        ("queries", Json::Int(total as i64)),
        ("ok", Json::Int(ok as i64)),
        ("failed", Json::Int(failed as i64)),
        ("chaos_events", Json::Int(schedule.events.len() as i64)),
        (
            "split_faults",
            Json::Int(chaos_connector.injected_failures() as i64),
        ),
        (
            "stragglers",
            Json::Int(chaos_connector.injected_delays() as i64),
        ),
        ("slowest_ms", Json::Num(slowest.as_secs_f64() * 1e3)),
        ("clean_ms", Json::Num(teardown.as_secs_f64() * 1e3)),
        (
            "wall_ms",
            Json::Num(started.elapsed().as_secs_f64() * 1e3),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| seed_from_env(42));
    let sz = sizing(smoke);
    println!(
        "chaos_bench seed={seed} mode={}",
        if smoke { "smoke" } else { "full" }
    );
    let detection = bench_detection(&sz);
    let teardown = bench_teardown_retry(&sz);
    let chaos_run = bench_chaos_run(&sz, seed);
    BenchReport::new("chaos")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("seed", Json::Int(seed as i64))
        .metric("detection", detection)
        .metric("teardown_retry", teardown)
        .metric("chaos_run", chaos_run)
        .write();
    println!("chaos_bench: ok");
}
