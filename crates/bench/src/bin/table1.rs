//! Table I: "Presto deployments to support selected use cases".
//!
//! The paper tabulates, per use case: query duration range, workload
//! shape, cluster size, concurrency, and connector. We measure the
//! duration column from the live workload generators and report the rest
//! from the fixture configuration, printing the same table layout.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin table1
//! ```

use presto_bench::{percentile, scale_factor, worker_count, BenchCluster};
use presto_workload::usecases::{UseCase, WorkloadGenerator};
use std::time::Duration;

fn main() {
    let scale = scale_factor();
    println!("Table I reproduction: deployments per use case (SF {scale})\n");
    let fixture = BenchCluster::new("table1", scale);
    fixture.hive.set_read_latency(Duration::from_micros(300));

    let shape = |u: UseCase| match u {
        UseCase::DeveloperAdvertiser => "joins, aggregations and window functions",
        UseCase::AbTesting => "transform, filter and join rows",
        UseCase::Interactive => "exploratory analysis",
        UseCase::BatchEtl => "transform, filter, join or aggregate",
    };
    let concurrency = |u: UseCase| match u {
        UseCase::DeveloperAdvertiser => "100s of queries",
        UseCase::AbTesting => "10s of queries",
        UseCase::Interactive => "50-100 queries",
        UseCase::BatchEtl => "10s of queries",
    };
    let connector = |u: UseCase| match u {
        UseCase::DeveloperAdvertiser => "Sharded SQL",
        UseCase::AbTesting => "Raptor",
        UseCase::Interactive | UseCase::BatchEtl => "Hive/HDFS",
    };

    println!(
        "{:<28} {:<22} {:<40} {:<12} {:<16} {:<12}",
        "Use Case", "Query Duration", "Workload Shape", "Cluster", "Concurrency", "Connector"
    );
    for use_case in UseCase::all() {
        let mut generator = WorkloadGenerator::new(use_case, 11);
        let session = use_case.session();
        let mut times = Vec::new();
        for _ in 0..20 {
            match fixture
                .cluster
                .execute_with_session(&generator.next_query(), &session)
            {
                Ok(out) => times.push(out.wall_time),
                Err(e) => eprintln!("{}: {e}", use_case.label()),
            }
        }
        times.sort();
        let duration = format!(
            "{:.0?} - {:.0?}",
            percentile(&times, 0.05),
            percentile(&times, 0.95)
        );
        println!(
            "{:<28} {:<22} {:<40} {:<12} {:<16} {:<12}",
            use_case.label(),
            duration,
            shape(use_case),
            format!("{} nodes", worker_count()),
            concurrency(use_case),
            connector(use_case)
        );
    }
    println!(
        "\npaper Table I durations: Dev/Adv 50ms-5s | A/B 1s-25s | Interactive 10s-30min | ETL 20min-5h"
    );
    println!("(absolute durations scale with the simulated data; the ordering is the result)");
}
