//! Runtime dynamic filtering on a Fig. 6-style star-schema join.
//!
//! A selective dimension table joins a large fact table stored in Hive,
//! clustered (as warehouse fact tables are) on the join key. With dynamic
//! filtering the build side's observed key domain reaches the probe-side
//! scan and prunes whole splits and stripes before their bytes are
//! fetched; without it every stripe pays the simulated remote-read
//! latency. The benchmark runs the same query both ways, diffs the
//! results row for row (they must be identical — the filter is an
//! optimization, never a semantic change), and reports scan bytes, wall
//! time, and the pruning counters.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin dynfilter_bench
//! cargo run -p presto-bench --bin dynfilter_bench -- --smoke
//! ```
//!
//! Emits `BENCH_dynfilter.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_bench::{bench_config, ms, scratch_dir, worker_count};
use presto_cluster::{Cluster, DynamicFilterMetrics};
use presto_common::json::Json;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::HiveConnector;
use presto_page::Page;
use std::sync::Arc;
use std::time::Duration;

/// Rows per fact key; the dimension selects ~1% of the key range.
const FANOUT: i64 = 8;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fact_rows: i64 = if smoke { 24_000 } else { 240_000 };
    let keys = fact_rows / FANOUT;
    let dim_lo = keys * 9 / 10;
    let dim_hi = dim_lo + (keys / 100).max(1);

    let dir = scratch_dir("dynfilter");
    let config = bench_config();
    println!(
        "dynamic-filter reproduction: star-schema join, fact {fact_rows} rows / dim {} rows, {} workers",
        dim_hi - dim_lo,
        worker_count()
    );
    println!("paper: §IV-B predicate pushdown, applied at runtime from the join build side\n");

    let hive = HiveConnector::new(dir.join("hive")).expect("hive");
    load_star_schema(&hive, fact_rows, dim_lo, dim_hi);
    hive.set_read_latency(Duration::from_micros(if smoke { 50 } else { 300 }));
    let io = hive.io_stats();

    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start(config, catalogs).expect("cluster");

    let mut off = Session::for_catalog("hive");
    off.dynamic_filtering = false;
    let mut on = Session::for_catalog("hive");
    on.dynamic_filtering = true;
    on.dynamic_filter_wait = Duration::from_secs(2);

    let sql = "SELECT f.v FROM fact f JOIN dim d ON f.fk = d.k";
    let iterations = if smoke { 1 } else { 3 };

    // Warm both paths once so metadata-cache misses don't skew either side.
    run_once(&cluster, sql, &off, &io);
    run_once(&cluster, sql, &on, &io);

    println!("star-schema join: SELECT f.v FROM fact JOIN dim ON f.fk = d.k");
    let mut best_off: Option<Run> = None;
    let mut best_on: Option<Run> = None;
    for _ in 0..iterations {
        let r_off = run_once(&cluster, sql, &off, &io);
        let r_on = run_once(&cluster, sql, &on, &io);
        best_off = Some(best_off.map_or(r_off.clone(), |b| b.faster(r_off)));
        best_on = Some(best_on.map_or(r_on.clone(), |b| b.faster(r_on)));
    }
    let r_off = best_off.expect("off run");
    let r_on = best_on.expect("on run");

    // Differential check: dynamic filtering must not change the result.
    assert_eq!(
        r_off.values, r_on.values,
        "dynamic filtering changed the query result"
    );
    println!(
        "  results identical: {} rows both ways (zero diffs)",
        r_on.values.len()
    );

    let df = cluster.telemetry().dynamic_filter_metrics();
    assert!(df.filters_published >= 1, "no dynamic filter was published");
    assert!(
        r_on.df.splits_pruned + r_on.df.stripes_pruned + r_on.df.rows_filtered > 0,
        "dynamic filtering pruned nothing"
    );
    assert!(
        r_on.bytes < r_off.bytes,
        "dynamic filtering did not reduce scan bytes ({} vs {})",
        r_on.bytes,
        r_off.bytes
    );

    let bytes_ratio = r_off.bytes as f64 / r_on.bytes.max(1) as f64;
    let speedup = r_off.wall.as_secs_f64() / r_on.wall.as_secs_f64().max(1e-9);
    println!("\ndynamic filtering off vs on (best of {iterations}):");
    println!(
        "  {:<22} {:>12} {:>14}",
        "", "df_off", "df_on"
    );
    println!(
        "  {:<22} {:>12} {:>14}",
        "wall_ms",
        ms(r_off.wall),
        ms(r_on.wall)
    );
    println!(
        "  {:<22} {:>12} {:>14}",
        "scan_bytes", r_off.bytes, r_on.bytes
    );
    println!(
        "  scan-bytes reduction   {bytes_ratio:>11.2}x\n  wall-clock speedup     {speedup:>11.2}x"
    );
    println!(
        "  pruned: {} splits, {} stripes, {} rows; waited {:.2} ms for filters",
        r_on.df.splits_pruned,
        r_on.df.stripes_pruned,
        r_on.df.rows_filtered,
        r_on.df.wait_nanos as f64 / 1e6,
    );

    if !smoke {
        assert!(
            bytes_ratio >= 3.0,
            "scan-bytes reduction {bytes_ratio:.2}x below the 3x target"
        );
        assert!(
            speedup >= 1.5,
            "wall-clock speedup {speedup:.2}x below the 1.5x target"
        );
    }

    println!();
    BenchReport::new("dynfilter")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("fact_rows", Json::Int(fact_rows))
        .config("dim_rows", Json::Int(dim_hi - dim_lo))
        .metric("result_rows", Json::Int(r_on.values.len() as i64))
        .metric("wall_ms_off", Json::Num(r_off.wall.as_secs_f64() * 1e3))
        .metric("wall_ms_on", Json::Num(r_on.wall.as_secs_f64() * 1e3))
        .metric("scan_bytes_off", Json::Int(r_off.bytes as i64))
        .metric("scan_bytes_on", Json::Int(r_on.bytes as i64))
        .metric("bytes_reduction", Json::Num(bytes_ratio))
        .metric("speedup", Json::Num(speedup))
        .metric("filters_published", Json::Int(df.filters_published as i64))
        .metric("splits_pruned", Json::Int(r_on.df.splits_pruned as i64))
        .metric("stripes_pruned", Json::Int(r_on.df.stripes_pruned as i64))
        .metric("rows_filtered", Json::Int(r_on.df.rows_filtered as i64))
        .metric("wait_ms", Json::Num(r_on.df.wait_nanos as f64 / 1e6))
        .write();
    println!("dynfilter_bench: ok");
    std::fs::remove_dir_all(&dir).ok();
}

#[derive(Clone)]
struct Run {
    wall: Duration,
    bytes: u64,
    values: Vec<i64>,
    df: DynamicFilterMetrics,
}

impl Run {
    fn faster(self, other: Run) -> Run {
        if other.wall < self.wall {
            other
        } else {
            self
        }
    }
}

fn run_once(
    cluster: &Cluster,
    sql: &str,
    session: &Session,
    io: &presto_porc::IoStats,
) -> Run {
    let bytes_before = io.snapshot().0;
    let df_before = cluster.telemetry().dynamic_filter_metrics();
    let out = cluster.execute_with_session(sql, session).expect("query");
    let df_after = cluster.telemetry().dynamic_filter_metrics();
    let mut values: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| match r[0] {
            Value::Bigint(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect();
    values.sort_unstable();
    Run {
        wall: out.wall_time,
        bytes: io.snapshot().0 - bytes_before,
        values,
        df: DynamicFilterMetrics {
            filters_published: df_after.filters_published - df_before.filters_published,
            splits_pruned: df_after.splits_pruned - df_before.splits_pruned,
            stripes_pruned: df_after.stripes_pruned - df_before.stripes_pruned,
            rows_filtered: df_after.rows_filtered - df_before.rows_filtered,
            wait_nanos: df_after.wait_nanos - df_before.wait_nanos,
        },
    }
}

/// Fact table clustered ascending on the join key (tight per-stripe
/// min/max footers, as a date- or key-partitioned warehouse table would
/// have) plus a narrow dimension selecting ~1% of the key range.
fn load_star_schema(hive: &HiveConnector, fact_rows: i64, dim_lo: i64, dim_hi: i64) {
    let fact_schema = Schema::of(&[
        ("fk", DataType::Bigint),
        ("v", DataType::Bigint),
        ("pad", DataType::Varchar),
    ]);
    let rows: Vec<Vec<Value>> = (0..fact_rows)
        .map(|i| {
            vec![
                Value::Bigint(i / FANOUT),
                Value::Bigint(i),
                Value::varchar(format!("row-{i:012}-padding-padding-padding")),
            ]
        })
        .collect();
    let pages: Vec<Page> = rows
        .chunks(1000)
        .map(|c| Page::from_rows(&fact_schema, c))
        .collect();
    hive.load_table("fact", fact_schema, &pages).expect("fact");

    let dim_schema = Schema::of(&[("k", DataType::Bigint), ("name", DataType::Varchar)]);
    let rows: Vec<Vec<Value>> = (dim_lo..dim_hi)
        .map(|k| vec![Value::Bigint(k), Value::varchar(format!("dim-{k}"))])
        .collect();
    let pages: Vec<Page> = rows
        .chunks(1000)
        .map(|c| Page::from_rows(&dim_schema, c))
        .collect();
    hive.load_table("dim", dim_schema, &pages).expect("dim");
}
