//! Metadata-cache benchmark: cold vs warm plan + first-split latency.
//!
//! §IV-B: "The coordinator caches table metadata and statistics"; §V-C:
//! footer indexes are consulted at both planning and enumeration time. A
//! query over a many-file Hive table pays one simulated remote round trip
//! per footer on the first run; the second run plans from the metastore
//! cache and enumerates from the footer cache, so it should be at least
//! 2x faster and fetch zero footers.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin metadata_cache
//! ```
//!
//! Emits `BENCH_metadata_cache.json` in the working directory.

use presto_bench::report::BenchReport;
use presto_bench::{bench_config, print_cache_summary, scale_factor, scratch_dir};
use presto_common::json::Json;
use presto_cache::MetadataCache;
use presto_cluster::Cluster;
use presto_common::{DataType, Schema, Session, Value};
use presto_connector::{CatalogManager, Connector, ConnectorMetadata, PageSinkFactory};
use presto_connectors::HiveConnector;
use presto_page::Page;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let scale = scale_factor();
    let files = ((6400.0 * scale) as usize).max(64);
    let rows_per_file = 2048usize;
    println!(
        "metadata cache: cold vs warm plan + split enumeration ({files} files, {} rows)\n",
        files * rows_per_file
    );
    let dir = scratch_dir("metadata-cache");
    let config = bench_config();
    let cache = MetadataCache::new(config.cache.clone());
    let hive = HiveConnector::with_cache(dir.join("hive"), Arc::clone(&cache)).expect("hive");

    // Many small files: one footer round trip each, like a day of hourly
    // ETL partitions. Each sink writes its own file (§IV-E3).
    let schema = Schema::of(&[("id", DataType::Bigint), ("v", DataType::Bigint)]);
    hive.create_table("events", &schema).expect("create");
    for f in 0..files {
        let rows: Vec<Vec<Value>> = (0..rows_per_file)
            .map(|i| {
                vec![
                    Value::Bigint((f * rows_per_file + i) as i64),
                    Value::Bigint((i % 97) as i64),
                ]
            })
            .collect();
        let mut sink = hive.create_sink("events").expect("sink");
        sink.append(&Page::from_rows(&schema, &rows)).expect("append");
        sink.finish().expect("finish");
    }
    // Every footer fetch now costs a simulated remote round trip; cache
    // hits skip it (the latency is paid inside the miss path only).
    hive.set_read_latency(Duration::from_millis(2));

    let mut catalogs = CatalogManager::new();
    catalogs.register("hive", Arc::clone(&hive) as Arc<dyn Connector>);
    let cluster = Cluster::start_with_cache(config, catalogs, cache).expect("cluster");

    let sql = "SELECT count(v) FROM events WHERE v = 13";
    let session = Session::for_catalog("hive");
    let run = || {
        let t = Instant::now();
        cluster.execute_with_session(sql, &session).expect("query");
        t.elapsed()
    };
    let base = hive.io_stats().footer_reads();
    let cold = run();
    let cold_footers = hive.io_stats().footer_reads() - base;
    let warm = run();
    let warm_footers = hive.io_stats().footer_reads() - base - cold_footers;
    let hits = cluster.telemetry().cache_counters().hits;
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);

    println!(
        "{:<18} {:>10} {:>14} {:>12}",
        "run", "latency", "footer reads", "cache hits"
    );
    println!(
        "{:<18} {:>8.1}ms {:>14} {:>12}",
        "cold (first)",
        cold.as_secs_f64() * 1000.0,
        cold_footers,
        "-"
    );
    println!(
        "{:<18} {:>8.1}ms {:>14} {:>12}",
        "warm (second)",
        warm.as_secs_f64() * 1000.0,
        warm_footers,
        hits
    );
    println!("\nwarm speedup: {speedup:.1}x\n");
    print_cache_summary(&cluster);

    assert!(cold_footers > 0, "cold run must fetch footers");
    assert_eq!(warm_footers, 0, "warm run must fetch zero footers");
    assert!(hits > 0, "warm run must hit the cache");
    assert!(
        speedup >= 2.0,
        "warm run should be at least 2x faster (got {speedup:.1}x)"
    );
    std::fs::remove_dir_all(&dir).ok();

    BenchReport::new("metadata_cache")
        .config("files", Json::Int(files as i64))
        .config("rows_per_file", Json::Int(rows_per_file as i64))
        .metric("cold_ms", Json::Num(cold.as_secs_f64() * 1e3))
        .metric("warm_ms", Json::Num(warm.as_secs_f64() * 1e3))
        .metric("speedup", Json::Num(speedup))
        .metric("cold_footer_reads", Json::Int(cold_footers as i64))
        .metric("warm_footer_reads", Json::Int(warm_footers as i64))
        .metric("cache_hits", Json::Int(hits as i64))
        .write();
}
