//! §IV-F2: memory arbitration under overcommit.
//!
//! "It is generally safe to overcommit the memory of the cluster as long
//! as mechanisms exist to keep the cluster healthy when nodes are low on
//! memory. There are two such mechanisms in Presto — spilling, and
//! reserved pools." This bench runs memory-hungry concurrent aggregations
//! against a deliberately small pool under three policies and reports
//! completion counts and wall time.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin memory
//! ```

use presto_cluster::{Cluster, ClusterConfig};
use presto_common::Session;
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use presto_workload::TpchGenerator;
use std::sync::Arc;
use std::time::Instant;

const HUNGRY: &str = "SELECT orderkey, partkey, COUNT(*), SUM(extendedprice), AVG(quantity) \
                      FROM lineitem GROUP BY orderkey, partkey";

fn run_policy(label: &str, pool_bytes: u64, kill: bool, spill: bool, concurrency: usize) {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.005).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    let cluster = Cluster::start(
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            node_memory_bytes: pool_bytes,
            reserved_pool_bytes: pool_bytes,
            kill_on_memory_exhausted: kill,
            ..Default::default()
        },
        catalogs,
    )
    .expect("cluster");
    let mut session = Session::default();
    session.spill_enabled = spill;
    let start = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|_| cluster.submit(HUNGRY, session.clone()))
        .collect();
    let mut ok = 0;
    let mut killed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(_) => ok += 1,
            Err(_) => killed += 1,
        }
    }
    println!(
        "{label:<34} completed={ok:<3} killed={killed:<3} wall={:>8.2?}",
        start.elapsed()
    );
}

fn main() {
    println!("§IV-F2 reproduction: memory arbitration policies under overcommit\n");
    let concurrency = 6;
    // Pool sized so one query fits but six do not.
    let pool = 2u64 << 20;
    run_policy("reserved-pool promotion", pool, false, false, concurrency);
    run_policy("kill-largest policy", pool, true, false, concurrency);
    run_policy("spill-to-disk", pool, false, true, concurrency);
    run_policy(
        "ample memory (baseline)",
        1 << 30,
        false,
        false,
        concurrency,
    );
    println!("\nexpected shape (paper): with the reserved pool every query eventually");
    println!("completes (serialized through promotion); the kill policy sacrifices");
    println!("queries to keep the node healthy; spilling completes under the limit.");
}
