//! §V-B "Code Generation": compiled (vectorized, type-specialized)
//! expression evaluation vs the row interpreter.
//!
//! The paper: "Presto contains an expression interpreter … that we use for
//! tests, but is much too slow for production use evaluating billions of
//! rows." This bench reproduces the gap with the Rust-native equivalent of
//! bytecode generation (fused monomorphized kernels, see
//! `presto_expr::compiled`).
//!
//! ```sh
//! cargo run --release -p presto-bench --bin codegen
//! ```

use presto_common::{DataType, Schema, Session, Value};
use presto_expr::processor::process_interpreted;
use presto_expr::{ArithOp, CmpOp, Expr, PageProcessor};
use presto_page::Page;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn build_pages(rows: usize) -> Vec<Page> {
    let schema = Schema::of(&[
        ("a", DataType::Bigint),
        ("b", DataType::Bigint),
        ("x", DataType::Double),
        ("s", DataType::Varchar),
    ]);
    let mut rng = StdRng::seed_from_u64(5);
    let mut pages = Vec::new();
    for chunk_start in (0..rows).step_by(8192) {
        let n = 8192.min(rows - chunk_start);
        let data: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    Value::Bigint(rng.gen_range(0..1_000_000)),
                    Value::Bigint(rng.gen_range(1..100)),
                    Value::Double(rng.gen_range(0.0..1.0)),
                    Value::varchar(if rng.gen_bool(0.5) { "keep" } else { "drop" }),
                ]
            })
            .collect();
        pages.push(Page::from_rows(&schema, &data));
    }
    pages
}

fn expressions() -> (Expr, Vec<Expr>) {
    // Filter: (a % b = 0 OR x > 0.9) AND s = 'keep'
    let filter = Expr::and(vec![
        Expr::or(vec![
            Expr::cmp(
                CmpOp::Eq,
                Expr::arith(
                    ArithOp::Mod,
                    Expr::column(0, DataType::Bigint),
                    Expr::column(1, DataType::Bigint),
                ),
                Expr::literal(0i64),
            ),
            Expr::cmp(
                CmpOp::Gt,
                Expr::column(2, DataType::Double),
                Expr::literal(0.9f64),
            ),
        ]),
        Expr::cmp(
            CmpOp::Eq,
            Expr::column(3, DataType::Varchar),
            Expr::literal("keep"),
        ),
    ]);
    // Projections: arithmetic chain + CASE ladder.
    let arith = Expr::arith(
        ArithOp::Add,
        Expr::arith(
            ArithOp::Mul,
            Expr::column(0, DataType::Bigint),
            Expr::literal(3i64),
        ),
        Expr::arith(
            ArithOp::Div,
            Expr::column(0, DataType::Bigint),
            Expr::column(1, DataType::Bigint),
        ),
    );
    let case = Expr::Case {
        branches: vec![
            (
                Expr::cmp(
                    CmpOp::Lt,
                    Expr::column(2, DataType::Double),
                    Expr::literal(0.25f64),
                ),
                Expr::literal(1i64),
            ),
            (
                Expr::cmp(
                    CmpOp::Lt,
                    Expr::column(2, DataType::Double),
                    Expr::literal(0.75f64),
                ),
                Expr::literal(2i64),
            ),
        ],
        otherwise: Some(Box::new(Expr::literal(3i64))),
        data_type: DataType::Bigint,
    };
    (filter, vec![arith, case])
}

fn main() {
    let rows: usize = std::env::var("PRESTO_CODEGEN_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    println!("§V-B reproduction: compiled vs interpreted expression evaluation ({rows} rows)\n");
    let pages = build_pages(rows);
    let (filter, projections) = expressions();
    let session = Session::default();

    // Warm-up + measure compiled.
    let mut out_rows = 0usize;
    let compiled_time = {
        let mut processor = PageProcessor::new(Some(&filter), &projections, &session);
        let start = Instant::now();
        for page in &pages {
            out_rows += processor.process(page).expect("compiled").row_count();
        }
        start.elapsed()
    };
    // Interpreted.
    let mut out_rows_interp = 0usize;
    let interpreted_time = {
        let start = Instant::now();
        for page in &pages {
            out_rows_interp += process_interpreted(Some(&filter), &projections, page)
                .expect("interp")
                .row_count();
        }
        start.elapsed()
    };
    assert_eq!(out_rows, out_rows_interp, "both evaluators agree");
    let compiled_mrps = rows as f64 / compiled_time.as_secs_f64() / 1e6;
    let interp_mrps = rows as f64 / interpreted_time.as_secs_f64() / 1e6;
    println!("{:<22} {:>12} {:>16}", "evaluator", "time", "rows/sec");
    println!(
        "{:<22} {:>12.2?} {:>14.1}M",
        "compiled (kernels)", compiled_time, compiled_mrps
    );
    println!(
        "{:<22} {:>12.2?} {:>14.1}M",
        "interpreted", interpreted_time, interp_mrps
    );
    println!(
        "\nspeedup: {:.1}x  (selected {} of {} rows)",
        interpreted_time.as_secs_f64() / compiled_time.as_secs_f64(),
        out_rows,
        rows
    );
    println!("\nexpected shape (paper): the interpreter is 'much too slow for production use';");
    println!("specialized evaluation wins by a large factor.");
}
