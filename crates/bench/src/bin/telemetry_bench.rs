//! §VII telemetry benchmark: what observability costs.
//!
//! Three measurements:
//!
//! 1. **Stats-hook overhead** — the same group-by driver pipeline with the
//!    per-operator timing hooks on vs off (interleaved, best-of-N). The
//!    paper's position is that instrumentation must be effectively free;
//!    the run asserts the overhead stays under 3%.
//! 2. **Snapshot cost** — latency of [`Cluster::metrics_snapshot`] and the
//!    size of its JSON encoding, taken against a live cluster.
//! 3. **§VI-style tables** — a mixed workload, then worker-utilization and
//!    query queue/run-time tables regenerated from the snapshot and the
//!    telemetry query records (the counters behind the paper's Figures 6–9).
//! 4. **Trace export** — events recorded while a workload runs and the
//!    size/validity of the Chrome `trace_event` JSON.
//!
//! ```sh
//! cargo run --release -p presto-bench --bin telemetry_bench [-- --smoke]
//! ```
//!
//! Emits `BENCH_telemetry.json` in the working directory.

use presto_bench::kernels::{make_pages, KeyEncoding};
use presto_bench::report::BenchReport;
use presto_cluster::{Cluster, ClusterConfig};
use presto_common::json::Json;
use presto_common::{DataType, QueryId, Schema, Value};
use presto_connector::CatalogManager;
use presto_connectors::MemoryConnector;
use presto_exec::agg::{AggPhase, AggSpec, HashAggregationOperator};
use presto_exec::filter::ValuesOperator;
use presto_exec::{Driver, DriverState, Operator, TaskMemoryContext, UnlimitedPool};
use presto_expr::{AggregateFunction, AggregateKind};
use presto_page::Page;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sink that discards its input (the pipeline under test ends here, so
/// output materialization is not part of the measurement).
struct NullSink {
    done: bool,
    rows: u64,
}

impl Operator for NullSink {
    fn name(&self) -> &'static str {
        "NullSink"
    }
    fn needs_input(&self) -> bool {
        !self.done
    }
    fn add_input(&mut self, page: Page) -> presto_common::Result<()> {
        self.rows += page.row_count() as u64;
        Ok(())
    }
    fn finish(&mut self) {
        self.done = true;
    }
    fn output(&mut self) -> presto_common::Result<Option<Page>> {
        Ok(None)
    }
    fn is_finished(&self) -> bool {
        self.done
    }
}

/// Run the group-by pipeline once; returns wall time of the driver loop.
fn run_pipeline(pages: &[Page], stats_enabled: bool) -> Duration {
    let agg = HashAggregationOperator::new(
        AggPhase::Single,
        vec![0],
        vec![DataType::Bigint],
        vec![AggSpec {
            function: AggregateFunction::new(AggregateKind::Count, None).expect("count(*)"),
            input: None,
        }],
        false,
    );
    let mut driver = Driver::new(
        vec![
            Box::new(ValuesOperator::new(pages.to_vec())),
            Box::new(agg),
            Box::new(NullSink {
                done: false,
                rows: 0,
            }),
        ],
        TaskMemoryContext::new(QueryId(0), Arc::new(UnlimitedPool)),
    );
    driver.set_stats_enabled(stats_enabled);
    let start = Instant::now();
    loop {
        match driver.process(Duration::from_millis(100)).expect("driver") {
            DriverState::Finished => break,
            DriverState::Ready => continue,
            blocked => panic!("pipeline blocked on {blocked:?}"),
        }
    }
    start.elapsed()
}

/// Best-of-N interleaved A/B measurement of the stats hooks. Interleaving
/// keeps frequency scaling and cache warmth from biasing one side.
fn measure_overhead(pages: &[Page], reps: usize) -> (Duration, Duration, f64) {
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..reps {
        off = off.min(run_pipeline(pages, false));
        on = on.min(run_pipeline(pages, true));
    }
    let overhead = on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0;
    (off, on, overhead)
}

fn bench_cluster() -> Cluster {
    let mem = MemoryConnector::new();
    let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Double)]);
    let rows: Vec<Vec<Value>> = (0..20_000i64)
        .map(|i| vec![Value::Bigint(i % 500), Value::Double((i % 97) as f64)])
        .collect();
    let pages: Vec<Page> = rows
        .chunks(1_000)
        .map(|chunk| Page::from_rows(&schema, chunk))
        .collect();
    mem.load_table("events", schema, pages);
    mem.analyze("events").expect("analyze");
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn presto_connector::Connector>);
    Cluster::start(ClusterConfig::test(), catalogs).expect("cluster")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows, cardinality, reps) = if smoke {
        (300_000, 10_000, 3)
    } else {
        (4_000_000, 100_000, 5)
    };
    println!(
        "telemetry_bench: group-by {rows} rows, cardinality {cardinality}, best of {reps}{}",
        if smoke { " (smoke)" } else { "" }
    );

    // 1. Stats-hook overhead on the hash-kernel group-by pipeline. Retry a
    //    noisy measurement before declaring the hooks too expensive.
    let pages = make_pages(rows, cardinality, KeyEncoding::Flat);
    let mut attempts = Vec::new();
    for attempt in 1..=3 {
        let (off, on, overhead) = measure_overhead(&pages, reps);
        println!(
            "stats overhead attempt {attempt}: off {:?} on {:?} -> {:+.2}%",
            off,
            on,
            overhead * 100.0
        );
        attempts.push(overhead);
        if overhead < 0.03 {
            break;
        }
    }
    let best = attempts.iter().cloned().fold(f64::MAX, f64::min);
    println!("stats overhead: {:+.2}% (threshold 3%)", best * 100.0);
    assert!(
        best < 0.03,
        "per-operator stats hooks cost {:.2}% (>3%) over {} attempts",
        best * 100.0,
        attempts.len()
    );

    // 2. Metrics snapshots against a live cluster workload.
    let cluster = bench_cluster();
    cluster
        .execute("SELECT k, COUNT(*), SUM(v) FROM events GROUP BY k")
        .expect("warm-up query");
    let snap_reps = if smoke { 10 } else { 200 };
    let start = Instant::now();
    let mut json_bytes = 0usize;
    for _ in 0..snap_reps {
        json_bytes = cluster.metrics_snapshot().to_json().to_string().len();
    }
    let per_snap = start.elapsed() / snap_reps as u32;
    println!("metrics snapshot: {per_snap:?} per collect+encode, {json_bytes} JSON bytes");
    let snap = cluster.metrics_snapshot();
    let round =
        presto_cluster::ClusterSnapshot::from_json(&Json::parse(&snap.to_json().to_string()).expect("parse"))
            .expect("decode");
    assert_eq!(round, snap, "snapshot JSON must round-trip");

    // 3. Mixed workload, then the §VI-style tables (worker utilization and
    //    queue/run-time distribution) regenerated from the exported counters.
    let workload = [
        "SELECT k, COUNT(*), SUM(v) FROM events GROUP BY k",
        "SELECT a.k, COUNT(*) FROM events a JOIN events b ON a.k = b.k GROUP BY a.k",
        "SELECT COUNT(*) FROM events WHERE v > 50.0",
        "SELECT k FROM events ORDER BY k LIMIT 10",
    ];
    for sql in workload {
        cluster.execute(sql).expect("workload query");
    }
    let _ = cluster.execute("SELECT no_such_column FROM events"); // populate failure counters
    let snap = cluster.metrics_snapshot();
    println!("worker utilization (ClusterSnapshot):");
    // cpu% is summed across the worker's driver threads, so >100% means
    // more than one core busy (same convention as top).
    println!("  worker  busy          cpu%    drivers run/blk/q   mlfq quanta");
    for w in &snap.workers {
        let util = w.busy_nanos as f64 / snap.uptime_nanos.max(1) as f64 * 100.0;
        let quanta: u64 = w.scheduler.levels.iter().map(|l| l.quanta_granted).sum();
        println!(
            "  {:<6}  {:<12}  {:>5.1}   {}/{}/{:<13}  {}",
            w.node,
            format!("{:?}", Duration::from_nanos(w.busy_nanos)),
            util,
            w.running_drivers,
            w.blocked_drivers,
            w.queued_drivers,
            quanta
        );
    }
    let records: Vec<_> = cluster
        .telemetry()
        .all_query_records()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let dist = |mut v: Vec<Duration>| -> String {
        if v.is_empty() {
            return "n/a".into();
        }
        v.sort_unstable();
        format!(
            "min {:?}  p50 {:?}  max {:?}",
            v[0],
            v[v.len() / 2],
            v[v.len() - 1]
        )
    };
    let queue: Vec<Duration> = records.iter().filter_map(|r| r.queue_time()).collect();
    let exec: Vec<Duration> = records.iter().filter_map(|r| r.execution_time()).collect();
    let failed = records.iter().filter(|r| r.failed).count();
    println!(
        "query times ({} recorded, {} failed):",
        records.len(),
        failed
    );
    println!("  queue time:  {}", dist(queue));
    println!("  exec  time:  {}", dist(exec));
    assert_eq!(
        snap.queries.queued + snap.queries.running + snap.queries.finished + snap.queries.failed,
        snap.queries.submitted,
        "gauge invariant must hold after the mixed workload"
    );

    // 4. EXPLAIN ANALYZE + the trace timeline export.
    let analyzed = cluster
        .execute("EXPLAIN ANALYZE SELECT k, COUNT(*) FROM events GROUP BY k")
        .expect("explain analyze");
    let plan = analyzed.rows()[0][0]
        .as_str()
        .expect("plan text")
        .to_string();
    assert!(plan.contains("Pipeline"), "annotated plan:\n{plan}");
    println!(
        "explain analyze: {} chars, {} lines; excerpt:",
        plan.len(),
        plan.lines().count()
    );
    for line in plan.lines().take(10) {
        println!("  {line}");
    }
    let trace = cluster.trace().expect("tracing enabled");
    let chrome = trace.to_chrome_trace();
    let parsed = Json::parse(&chrome).expect("chrome trace JSON parses");
    let events = parsed.field_arr("traceEvents").expect("traceEvents");
    assert!(!events.is_empty(), "workload must emit trace events");
    println!(
        "trace timeline: {} events recorded, {} exported, {} JSON bytes",
        trace.recorded(),
        events.len(),
        chrome.len()
    );

    let (history_ns, histogram_ns) = bench_history_and_histogram(smoke);
    println!(
        "per-query bookkeeping: history append {history_ns:.0}ns, histogram record {histogram_ns:.1}ns"
    );

    BenchReport::new("telemetry")
        .config("mode", Json::Str(if smoke { "smoke" } else { "full" }.into()))
        .config("group_by_rows", Json::Int(rows as i64))
        .metric("stats_overhead_pct", Json::Num(best * 100.0))
        .metric("snapshot_us", Json::Num(per_snap.as_secs_f64() * 1e6))
        .metric("snapshot_json_bytes", Json::Int(json_bytes as i64))
        .metric("queries_recorded", Json::Int(records.len() as i64))
        .metric("queries_failed", Json::Int(failed as i64))
        .metric("trace_events", Json::Int(events.len() as i64))
        .metric("trace_json_bytes", Json::Int(chrome.len() as i64))
        .metric("history_record_ns", Json::Num(history_ns))
        .metric("histogram_record_ns", Json::Num(histogram_ns))
        .write();
    println!("telemetry_bench: ok");
}

/// Per-query bookkeeping cost (§VII): one query-history append (with a
/// representative retained entry: 2 tasks × 3 operators, 4 lifecycle
/// events) and one latency-histogram record. Both sit on the
/// coordinator's query-completion path; the history push must stay
/// trivially cheap because the ring mutex is shared with `system.runtime`
/// scans, and the histogram must stay lock-free-cheap because three of
/// them fire per query.
fn bench_history_and_histogram(smoke: bool) -> (f64, f64) {
    use presto_cluster::history::{LifecycleEvent, OperatorSummary, TaskSummary};
    use presto_cluster::{QueryHistory, QueryHistoryEntry};
    use presto_common::LatencyHistogram;

    let n: u64 = if smoke { 10_000 } else { 200_000 };
    let history = QueryHistory::new(256);
    let make_entry = |i: u64| QueryHistoryEntry {
        query: QueryId(i),
        state: "finished",
        error_tag: None,
        error_message: None,
        queued: Duration::from_micros(120),
        planning: Duration::from_micros(800),
        executing: Duration::from_millis(35),
        cpu: Duration::from_millis(60),
        wall: Duration::from_millis(36),
        attempts: 1,
        peak_memory_bytes: 1 << 20,
        rows_returned: 100,
        tasks: (0..2)
            .map(|t| TaskSummary {
                stage: t,
                task: t,
                cpu: Duration::from_millis(30),
                output_pages: 8,
                output_wire_bytes: 1 << 16,
                output_logical_bytes: 1 << 17,
                exchange_bytes_received: 1 << 14,
                operators: (0..3)
                    .map(|o| OperatorSummary {
                        pipeline: o,
                        name: "ScanFilterProject",
                        input_rows: 10_000,
                        input_bytes: 1 << 18,
                        output_rows: 5_000,
                        output_bytes: 1 << 17,
                        cpu: Duration::from_millis(10),
                        blocked: Duration::from_micros(50),
                        peak_memory_bytes: 1 << 18,
                        spilled_bytes: 0,
                        spill_events: 0,
                    })
                    .collect(),
            })
            .collect(),
        events: ["queued", "started", "retry", "finished"]
            .iter()
            .map(|s| LifecycleEvent {
                state: s,
                at_nanos: 1_000,
            })
            .collect(),
        finished_at_nanos: 2_000,
    };
    let t = Instant::now();
    for i in 0..n {
        history.record(make_entry(i));
    }
    let history_ns = t.elapsed().as_secs_f64() * 1e9 / n as f64;
    assert_eq!(history.recorded(), n, "history dropped records");
    assert_eq!(history.len() as u64, n.min(256), "ring bound violated");

    let hist = LatencyHistogram::new();
    let m = n * 10;
    let t = Instant::now();
    for i in 0..m {
        hist.record(1_000 + (i % 7) * 40_000);
    }
    let histogram_ns = t.elapsed().as_secs_f64() * 1e9 / m as f64;
    let summary = hist.summary();
    assert_eq!(summary.count, m, "histogram dropped records");
    assert!(summary.p50_nanos > 0);
    (history_ns, histogram_ns)
}
