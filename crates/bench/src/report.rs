//! The standard `BENCH_<name>.json` report schema.
//!
//! Every benchmark binary emits one machine-readable report so runs can be
//! diffed across commits. The shape is fixed:
//!
//! ```json
//! {
//!   "name": "fusion",
//!   "config": { "mode": "full", "lineitem_rows": 2000000, ... },
//!   "metrics": { "q6_speedup": 2.1, ... }
//! }
//! ```
//!
//! `config` holds the knobs that shaped the run (sizes, seeds, mode);
//! `metrics` holds what was measured. [`validate`] enforces the schema and
//! the smoke tests run it against every file the binaries emit, so a
//! report that drifts from the contract fails tier-1 rather than silently
//! breaking downstream tooling.

use presto_common::json::Json;
use std::path::{Path, PathBuf};

/// Builder for one benchmark report.
pub struct BenchReport {
    name: &'static str,
    config: Vec<(&'static str, Json)>,
    metrics: Vec<(&'static str, Json)>,
}

impl BenchReport {
    pub fn new(name: &'static str) -> BenchReport {
        BenchReport {
            name,
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// A knob that shaped this run (mode, row counts, seeds, ...).
    pub fn config(mut self, key: &'static str, value: Json) -> BenchReport {
        self.config.push((key, value));
        self
    }

    /// A measured result.
    pub fn metric(mut self, key: &'static str, value: Json) -> BenchReport {
        self.metrics.push((key, value));
        self
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("config", Json::obj(self.config.iter().cloned())),
            ("metrics", Json::obj(self.metrics.iter().cloned())),
        ])
    }

    /// Validate and write `BENCH_<name>.json` into the working directory.
    /// Panics on schema violations — a benchmark that cannot produce a
    /// valid report should fail loudly, not publish garbage.
    pub fn write(self) -> PathBuf {
        let json = self.to_json();
        if let Err(e) = validate(&json) {
            panic!("BENCH_{}.json violates the report schema: {e}", self.name);
        }
        let path = PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, json.to_string())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
        path
    }
}

/// Check one report against the required-keys schema: a top-level object
/// with a non-empty string `name`, an object `config`, and a non-empty
/// object `metrics`.
pub fn validate(json: &Json) -> Result<(), String> {
    let Json::Obj(top) = json else {
        return Err("top level is not an object".into());
    };
    match top.get("name") {
        Some(Json::Str(s)) if !s.is_empty() => {}
        Some(Json::Str(_)) => return Err("'name' is empty".into()),
        Some(_) => return Err("'name' is not a string".into()),
        None => return Err("missing 'name'".into()),
    }
    match top.get("config") {
        Some(Json::Obj(_)) => {}
        Some(_) => return Err("'config' is not an object".into()),
        None => return Err("missing 'config'".into()),
    }
    match top.get("metrics") {
        Some(Json::Obj(m)) if !m.is_empty() => Ok(()),
        Some(Json::Obj(_)) => Err("'metrics' is empty".into()),
        Some(_) => Err("'metrics' is not an object".into()),
        None => Err("missing 'metrics'".into()),
    }
}

/// Parse and validate a report file; returns the parsed report. The smoke
/// tests call this on every `BENCH_*.json` a binary emits.
pub fn validate_file(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = presto_common::json::Json::parse(&text)
        .map_err(|e| format!("{}: parse error: {e:?}", path.display()))?;
    validate(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(json)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_schema() {
        let json = BenchReport::new("example")
            .config("mode", Json::Str("smoke".into()))
            .config("rows", Json::Int(100))
            .metric("speedup", Json::Num(2.0))
            .to_json();
        validate(&json).unwrap();
        assert_eq!(json.field_str("name").unwrap(), "example");
        assert_eq!(json.field("config").unwrap().field_i64("rows").unwrap(), 100);
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        for (text, why) in [
            ("[]", "not an object"),
            ("{}", "missing name"),
            (r#"{"name":"","config":{},"metrics":{"a":1}}"#, "empty name"),
            (r#"{"name":"x","metrics":{"a":1}}"#, "missing config"),
            (r#"{"name":"x","config":{}}"#, "missing metrics"),
            (r#"{"name":"x","config":{},"metrics":{}}"#, "empty metrics"),
            (r#"{"name":"x","config":[],"metrics":{"a":1}}"#, "config not object"),
        ] {
            let json = Json::parse(text).unwrap();
            assert!(validate(&json).is_err(), "accepted malformed report: {why}");
        }
        let ok = Json::parse(r#"{"name":"x","config":{},"metrics":{"a":1}}"#).unwrap();
        validate(&ok).unwrap();
    }
}
