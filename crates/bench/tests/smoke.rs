//! Tier-1 smoke coverage for the benchmark suite: the `hash_kernels`
//! binary's `--smoke` mode plus tiny fig4/fig6-style join and aggregation
//! queries, so `cargo test -q` exercises the measured code paths end to
//! end without release-build timing runs.
#![allow(clippy::unwrap_used)]

use presto_bench::kernels::{
    baseline_group_by, baseline_join, flat_group_by, flat_join, make_pages, KeyEncoding,
};
use presto_cluster::{Cluster, ClusterConfig};
use presto_common::{Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use presto_workload::TpchGenerator;
use std::sync::Arc;

#[test]
fn hash_kernels_smoke_mode_runs() {
    // The benchmark binary itself, in --smoke mode: asserts internally
    // that baseline and flat kernels agree on every encoding.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hash_kernels"))
        .arg("--smoke")
        .output()
        .expect("run hash_kernels --smoke");
    assert!(
        out.status.success(),
        "hash_kernels --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("join build+probe"), "join section present");
    assert!(stdout.contains("group-by"), "group-by section present");
}

#[test]
fn kernel_library_paths_agree_at_smoke_sizes() {
    for encoding in [KeyEncoding::Flat, KeyEncoding::Dictionary, KeyEncoding::Rle] {
        let build = make_pages(1_500, 64, KeyEncoding::Flat);
        let probe = make_pages(2_500, 64, encoding);
        let b = baseline_join(&build, &probe);
        let f = flat_join(&build, &probe);
        assert_eq!(b.output_rows, f.output_rows, "{encoding:?} join");
        assert_eq!(
            baseline_group_by(&probe).output_rows,
            flat_group_by(&probe).output_rows,
            "{encoding:?} group-by"
        );
    }
}

#[test]
fn shuffle_bench_smoke_mode_runs() {
    // The §IV-E2 shuffle data-plane benchmark in --smoke mode: asserts
    // internally that the shatter baseline and the coalescing writer agree
    // on rows and key checksums, that coalesced pages reach at least half
    // the target row count, and that both fetch clients deliver every row.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_shuffle_bench"))
        .arg("--smoke")
        .output()
        .expect("run shuffle_bench --smoke");
    assert!(
        out.status.success(),
        "shuffle_bench --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hash-partitioned sink"), "sink section present");
    assert!(stdout.contains("exchange fetch"), "fetch section present");
}

#[test]
fn telemetry_bench_smoke_mode_runs() {
    // The §VII telemetry benchmark in --smoke mode: asserts internally
    // that the per-operator stats hooks cost under 3% on the group-by
    // pipeline, that metrics snapshots round-trip through JSON, and that
    // the Chrome trace export parses with events present.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_telemetry_bench"))
        .arg("--smoke")
        .output()
        .expect("run telemetry_bench --smoke");
    assert!(
        out.status.success(),
        "telemetry_bench --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats overhead"), "overhead section present");
    assert!(stdout.contains("trace timeline"), "trace section present");
    assert!(stdout.contains("telemetry_bench: ok"), "completion marker");
}

#[test]
fn dynfilter_bench_smoke_mode_runs() {
    // The runtime dynamic-filtering benchmark in --smoke mode: asserts
    // internally that the filtered and unfiltered runs return identical
    // rows, that at least one filter is published, and that split/stripe/
    // row pruning reduced scan bytes.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_dynfilter_bench"))
        .arg("--smoke")
        .current_dir(std::env::temp_dir())
        .output()
        .expect("run dynfilter_bench --smoke");
    assert!(
        out.status.success(),
        "dynfilter_bench --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("star-schema join"), "join section present");
    assert!(stdout.contains("zero diffs"), "differential check present");
    assert!(stdout.contains("scan-bytes reduction"), "bytes section present");
    assert!(stdout.contains("dynfilter_bench: ok"), "end marker present");
}

#[test]
fn fusion_bench_smoke_mode_runs() {
    // The pipeline-fusion benchmark in --smoke mode: asserts internally
    // that fused and discrete pipelines return byte-identical rows on
    // both query shapes and that the fused telemetry counters accounted
    // for every scanned row.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fusion_bench"))
        .arg("--smoke")
        .current_dir(std::env::temp_dir())
        .output()
        .expect("run fusion_bench --smoke");
    assert!(
        out.status.success(),
        "fusion_bench --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("zero diffs"), "differential check present");
    assert!(stdout.contains("fused vs discrete"), "comparison table present");
    assert!(stdout.contains("fusion_bench: ok"), "end marker present");
}

fn smoke_cluster() -> Cluster {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.001).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    Cluster::start(ClusterConfig::test(), catalogs).unwrap()
}

#[test]
fn fig4_style_join_query_runs_on_new_kernels() {
    // The fig4/fig6 benchmarks' core shape: a distributed hash join whose
    // build side goes through the partitioned flat-table path.
    let cluster = smoke_cluster();
    let out = cluster
        .execute(
            "SELECT COUNT(*), SUM(l.extendedprice) \
             FROM orders o, lineitem l WHERE o.orderkey = l.orderkey",
        )
        .unwrap();
    assert!(matches!(out.rows()[0][0], Value::Bigint(n) if n > 0));
}

#[test]
fn fig6_style_aggregation_runs_on_flat_group_by() {
    let cluster = smoke_cluster();
    let out = cluster
        .execute_with_session(
            "SELECT orderkey, COUNT(*), SUM(extendedprice) \
             FROM lineitem GROUP BY orderkey",
            &Session::default(),
        )
        .unwrap();
    assert!(out.rows().len() > 1, "multiple groups out");
}

#[test]
fn chaos_bench_smoke_mode_runs() {
    // The §IV-G fault-injection benchmark in --smoke mode: asserts
    // internally that a hung worker is detected within the liveness
    // timeout, that crash teardown leaves zero live tasks and zero pool
    // bytes, and that every query under the seeded chaos storm terminates
    // with a fault-shaped outcome.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_chaos_bench"))
        .arg("--smoke")
        .output()
        .expect("run chaos_bench --smoke");
    assert!(
        out.status.success(),
        "chaos_bench --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("detection"), "detection section present");
    assert!(stdout.contains("teardown/retry"), "teardown section present");
    assert!(stdout.contains("chaos run"), "chaos-run section present");
    assert!(stdout.contains("chaos_bench: ok"), "end marker present");
}
