//! Tier-1 smoke coverage for the benchmark suite: every binary with a
//! `--smoke` mode runs end to end in its own scratch directory, its
//! stdout markers are checked, and the `BENCH_<name>.json` it emits is
//! validated against the required-keys report schema
//! (`presto_bench::report`) — plus tiny fig4/fig6-style join and
//! aggregation queries, so `cargo test -q` exercises the measured code
//! paths without release-build timing runs.
#![allow(clippy::unwrap_used)]

use presto_bench::kernels::{
    baseline_group_by, baseline_join, flat_group_by, flat_join, make_pages, KeyEncoding,
};
use presto_cluster::{Cluster, ClusterConfig};
use presto_common::{Session, Value};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use presto_workload::TpchGenerator;
use std::sync::Arc;

/// Run one benchmark binary in `--smoke` mode inside a fresh scratch
/// directory, assert the given stdout markers, and validate the
/// `BENCH_<name>.json` it emits against the report schema.
fn run_smoke_and_validate(exe: &str, name: &str, markers: &[&str]) {
    let dir = std::env::temp_dir().join(format!("presto-smoke-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let out = std::process::Command::new(exe)
        .arg("--smoke")
        .current_dir(&dir)
        .output()
        .unwrap_or_else(|e| panic!("run {name} --smoke: {e}"));
    assert!(
        out.status.success(),
        "{name} --smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for marker in markers {
        assert!(stdout.contains(marker), "{name}: missing \"{marker}\" in:\n{stdout}");
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    let report = presto_bench::report::validate_file(&path)
        .unwrap_or_else(|e| panic!("{name} emitted an invalid report: {e}"));
    assert_eq!(report.field_str("name").unwrap(), name);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hash_kernels_smoke_mode_runs() {
    // Asserts internally that baseline and flat kernels agree on every
    // encoding.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_hash_kernels"),
        "hash_kernels",
        &["join build+probe", "group-by"],
    );
}

#[test]
fn kernel_library_paths_agree_at_smoke_sizes() {
    for encoding in [KeyEncoding::Flat, KeyEncoding::Dictionary, KeyEncoding::Rle] {
        let build = make_pages(1_500, 64, KeyEncoding::Flat);
        let probe = make_pages(2_500, 64, encoding);
        let b = baseline_join(&build, &probe);
        let f = flat_join(&build, &probe);
        assert_eq!(b.output_rows, f.output_rows, "{encoding:?} join");
        assert_eq!(
            baseline_group_by(&probe).output_rows,
            flat_group_by(&probe).output_rows,
            "{encoding:?} group-by"
        );
    }
}

#[test]
fn shuffle_bench_smoke_mode_runs() {
    // The §IV-E2 shuffle data-plane benchmark: asserts internally that the
    // shatter baseline and the coalescing writer agree on rows and key
    // checksums, that coalesced pages reach at least half the target row
    // count, and that both fetch clients deliver every row.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_shuffle_bench"),
        "shuffle",
        &["hash-partitioned sink", "exchange fetch"],
    );
}

#[test]
fn telemetry_bench_smoke_mode_runs() {
    // The §VII telemetry benchmark: asserts internally that the
    // per-operator stats hooks cost under 3% on the group-by pipeline,
    // that metrics snapshots round-trip through JSON, that the Chrome
    // trace export parses with events present, and measures the per-query
    // history/histogram bookkeeping cost.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_telemetry_bench"),
        "telemetry",
        &[
            "stats overhead",
            "trace timeline",
            "per-query bookkeeping",
            "telemetry_bench: ok",
        ],
    );
}

#[test]
fn dynfilter_bench_smoke_mode_runs() {
    // The runtime dynamic-filtering benchmark: asserts internally that the
    // filtered and unfiltered runs return identical rows, that at least
    // one filter is published, and that split/stripe/row pruning reduced
    // scan bytes.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_dynfilter_bench"),
        "dynfilter",
        &[
            "star-schema join",
            "zero diffs",
            "scan-bytes reduction",
            "dynfilter_bench: ok",
        ],
    );
}

#[test]
fn fusion_bench_smoke_mode_runs() {
    // The pipeline-fusion benchmark: asserts internally that fused and
    // discrete pipelines return byte-identical rows on both query shapes
    // and that the fused telemetry counters accounted for every scanned
    // row.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_fusion_bench"),
        "fusion",
        &["zero diffs", "fused vs discrete", "fusion_bench: ok"],
    );
}

fn smoke_cluster() -> Cluster {
    let mem = MemoryConnector::new();
    TpchGenerator::new(0.001).load_memory(&mem);
    let mut catalogs = CatalogManager::new();
    catalogs.register("memory", mem as Arc<dyn Connector>);
    Cluster::start(ClusterConfig::test(), catalogs).unwrap()
}

#[test]
fn fig4_style_join_query_runs_on_new_kernels() {
    // The fig4/fig6 benchmarks' core shape: a distributed hash join whose
    // build side goes through the partitioned flat-table path.
    let cluster = smoke_cluster();
    let out = cluster
        .execute(
            "SELECT COUNT(*), SUM(l.extendedprice) \
             FROM orders o, lineitem l WHERE o.orderkey = l.orderkey",
        )
        .unwrap();
    assert!(matches!(out.rows()[0][0], Value::Bigint(n) if n > 0));
}

#[test]
fn fig6_style_aggregation_runs_on_flat_group_by() {
    let cluster = smoke_cluster();
    let out = cluster
        .execute_with_session(
            "SELECT orderkey, COUNT(*), SUM(extendedprice) \
             FROM lineitem GROUP BY orderkey",
            &Session::default(),
        )
        .unwrap();
    assert!(out.rows().len() > 1, "multiple groups out");
}

#[test]
fn chaos_bench_smoke_mode_runs() {
    // The §IV-G fault-injection benchmark: asserts internally that a hung
    // worker is detected within the liveness timeout, that crash teardown
    // leaves zero live tasks and zero pool bytes, and that every query
    // under the seeded chaos storm terminates with a fault-shaped outcome.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_chaos_bench"),
        "chaos",
        &["detection", "teardown/retry", "chaos run", "chaos_bench: ok"],
    );
}

#[test]
fn systables_bench_smoke_mode_runs() {
    // The §VII system-catalog benchmark: asserts internally that the
    // `system.runtime` tables retain the whole workload, that the
    // queries ⋈ operators self-join covers every retained operator row,
    // and measures the snapshot-to-page scan cost.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_systables_bench"),
        "systables",
        &["system-table scan", "system-⋈-system join", "systables_bench: ok"],
    );
}

#[test]
fn spill_bench_smoke_mode_runs() {
    // The §IV-F2 graceful-degradation benchmark: asserts internally that
    // a join+aggregation under an 8 KB memory pool completes by spilling
    // with results byte-identical to the unconstrained run, and that no
    // spill run file outlives the query.
    run_smoke_and_validate(
        env!("CARGO_BIN_EXE_spill_bench"),
        "spill",
        &["identical=true", "slowdown", "spill_bench: ok"],
    );
}
