//! Criterion micro-benchmarks for the columnar page layer: dictionary-aware
//! hashing (§V-E), structure-preserving filters, and the shuffle codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presto_common::{DataType, Schema, Value};
use presto_page::blocks::{DictionaryBlock, VarcharBlock};
use presto_page::hash::hash_columns;
use presto_page::{deserialize_page, serialize_page, Block, Page};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ROWS: usize = 65_536;

fn dictionary_page() -> Page {
    let entries: Vec<String> = (0..16).map(|i| format!("value-{i}")).collect();
    let dict = Arc::new(Block::from(VarcharBlock::from_strs(&entries)));
    let mut rng = StdRng::seed_from_u64(2);
    let ids: Vec<u32> = (0..ROWS).map(|_| rng.gen_range(0..16)).collect();
    Page::new(vec![Block::Dictionary(DictionaryBlock::new(dict, ids))])
}

fn flat_page() -> Page {
    let mut rng = StdRng::seed_from_u64(2);
    let schema = Schema::of(&[("s", DataType::Varchar)]);
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|_| vec![Value::varchar(format!("value-{}", rng.gen_range(0..16)))])
        .collect();
    Page::from_rows(&schema, &rows)
}

fn bench_hashing(c: &mut Criterion) {
    let dict = dictionary_page();
    let flat = flat_page();
    let mut group = c.benchmark_group("row_hashing");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("dictionary_block", |b| b.iter(|| hash_columns(&dict, &[0])));
    group.bench_function("flat_block", |b| b.iter(|| hash_columns(&flat, &[0])));
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let dict = dictionary_page();
    let flat = flat_page();
    let positions: Vec<u32> = (0..ROWS as u32).step_by(3).collect();
    let mut group = c.benchmark_group("block_filter");
    group.throughput(Throughput::Elements(positions.len() as u64));
    group.bench_function("dictionary_block", |b| b.iter(|| dict.filter(&positions)));
    group.bench_function("flat_block", |b| b.iter(|| flat.filter(&positions)));
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let page = flat_page();
    let bytes = serialize_page(&page);
    let mut group = c.benchmark_group("page_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serialize", |b| b.iter(|| serialize_page(&page)));
    group.bench_function("deserialize", |b| {
        b.iter(|| deserialize_page(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hashing, bench_filter, bench_codec);
criterion_main!(benches);
