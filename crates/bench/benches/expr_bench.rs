//! Criterion micro-benchmarks for expression evaluation (§V-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use presto_common::{DataType, Schema, Session, Value};
use presto_expr::processor::process_interpreted;
use presto_expr::{ArithOp, CmpOp, Expr, PageProcessor};
use presto_page::Page;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_page(rows: usize) -> Page {
    let schema = Schema::of(&[
        ("a", DataType::Bigint),
        ("b", DataType::Bigint),
        ("x", DataType::Double),
    ]);
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Bigint(rng.gen_range(0..1_000_000)),
                Value::Bigint(rng.gen_range(1..100)),
                Value::Double(rng.gen_range(0.0..1.0)),
            ]
        })
        .collect();
    Page::from_rows(&schema, &data)
}

fn exprs() -> (Expr, Vec<Expr>) {
    let filter = Expr::cmp(
        CmpOp::Gt,
        Expr::column(2, DataType::Double),
        Expr::literal(0.25f64),
    );
    let proj = vec![Expr::arith(
        ArithOp::Add,
        Expr::arith(
            ArithOp::Mul,
            Expr::column(0, DataType::Bigint),
            Expr::literal(7i64),
        ),
        Expr::column(1, DataType::Bigint),
    )];
    (filter, proj)
}

fn bench_evaluators(c: &mut Criterion) {
    let rows = 65_536usize;
    let page = test_page(rows);
    let (filter, proj) = exprs();
    let mut group = c.benchmark_group("expression_evaluation");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function(BenchmarkId::new("compiled", rows), |b| {
        let mut processor = PageProcessor::new(Some(&filter), &proj, &Session::default());
        b.iter(|| processor.process(&page).unwrap().row_count())
    });
    group.bench_function(BenchmarkId::new("interpreted", rows), |b| {
        b.iter(|| {
            process_interpreted(Some(&filter), &proj, &page)
                .unwrap()
                .row_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_evaluators);
criterion_main!(benches);
