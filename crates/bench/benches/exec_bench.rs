//! Criterion micro-benchmarks for the execution operators: hash
//! aggregation, hash join build/probe, and the shuffle buffer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presto_common::{DataType, Schema, Value};
use presto_exec::agg::{AggPhase, AggSpec, HashAggregationOperator};
use presto_exec::join::{HashBuilderOperator, JoinBridge, LookupJoinOperator, ProbeJoinType};
use presto_exec::Operator;
use presto_expr::{AggregateFunction, AggregateKind};
use presto_page::Page;
use presto_shuffle::OutputBuffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ROWS: usize = 65_536;

fn kv_page(rows: usize, key_range: i64, seed: u64) -> Page {
    let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Bigint(rng.gen_range(0..key_range)),
                Value::Bigint(rng.gen_range(0..100)),
            ]
        })
        .collect();
    Page::from_rows(&schema, &data)
}

fn bench_aggregation(c: &mut Criterion) {
    let page = kv_page(ROWS, 1024, 3);
    let mut group = c.benchmark_group("hash_aggregation");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("sum_group_by_1024_keys", |b| {
        b.iter(|| {
            let mut op = HashAggregationOperator::new(
                AggPhase::Single,
                vec![0],
                vec![DataType::Bigint],
                vec![AggSpec {
                    function: AggregateFunction::new(AggregateKind::Sum, Some(DataType::Bigint))
                        .unwrap(),
                    input: Some(1),
                }],
                false,
            );
            op.add_input(page.clone()).unwrap();
            op.finish();
            op.output().unwrap().unwrap().row_count()
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let build = kv_page(8_192, 8_192, 4);
    let probe = kv_page(ROWS, 8_192, 5);
    let schema = Schema::of(&[("k", DataType::Bigint), ("v", DataType::Bigint)]);
    let mut group = c.benchmark_group("hash_join");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function("build_8k", |b| {
        b.iter(|| {
            let bridge = JoinBridge::new(vec![0], 1);
            let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
            builder.add_input(build.clone()).unwrap();
            builder.finish();
            bridge.table().unwrap().row_count()
        })
    });
    group.bench_function("probe_64k_against_8k", |b| {
        let bridge = JoinBridge::new(vec![0], 1);
        let mut builder = HashBuilderOperator::new(Arc::clone(&bridge));
        builder.add_input(build.clone()).unwrap();
        builder.finish();
        b.iter(|| {
            let mut join = LookupJoinOperator::new(
                Arc::clone(&bridge),
                ProbeJoinType::Inner,
                vec![0],
                schema.clone(),
                schema.clone(),
                None,
            );
            join.add_input(probe.clone()).unwrap();
            join.output().unwrap().map(|p| p.row_count()).unwrap_or(0)
        })
    });
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let page = kv_page(8_192, 1024, 6);
    let mut group = c.benchmark_group("shuffle_buffer");
    group.throughput(Throughput::Elements(8_192));
    group.bench_function("enqueue_poll_ack", |b| {
        b.iter(|| {
            let buffer = OutputBuffer::new(1, 64 << 20);
            buffer.enqueue(0, &page);
            let r = buffer.poll(0, 0, usize::MAX);
            buffer.poll(0, r.next_token, usize::MAX);
            r.pages.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_join, bench_shuffle);
criterion_main!(benches);
