//! Relational schemas: named, typed column lists.

use crate::error::{PrestoError, Result};
use crate::types::DataType;
use std::fmt;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields. Column name lookup is case-insensitive, like
/// the SQL dialect; positional access is used on the execution hot path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema {
            fields: cols.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Case-insensitive lookup of a column's ordinal position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but producing the user error the analyzer
    /// reports for unknown columns.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| PrestoError::user(format!("column '{name}' does not exist")))
    }

    pub fn data_type(&self, index: usize) -> DataType {
        self.fields[index].data_type
    }

    /// A schema with only the selected columns, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("orderkey", DataType::Bigint),
            ("tax", DataType::Double),
            ("comment", DataType::Varchar),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("OrderKey"), Some(0));
        assert_eq!(s.index_of("TAX"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.resolve("missing").is_err());
    }

    #[test]
    fn project_reorders() {
        let s = schema().project(&[2, 0]);
        assert_eq!(s.field(0).name, "comment");
        assert_eq!(s.field(1).name, "orderkey");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_concatenates() {
        let s = schema().join(&Schema::of(&[("x", DataType::Boolean)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(3).name, "x");
    }

    #[test]
    fn display_format() {
        let s = Schema::of(&[("a", DataType::Bigint)]);
        assert_eq!(s.to_string(), "(a bigint)");
    }
}
