//! Bounded lock-free trace-event timeline (§VII).
//!
//! The paper's workers keep "recent history" of fine-grained runtime
//! events cheaply enough to leave enabled in production. This module is
//! the equivalent: a fixed-capacity ring of [`TraceEvent`]s written with a
//! per-slot seqlock (no mutex anywhere on the record path) and drained by
//! an exporter that renders Chrome `trace_event` JSON loadable in
//! `chrome://tracing` / Perfetto.
//!
//! Writers claim a slot with one `fetch_add` and publish the payload
//! between two releases of the slot's sequence word; readers validate the
//! sequence around the payload read and simply drop slots that were
//! mid-write. The ring overwrites oldest events — tracing never blocks and
//! never grows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What happened. The discriminants are stable (they travel through the
/// packed slot word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// One driver quantum on an executor thread (span; `dur` set).
    DriverQuantum = 0,
    /// A scan driver opened a split (instant).
    SplitStart = 1,
    /// A scan driver drained a split to completion (instant).
    SplitFinish = 2,
    /// A page entered a task's output buffer (instant).
    PageEnqueue = 3,
    /// A page left an exchange client's ready queue (instant).
    PageDequeue = 4,
    /// A memory pool granted a reservation delta (instant).
    MemoryGrant = 5,
    /// Memory was revoked/released back to a pool (instant).
    MemoryRevoke = 6,
}

impl TraceKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::DriverQuantum => "driver_quantum",
            TraceKind::SplitStart => "split_start",
            TraceKind::SplitFinish => "split_finish",
            TraceKind::PageEnqueue => "page_enqueue",
            TraceKind::PageDequeue => "page_dequeue",
            TraceKind::MemoryGrant => "memory_grant",
            TraceKind::MemoryRevoke => "memory_revoke",
        }
    }

    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::DriverQuantum,
            1 => TraceKind::SplitStart,
            2 => TraceKind::SplitFinish,
            3 => TraceKind::PageEnqueue,
            4 => TraceKind::PageDequeue,
            5 => TraceKind::MemoryGrant,
            6 => TraceKind::MemoryRevoke,
            _ => return None,
        })
    }
}

/// One timeline event. `ts_nanos` is relative to the buffer's epoch (its
/// creation instant); spans carry `dur_nanos`, instants leave it zero.
/// `pid`/`tid` map onto Chrome's process/thread lanes (worker / query
/// here); `a` and `b` are kind-specific payloads (rows, bytes, deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: TraceKind,
    pub ts_nanos: u64,
    pub dur_nanos: u64,
    pub pid: u32,
    pub tid: u32,
    pub a: u64,
    pub b: u64,
}

/// One ring slot: a seqlock word plus the event packed into atomics so
/// concurrent wrap-around writes are racy-by-value, never UB.
struct Slot {
    /// Even = stable (value is 2*(wraps+1)), odd = write in progress.
    seq: AtomicU64,
    /// kind (low 8 bits) | pid << 8 | tid << 40 is too tight for u32 ids,
    /// so: word0 = kind | (pid as u64) << 8, word1 = tid.
    word0: AtomicU64,
    tid: AtomicU64,
    ts: AtomicU64,
    dur: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The bounded lock-free ring.
pub struct TraceBuffer {
    epoch: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceBuffer {
    /// Create a ring with `capacity` slots (rounded up to at least 16).
    pub fn new(capacity: usize) -> Arc<TraceBuffer> {
        let capacity = capacity.max(16);
        Arc::new(TraceBuffer {
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    word0: AtomicU64::new(0),
                    tid: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
        })
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not clamped to capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events silently lost to ring wrap-around: every record beyond
    /// capacity overwrote the then-oldest slot. `head` is monotone, so
    /// this is exact accounting, not an estimate — exporters surface it so
    /// a truncated timeline is never mistaken for a complete one.
    pub fn overwritten_events(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Nanoseconds since the buffer's epoch, the `ts` domain of every
    /// event in this ring.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record an instant event stamped now.
    pub fn record(&self, kind: TraceKind, pid: u32, tid: u32, a: u64, b: u64) {
        self.record_at(kind, self.now_nanos(), 0, pid, tid, a, b);
    }

    /// Record a span that started `dur_nanos` ago and ends now.
    pub fn record_span(&self, kind: TraceKind, dur_nanos: u64, pid: u32, tid: u32, a: u64, b: u64) {
        let end = self.now_nanos();
        self.record_at(kind, end.saturating_sub(dur_nanos), dur_nanos, pid, tid, a, b);
    }

    /// Record with an explicit timestamp (testing, replay).
    #[allow(clippy::too_many_arguments)]
    pub fn record_at(
        &self,
        kind: TraceKind,
        ts_nanos: u64,
        dur_nanos: u64,
        pid: u32,
        tid: u32,
        a: u64,
        b: u64,
    ) {
        let n = self.slots.len() as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % n) as usize];
        // Seqlock write: odd marks in-progress; the stable value encodes
        // the wrap generation so a reader that observes the same even
        // value before and after knows the payload is coherent.
        let stable = (idx / n + 1) * 2;
        slot.seq.store(stable - 1, Ordering::Release);
        slot.word0
            .store(kind as u8 as u64 | ((pid as u64) << 8), Ordering::Relaxed);
        slot.tid.store(tid as u64, Ordering::Relaxed);
        slot.ts.store(ts_nanos, Ordering::Relaxed);
        slot.dur.store(dur_nanos, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(stable, Ordering::Release);
    }

    /// Copy out every stable event, oldest first. Slots being written
    /// while we read are skipped (the writer wins).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let word0 = slot.word0.load(Ordering::Relaxed);
            let tid = slot.tid.load(Ordering::Relaxed);
            let ts = slot.ts.load(Ordering::Relaxed);
            let dur = slot.dur.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten while reading
            }
            let Some(kind) = TraceKind::from_u8((word0 & 0xff) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                kind,
                ts_nanos: ts,
                dur_nanos: dur,
                pid: (word0 >> 8) as u32,
                tid: tid as u32,
                a,
                b,
            });
        }
        out.sort_by_key(|e| e.ts_nanos);
        out
    }

    /// Render the current contents as Chrome `trace_event` JSON (the
    /// "JSON Array Format" wrapped in an object, which both
    /// `chrome://tracing` and Perfetto accept). Spans become `ph:"X"`
    /// complete events, instants `ph:"i"`; `ts`/`dur` are microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        // Metadata first: how many events the ring dropped, so consumers
        // know whether the timeline is complete.
        out.push_str(&format!(
            "{{\"displayTimeUnit\":\"ms\",\"overwrittenEvents\":{},\"traceEvents\":[",
            self.overwritten_events()
        ));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = if e.kind == TraceKind::DriverQuantum {
                "X"
            } else {
                "i"
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"presto\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
                e.kind.name(),
                ph,
                e.ts_nanos as f64 / 1_000.0,
                e.pid,
                e.tid,
            ));
            if ph == "X" {
                out.push_str(&format!(",\"dur\":{:.3}", e.dur_nanos as f64 / 1_000.0));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(",\"args\":{{\"a\":{},\"b\":{}}}}}", e.a, e.b));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let buf = TraceBuffer::new(64);
        buf.record_at(TraceKind::SplitStart, 10, 0, 1, 7, 0, 0);
        buf.record_at(TraceKind::SplitFinish, 30, 0, 1, 7, 0, 0);
        buf.record_at(TraceKind::DriverQuantum, 20, 5, 2, 9, 1, 0);
        let events = buf.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::SplitStart);
        assert_eq!(events[1].kind, TraceKind::DriverQuantum);
        assert_eq!(events[1].dur_nanos, 5);
        assert_eq!(events[2].ts_nanos, 30);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let buf = TraceBuffer::new(16);
        for i in 0..100u64 {
            buf.record_at(TraceKind::PageEnqueue, i, 0, 0, 0, 0, i);
        }
        let events = buf.snapshot();
        assert_eq!(events.len(), 16);
        assert!(events.iter().all(|e| e.b >= 84), "only newest survive");
        assert_eq!(buf.recorded(), 100);
        assert_eq!(buf.overwritten_events(), 84, "loss is accounted exactly");
    }

    #[test]
    fn overwrite_counter_stays_zero_until_full() {
        let buf = TraceBuffer::new(16);
        for i in 0..16u64 {
            buf.record_at(TraceKind::PageEnqueue, i, 0, 0, 0, 0, i);
            assert_eq!(buf.overwritten_events(), 0);
        }
        buf.record_at(TraceKind::PageEnqueue, 16, 0, 0, 0, 0, 16);
        assert_eq!(buf.overwritten_events(), 1);
        assert!(buf.to_chrome_trace().contains("\"overwrittenEvents\":1"));
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        let buf = TraceBuffer::new(32);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let b = std::sync::Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    b.record(TraceKind::MemoryGrant, t, t, i, i * 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for e in buf.snapshot() {
            assert_eq!(e.b, e.a * 2, "payload words must be coherent");
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let buf = TraceBuffer::new(16);
        buf.record_span(TraceKind::DriverQuantum, 1_000, 3, 4, 42, 0);
        buf.record(TraceKind::PageEnqueue, 1, 2, 4096, 0);
        let json = buf.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"driver_quantum\""));
    }
}
