//! Civil-calendar conversions for DATE/TIMESTAMP values.
//!
//! Dates are days since 1970-01-01 in the proleptic Gregorian calendar.
//! The conversions are Howard Hinnant's `civil_from_days`/`days_from_civil`
//! algorithms, exact over the whole i64 day range we use.

/// Convert days-since-epoch to `(year, month, day)`.
pub fn civil_from_days(days: i64) -> (i64, i64, i64) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Convert `(year, month, day)` to days-since-epoch.
pub fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parse an ISO `yyyy-mm-dd` date into days-since-epoch. Returns `None` on
/// malformed input or out-of-range month/day.
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: i64 = parts.next()?.parse().ok()?;
    let d: i64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let days = days_from_civil(y, m, d);
    // Reject normalized-away inputs like 2021-02-31.
    if civil_from_days(days) != (y, m, d) {
        return None;
    }
    Some(days)
}

/// Format days-since-epoch as `yyyy-mm-dd`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(1970, 1, 1), 0);
    }

    #[test]
    fn round_trips() {
        for days in [-100_000, -1, 0, 1, 10_957, 100_000] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1995-03-17"), Some(days_from_civil(1995, 3, 17)));
        assert_eq!(format_date(parse_date("2024-02-29").unwrap()), "2024-02-29");
        assert_eq!(parse_date("2021-02-31"), None);
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("2021-13-01"), None);
    }
}
