//! Deterministic fault-injection primitives (§IV-G).
//!
//! The chaos connector, the cluster-level `ChaosSchedule`, and the shuffle
//! client's retry jitter all derive their randomness from the same seeded
//! SplitMix64 stream so a failing chaos run reproduces bit-for-bit from its
//! seed alone. The seed comes from the `PRESTO_CHAOS_SEED` environment
//! variable when set, so a CI failure's schedule can be replayed locally.

/// The environment variable consulted by [`seed_from_env`].
pub const CHAOS_SEED_ENV: &str = "PRESTO_CHAOS_SEED";

/// Resolve the chaos seed: `PRESTO_CHAOS_SEED` when set and parseable,
/// otherwise `default`.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var(CHAOS_SEED_ENV)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// One SplitMix64 scrambling round: a cheap, high-quality stateless mixer.
/// Used directly for per-item decisions (hash a split id with the seed) and
/// as the core of [`ChaosRng`].
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic seeded generator for chaos schedules. Intentionally tiny:
/// fault injection needs reproducibility, not statistical perfection.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform in `[0, n)`. Modulo bias is negligible for the small ranges
    /// chaos schedules use (worker counts, event kinds).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below needs a non-empty range");
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = ChaosRng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaosRng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = ChaosRng::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = ChaosRng::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mix_is_stateless_and_nontrivial() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
        assert_ne!(mix(0), 0);
    }

    #[test]
    fn env_seed_overrides_default() {
        // Serialize around the process-global env var.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock();
        std::env::remove_var(CHAOS_SEED_ENV);
        assert_eq!(seed_from_env(9), 9);
        std::env::set_var(CHAOS_SEED_ENV, "1234");
        assert_eq!(seed_from_env(9), 1234);
        std::env::set_var(CHAOS_SEED_ENV, "not a number");
        assert_eq!(seed_from_env(9), 9);
        std::env::remove_var(CHAOS_SEED_ENV);
    }
}
