//! Shared foundation types for the presto-rs engine.
//!
//! This crate holds everything the rest of the workspace agrees on: the SQL
//! [`types::DataType`] system, single-row [`value::Value`]s, table
//! [`schema::Schema`]s, strongly-typed identifiers for queries / stages /
//! tasks / splits, the [`error::PrestoError`] hierarchy (with the
//! user/internal/resource/external classification the coordinator uses for
//! retry decisions), per-query [`session::Session`] configuration, and the
//! statistics model ([`stats`]) shared by connectors and the cost-based
//! optimizer.

pub mod chaos;
pub mod error;
pub mod histogram;
pub mod id;
pub mod json;
pub mod schema;
pub mod session;
pub mod stats;
pub mod time;
pub mod trace;
pub mod types;
pub mod value;

pub use error::{ErrorCode, PrestoError, Result};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use id::{NodeId, PlanNodeId, QueryId, StageId, TaskId};
pub use schema::{Field, Schema};
pub use session::Session;
pub use stats::{ColumnStatistics, Estimate, TableStatistics};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
pub use types::DataType;
pub use value::Value;
