//! Error model for the engine.
//!
//! Every failure in presto-rs is a [`PrestoError`] carrying an [`ErrorCode`].
//! The classification mirrors Presto's: *user* errors (bad SQL, type
//! mismatches, limit violations the user can reason about), *internal* errors
//! (engine bugs), *insufficient resource* errors (memory limits), and
//! *external* errors raised by connectors or the (simulated) network.
//! External errors carry a `retryable` flag; the cluster runtime performs the
//! low-level retries described in §IV-G of the paper for retryable external
//! failures only.

use std::fmt;

/// Broad classification of a failure, used by the coordinator to decide
/// whether to retry, to kill a query, or to surface the error to the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Problems in the query text: syntax errors, unknown tables/columns,
    /// type mismatches, unsupported features.
    User,
    /// Violations of engine invariants; always a bug.
    Internal,
    /// Query exceeded a per-node or global memory limit, or the cluster is
    /// out of capacity.
    InsufficientResources,
    /// A connector or transport failure. `retryable` distinguishes transient
    /// faults (which the engine retries transparently) from permanent ones.
    External { retryable: bool },
    /// The query was killed by an administrator, a queue policy, or the
    /// reserved-pool arbitration ("kill the query unblocking most nodes").
    Killed,
    /// A worker node crashed or was declared lost by the coordinator's
    /// liveness detector while the query had tasks on it (§IV-G). Retryable:
    /// re-running the query places tasks only on surviving workers.
    WorkerFailed,
}

impl ErrorCode {
    /// Whether the engine may transparently retry the failed operation.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::External { retryable: true } | ErrorCode::WorkerFailed
        )
    }

    /// Short machine-readable tag, as exported by telemetry counters.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorCode::User => "USER_ERROR",
            ErrorCode::Internal => "INTERNAL_ERROR",
            ErrorCode::InsufficientResources => "INSUFFICIENT_RESOURCES",
            ErrorCode::External { retryable: true } => "EXTERNAL_TRANSIENT",
            ErrorCode::External { retryable: false } => "EXTERNAL_PERMANENT",
            ErrorCode::Killed => "KILLED",
            ErrorCode::WorkerFailed => "WORKER_FAILED",
        }
    }
}

/// The error type used across the whole workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrestoError {
    /// Classification used for retry and reporting decisions.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl PrestoError {
    /// Create an error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        PrestoError {
            code,
            message: message.into(),
        }
    }

    /// A user-facing error (bad query, unknown object, type mismatch).
    pub fn user(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::User, message)
    }

    /// An engine invariant violation.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }

    /// A memory / capacity failure.
    pub fn resources(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::InsufficientResources, message)
    }

    /// A transient external failure that the engine will retry.
    pub fn transient(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::External { retryable: true }, message)
    }

    /// A permanent external failure.
    pub fn external(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::External { retryable: false }, message)
    }

    /// The query was killed by policy.
    pub fn killed(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Killed, message)
    }

    /// A worker carrying one of the query's tasks crashed or went silent.
    pub fn worker_failed(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::WorkerFailed, message)
    }

    /// Whether the engine may transparently retry the failed operation.
    pub fn is_retryable(&self) -> bool {
        self.code.is_retryable()
    }
}

impl fmt::Display for PrestoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.tag(), self.message)
    }
}

impl std::error::Error for PrestoError {}

impl From<std::io::Error> for PrestoError {
    fn from(e: std::io::Error) -> Self {
        // I/O failures come from connectors / spill files; treat interrupted
        // and timed-out operations as transient, the rest as permanent.
        let retryable = matches!(
            e.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::WouldBlock
        );
        PrestoError::new(ErrorCode::External { retryable }, e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T, E = PrestoError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_code() {
        assert!(PrestoError::transient("net blip").is_retryable());
        assert!(!PrestoError::external("corrupt file").is_retryable());
        assert!(!PrestoError::user("bad sql").is_retryable());
        assert!(!PrestoError::internal("oops").is_retryable());
        assert!(!PrestoError::resources("oom").is_retryable());
        assert!(!PrestoError::killed("admin").is_retryable());
        assert!(PrestoError::worker_failed("node 3 lost").is_retryable());
    }

    #[test]
    fn worker_failed_tag() {
        let e = PrestoError::worker_failed("worker 1 crashed");
        assert_eq!(e.code.tag(), "WORKER_FAILED");
        assert_eq!(e.to_string(), "WORKER_FAILED: worker 1 crashed");
    }

    #[test]
    fn display_includes_tag_and_message() {
        let e = PrestoError::user("line 1:5: no such table t");
        assert_eq!(e.to_string(), "USER_ERROR: line 1:5: no such table t");
    }

    #[test]
    fn io_error_classification() {
        let t: PrestoError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(t.is_retryable());
        let p: PrestoError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(!p.is_retryable());
    }
}
