//! Log-bucketed latency histograms (§VII, and the latency tables of §VI).
//!
//! An HDR-style histogram with no dependencies: values (nanoseconds) land
//! in log-linear buckets — each power-of-two octave is split into 16
//! linear sub-buckets — so quantile estimates carry at most ~6.25%
//! relative error while the whole structure is a fixed ~8KB of atomic
//! counters. Recording is one atomic increment (plus a max update), so
//! histograms can sit on the query hot path; merging is element-wise
//! addition, so per-class histograms roll up into cluster totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 linear buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the linear range cover the full u64 domain.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index for a value: exact below 16, log-linear above.
fn bucket_index(v: u64) -> usize {
    let msb = 63 - (v | 1).leading_zeros();
    if msb < SUB_BITS {
        v as usize
    } else {
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (octave + 1) * SUB + sub
    }
}

/// Smallest value mapping to `index` (the bucket's lower bound).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let octave = (index / SUB - 1) as u32;
        let sub = (index % SUB) as u64;
        (1u64 << (octave + SUB_BITS)) | (sub << octave)
    }
}

/// Derived percentiles of one histogram, cheap to copy and serialize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_nanos: u64,
    pub p95_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
}

/// A mergeable, constant-memory, lock-free latency histogram.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (nanoseconds).
    pub fn record(&self, nanos: u64) {
        self.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (mean = sum / count).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in [0, 1]: the lower bound of the bucket
    /// holding the q-th observation, clamped to the recorded max (so
    /// `quantile(1.0)` is exact). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        if rank >= total {
            // The top-ranked observation is the max itself; returning the
            // bucket floor here would understate it by up to one bucket.
            return self.max();
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(i).min(self.max());
            }
        }
        self.max()
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// count / p50 / p95 / p99 / max in one pass-ish snapshot.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_nanos: self.quantile(0.50),
            p95_nanos: self.quantile(0.95),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max(),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count)
            .field("p50_nanos", &s.p50_nanos)
            .field("p95_nanos", &s.p95_nanos)
            .field("p99_nanos", &s.p99_nanos)
            .field("max_nanos", &s.max_nanos)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn bucket_floor_inverts_bucket_index() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor({i}) = {floor} > {v}");
            // The next bucket starts above v.
            if i + 1 < BUCKETS {
                assert!(bucket_floor(i + 1) > v, "v {v} not inside bucket {i}");
            }
        }
        // Indices are monotone in value.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1µs .. 10ms
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        // Log-linear bucketing: ≤ 1/16 relative error, from below.
        assert!((4_400_000.0..=5_000_000.0).contains(&p50), "p50 {p50}");
        assert!((9_200_000.0..=9_900_000.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10_000_000);
    }

    #[test]
    fn merge_combines_distributions() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.max(), 1_000_099);
        assert!(a.quantile(0.25) < 100);
        assert!(a.quantile(0.75) >= 1_000_000 * 15 / 16);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencyHistogram::new().summary();
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.max(), 7 * 1_000 + 9_999);
    }
}
