//! Statistics model shared by connectors and the cost-based optimizer.
//!
//! §IV-C of the paper: "Presto already supports two cost-based optimizations
//! that take table and column statistics into account — join strategy
//! selection and join re-ordering." Connectors report [`TableStatistics`]
//! through the Metadata API; the optimizer propagates them through plan
//! nodes using the classic selectivity heuristics implemented in the planner
//! crate. Statistics are estimates, so every quantity is an [`Estimate`] that
//! can be *unknown* — the optimizer must degrade gracefully (Fig. 6's
//! "Hive/HDFS (no stats)" configuration is exactly the all-unknown case).

use crate::value::Value;

/// A possibly-unknown non-negative estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate(Option<f64>);

impl Estimate {
    pub const UNKNOWN: Estimate = Estimate(None);

    pub fn exact(v: f64) -> Estimate {
        debug_assert!(v >= 0.0);
        Estimate(Some(v))
    }

    pub fn unknown() -> Estimate {
        Estimate(None)
    }

    pub fn value(&self) -> Option<f64> {
        self.0
    }

    pub fn is_known(&self) -> bool {
        self.0.is_some()
    }

    /// Map the underlying value, preserving unknown-ness.
    pub fn map(self, f: impl FnOnce(f64) -> f64) -> Estimate {
        Estimate(self.0.map(|v| f(v).max(0.0)))
    }

    /// Combine two estimates; unknown is contagious.
    pub fn zip(self, other: Estimate, f: impl FnOnce(f64, f64) -> f64) -> Estimate {
        match (self.0, other.0) {
            (Some(a), Some(b)) => Estimate(Some(f(a, b).max(0.0))),
            _ => Estimate(None),
        }
    }

    /// The estimate value, or `default` when unknown.
    pub fn or(self, default: f64) -> f64 {
        self.0.unwrap_or(default)
    }
}

/// Per-column statistics, as collected by `ANALYZE`-style passes in the
/// connectors at write time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStatistics {
    /// Number of distinct non-null values.
    pub distinct_count: Estimate,
    /// Fraction of rows that are NULL, in `[0, 1]`.
    pub null_fraction: Estimate,
    /// Minimum non-null value, when the type is orderable and data nonempty.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Average size in bytes of one value (used for buffer sizing estimates).
    pub avg_size: Estimate,
}

impl ColumnStatistics {
    /// Statistics for a column about which nothing is known.
    pub fn unknown() -> ColumnStatistics {
        ColumnStatistics::default()
    }

    /// Selectivity of an equality predicate against this column under the
    /// uniform-distribution assumption: `1 / NDV`, unknown when NDV is.
    pub fn equality_selectivity(&self) -> Estimate {
        self.distinct_count
            .map(|ndv| if ndv > 0.0 { 1.0 / ndv } else { 1.0 })
    }

    /// Selectivity of `col <op> literal` for a range operator, estimated from
    /// the min/max bounds when both are numeric.
    pub fn range_selectivity(&self, lo: Option<&Value>, hi: Option<&Value>) -> Estimate {
        let (min, max) = match (&self.min, &self.max) {
            (Some(min), Some(max)) => (min, max),
            _ => return Estimate::unknown(),
        };
        let (min, max) = match (min.as_f64(), max.as_f64()) {
            (Some(a), Some(b)) if b > a => (a, b),
            // Degenerate or non-numeric domain: fall back to a fixed guess.
            _ => return Estimate::exact(0.25),
        };
        let lo = lo.and_then(|v| v.as_f64()).unwrap_or(min).max(min);
        let hi = hi.and_then(|v| v.as_f64()).unwrap_or(max).min(max);
        let fraction = ((hi - lo) / (max - min)).clamp(0.0, 1.0);
        Estimate::exact(fraction)
    }
}

/// Whole-table statistics, the unit reported by the connector Metadata API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStatistics {
    pub row_count: Estimate,
    /// Parallel to the table schema; empty when no column stats exist.
    pub columns: Vec<ColumnStatistics>,
}

impl TableStatistics {
    pub fn unknown() -> TableStatistics {
        TableStatistics::default()
    }

    pub fn with_row_count(rows: f64) -> TableStatistics {
        TableStatistics {
            row_count: Estimate::exact(rows),
            columns: Vec::new(),
        }
    }

    pub fn column(&self, index: usize) -> ColumnStatistics {
        self.columns.get(index).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_contagious() {
        let known = Estimate::exact(10.0);
        let unknown = Estimate::unknown();
        assert!(!known.zip(unknown, |a, b| a + b).is_known());
        assert_eq!(
            known.zip(Estimate::exact(2.0), |a, b| a * b).value(),
            Some(20.0)
        );
    }

    #[test]
    fn map_clamps_negative() {
        assert_eq!(Estimate::exact(1.0).map(|v| v - 5.0).value(), Some(0.0));
    }

    #[test]
    fn equality_selectivity_from_ndv() {
        let stats = ColumnStatistics {
            distinct_count: Estimate::exact(100.0),
            ..Default::default()
        };
        assert_eq!(stats.equality_selectivity().value(), Some(0.01));
        assert!(!ColumnStatistics::unknown()
            .equality_selectivity()
            .is_known());
    }

    #[test]
    fn range_selectivity_interpolates() {
        let stats = ColumnStatistics {
            min: Some(Value::Bigint(0)),
            max: Some(Value::Bigint(100)),
            ..Default::default()
        };
        // col >= 75 keeps the top quarter of the domain.
        let sel = stats.range_selectivity(Some(&Value::Bigint(75)), None);
        assert!((sel.value().unwrap() - 0.25).abs() < 1e-9);
        // Bounds outside the domain clamp to [0, 1].
        let sel = stats.range_selectivity(Some(&Value::Bigint(-50)), None);
        assert_eq!(sel.value(), Some(1.0));
    }

    #[test]
    fn range_selectivity_unknown_without_bounds() {
        assert!(!ColumnStatistics::unknown()
            .range_selectivity(Some(&Value::Bigint(1)), None)
            .is_known());
    }
}
