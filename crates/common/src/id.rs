//! Strongly-typed identifiers for the moving parts of a distributed query.
//!
//! A query is decomposed into *stages*; each stage runs as one or more
//! *tasks* placed on worker *nodes*; leaf tasks are fed *splits*. The
//! hierarchy mirrors §III/§IV-D of the paper: identifiers nest so that a
//! `TaskId` names its stage and a `StageId` names its query, which makes
//! telemetry and shuffle addressing unambiguous.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cluster-unique identifier for one admitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// One stage (plan fragment) of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId {
    pub query: QueryId,
    pub stage: u32,
}

/// One task: the unit of work the coordinator places on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    pub stage: StageId,
    pub task: u32,
}

/// A worker node in the cluster. The coordinator is not a `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier for a node of a logical or physical query plan. Assigned by the
/// planner; stable across optimization so rules can be traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanNodeId(pub u32);

impl QueryId {
    /// Produce the stage id for fragment `stage` of this query.
    pub fn stage(self, stage: u32) -> StageId {
        StageId { query: self, stage }
    }
}

impl StageId {
    /// Produce the task id for task `task` of this stage.
    pub fn task(self, task: u32) -> TaskId {
        TaskId { stage: self, task }
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.query, self.stage)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.stage, self.task)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for PlanNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Monotonic generator for [`QueryId`]s, used by the coordinator.
#[derive(Debug, Default)]
pub struct QueryIdGenerator {
    next: AtomicU64,
}

impl QueryIdGenerator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn next_id(&self) -> QueryId {
        QueryId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Monotonic generator for [`PlanNodeId`]s, owned by a single planning pass.
#[derive(Debug, Default)]
pub struct PlanNodeIdAllocator {
    next: u32,
}

impl PlanNodeIdAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn next_id(&mut self) -> PlanNodeId {
        let id = PlanNodeId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_display() {
        let q = QueryId(7);
        let s = q.stage(2);
        let t = s.task(3);
        assert_eq!(t.stage.query, q);
        assert_eq!(format!("{t}"), "q7.2.3");
        assert_eq!(format!("{}", NodeId(4)), "node-4");
    }

    #[test]
    fn generators_are_monotonic() {
        let g = QueryIdGenerator::new();
        assert!(g.next_id() < g.next_id());
        let mut a = PlanNodeIdAllocator::new();
        assert!(a.next_id() < a.next_id());
    }

    #[test]
    fn ids_order_hierarchically() {
        // Tasks sort first by query, then stage, then task index — useful for
        // deterministic telemetry output.
        let a = QueryId(1).stage(0).task(5);
        let b = QueryId(1).stage(1).task(0);
        let c = QueryId(2).stage(0).task(0);
        assert!(a < b && b < c);
    }
}
