//! Per-query session configuration.
//!
//! A [`Session`] carries the knobs a query runs under. The defaults mirror
//! the behaviour the paper describes for production; benchmarks flip
//! individual flags to produce ablations (e.g. Fig. 6 disables cost-based
//! optimization to model the "no stats" configuration, the §V-B bench turns
//! off compiled expression evaluation, the §V-D bench disables lazy loading).

use std::time::Duration;

/// Join distribution strategy preference (§IV-C: "join strategy selection").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinDistribution {
    /// Let the cost-based optimizer decide using build-side size estimates.
    Automatic,
    /// Always replicate the build side to every probe task.
    Broadcast,
    /// Always hash-partition both sides.
    Partitioned,
}

/// Stage scheduling policy (§IV-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Schedule all stages concurrently; minimizes wall-clock latency.
    AllAtOnce,
    /// Schedule strongly-connected components of the data flow graph in
    /// topological order (e.g. hash-build before probe); minimizes memory.
    Phased,
}

/// Per-query configuration. Cheap to clone; the coordinator snapshots one
/// per query at admission time.
#[derive(Debug, Clone)]
pub struct Session {
    /// Default catalog for unqualified table names.
    pub catalog: String,
    /// Use the compiled (fused, vectorized) expression evaluator instead of
    /// the row interpreter (§V-B).
    pub compiled_expressions: bool,
    /// Let connectors produce lazy blocks that decode on first access (§V-D).
    pub lazy_loading: bool,
    /// Operate directly on dictionary/RLE blocks where possible (§V-E).
    pub process_compressed: bool,
    /// Enable stats-based join reordering (§IV-C).
    pub join_reordering: bool,
    /// Join distribution strategy selection.
    pub join_distribution: JoinDistribution,
    /// Build sides estimated below this many rows are broadcast when
    /// `join_distribution` is `Automatic`.
    pub broadcast_threshold_rows: f64,
    /// Stage scheduling policy.
    pub scheduling_policy: SchedulingPolicy,
    /// Maximum uninterrupted run of one split on a thread (§IV-F1; the paper
    /// uses one second — scaled down for the simulated cluster).
    pub quanta: Duration,
    /// Target rows per page produced by operators.
    pub target_page_rows: usize,
    /// Target bytes per shuffle page: hash-partitioned output coalesces
    /// rows until an accumulator reaches `target_page_rows` or this many
    /// bytes, whichever comes first (§IV-E2).
    pub shuffle_target_page_bytes: usize,
    /// Serialized shuffle pages at least this long are LZ-compressed on
    /// the wire (`usize::MAX` disables compression).
    pub shuffle_compression_min_bytes: usize,
    /// Upper bound on concurrent exchange polls per fetch round (the
    /// paper's target HTTP request concurrency cap, §IV-E2).
    pub exchange_concurrency: usize,
    /// Number of hash partitions (tasks) for intermediate stages.
    pub hash_partition_count: usize,
    /// Allow spilling revocable state (hash aggregations, sorts, grace
    /// hash joins) to disk.
    pub spill_enabled: bool,
    /// Directory spill run files are written to. `None` uses the OS temp
    /// directory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Upper bound on bytes one task may hold in spill files at once;
    /// exceeding it fails the query with an insufficient-resources error
    /// (`0` = unlimited).
    pub spill_max_bytes: u64,
    /// Chaos hook: every spill write after the first N fails transiently
    /// in this query's tasks (None = off). Exercises the §IV-G retry path
    /// against spill IO like `exchange_chaos_decode_every` does for the
    /// shuffle.
    pub spill_chaos_write_error_after: Option<u64>,
    /// Chaos hook: the spill "disk" holds only this many live bytes before
    /// writes fail transiently, simulating disk-full (None = off).
    pub spill_chaos_disk_capacity: Option<u64>,
    /// Global (cluster-aggregated) user memory limit per query, in bytes.
    pub query_max_memory: u64,
    /// Per-node user memory limit per query, in bytes.
    pub query_max_memory_per_node: u64,
    /// Per-node total (user + system) memory limit per query, in bytes.
    pub query_max_total_memory_per_node: u64,
    /// Dynamically add writer tasks when output stages back up (§IV-E3).
    pub writer_scaling: bool,
    /// Output-buffer utilization above which writer scaling triggers.
    pub writer_scaling_threshold: f64,
    /// Transparent retries for transient external failures (§IV-G).
    pub max_transient_retries: u32,
    /// Coordinator-level whole-query retries for retryable failures
    /// (worker loss, transient external errors that exhausted low-level
    /// retries). `0` disables, matching the paper's stance that query
    /// retry is the client's job; clients that want it opt in here.
    pub query_retry_attempts: u32,
    /// Base delay of the exponential backoff between query retry attempts
    /// (doubled per attempt, plus deterministic jitter).
    pub query_retry_backoff: Duration,
    /// Chaos hook: make every Nth shuffle frame decode fail transiently in
    /// this query's exchange clients (0 = off). Exercises the §IV-G
    /// low-level retry path from `chaos_bench` and tests.
    pub exchange_chaos_decode_every: usize,
    /// Push join build-side key domains into probe-side scans at runtime
    /// (split re-pruning, stripe pruning, row-level membership filter).
    pub dynamic_filtering: bool,
    /// How long a probe-side scan waits for its dynamic filter before
    /// proceeding unpruned. Bounds added latency; never affects results.
    pub dynamic_filter_wait: Duration,
    /// Build-side keys with at most this many distinct values publish an
    /// exact value set; larger domains degrade to min/max + Bloom.
    pub dynamic_filter_max_values: usize,
    /// Fuse supported scan→filter→project[→partial-agg] chains into one
    /// type-specialized loop with selection vectors between stages instead
    /// of materialized pages. Never correctness-bearing: unsupported
    /// chains (or `false`) fall back to the discrete operators.
    pub pipeline_fusion: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            catalog: "memory".to_string(),
            compiled_expressions: true,
            lazy_loading: true,
            process_compressed: true,
            join_reordering: true,
            join_distribution: JoinDistribution::Automatic,
            broadcast_threshold_rows: 10_000.0,
            scheduling_policy: SchedulingPolicy::AllAtOnce,
            quanta: Duration::from_millis(10),
            target_page_rows: 1024,
            shuffle_target_page_bytes: 1 << 20,
            shuffle_compression_min_bytes: 8 << 10,
            exchange_concurrency: 8,
            hash_partition_count: 4,
            spill_enabled: false,
            spill_dir: None,
            spill_max_bytes: 16 << 30,
            spill_chaos_write_error_after: None,
            spill_chaos_disk_capacity: None,
            query_max_memory: 4 << 30,
            query_max_memory_per_node: 1 << 30,
            query_max_total_memory_per_node: 2 << 30,
            writer_scaling: true,
            writer_scaling_threshold: 0.5,
            max_transient_retries: 3,
            query_retry_attempts: 0,
            query_retry_backoff: Duration::from_millis(50),
            exchange_chaos_decode_every: 0,
            dynamic_filtering: true,
            dynamic_filter_wait: Duration::from_millis(500),
            dynamic_filter_max_values: 10_000,
            pipeline_fusion: true,
        }
    }
}

impl Session {
    /// A session with the given default catalog and default knobs.
    pub fn for_catalog(catalog: impl Into<String>) -> Session {
        Session {
            catalog: catalog.into(),
            ..Session::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_production_behaviour() {
        let s = Session::default();
        assert!(s.compiled_expressions);
        assert!(s.lazy_loading);
        assert!(s.process_compressed);
        assert!(s.join_reordering);
        assert_eq!(s.join_distribution, JoinDistribution::Automatic);
        assert_eq!(s.scheduling_policy, SchedulingPolicy::AllAtOnce);
        // Facebook deployments do not spill (§IV-F2).
        assert!(!s.spill_enabled);
        // Spill location defaults to the OS temp dir with a finite disk
        // budget, so enabling spill cannot silently fill a disk.
        assert!(s.spill_dir.is_none());
        assert!(s.spill_max_bytes > 0);
        // Chaos faults are strictly opt-in.
        assert!(s.spill_chaos_write_error_after.is_none());
        assert!(s.spill_chaos_disk_capacity.is_none());
        // Whole-query retry is external by default (§IV-G): off unless the
        // client opts in.
        assert_eq!(s.query_retry_attempts, 0);
        assert_eq!(s.exchange_chaos_decode_every, 0);
        // Dynamic filtering is on by default; the wait deadline bounds the
        // latency cost of waiting for the build side.
        assert!(s.dynamic_filtering);
        assert!(s.dynamic_filter_wait > Duration::ZERO);
        assert!(s.dynamic_filter_max_values > 0);
        // Pipeline fusion is the production path; disabling it is an
        // ablation knob like `compiled_expressions`.
        assert!(s.pipeline_fusion);
    }

    #[test]
    fn for_catalog_sets_catalog() {
        assert_eq!(Session::for_catalog("hive").catalog, "hive");
    }
}
