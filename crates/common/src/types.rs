//! The SQL type system.
//!
//! presto-rs implements the core scalar types of the ANSI dialect described
//! in §IV-A: `BOOLEAN`, `BIGINT`, `DOUBLE`, `VARCHAR`, `DATE` and
//! `TIMESTAMP`. Dates are days since the Unix epoch and timestamps are
//! milliseconds since the epoch, both carried in 64-bit lanes so that the
//! columnar layer only needs a small set of physical representations.

use std::fmt;

/// A scalar SQL data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Boolean,
    Bigint,
    Double,
    Varchar,
    /// Days since 1970-01-01, stored in an i64 lane.
    Date,
    /// Milliseconds since the Unix epoch, stored in an i64 lane.
    Timestamp,
}

impl DataType {
    /// SQL name, as printed by `EXPLAIN` and type-error messages.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Boolean => "boolean",
            DataType::Bigint => "bigint",
            DataType::Double => "double",
            DataType::Varchar => "varchar",
            DataType::Date => "date",
            DataType::Timestamp => "timestamp",
        }
    }

    /// Parse a SQL type name (case-insensitive). Accepts the common aliases
    /// that the TPC tooling and tests use.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "boolean" | "bool" => Some(DataType::Boolean),
            "bigint" | "integer" | "int" | "long" => Some(DataType::Bigint),
            "double" | "real" | "float" | "decimal" => Some(DataType::Double),
            "varchar" | "string" | "text" | "char" => Some(DataType::Varchar),
            "date" => Some(DataType::Date),
            "timestamp" => Some(DataType::Timestamp),
            _ => None,
        }
    }

    /// Whether values of this type are physically stored in an `i64` lane.
    pub fn is_integer_backed(&self) -> bool {
        matches!(
            self,
            DataType::Bigint | DataType::Date | DataType::Timestamp
        )
    }

    /// Whether the type supports ordering comparisons (`<`, `>`, `BETWEEN`,
    /// `ORDER BY`). All our scalar types do, but the hook exists so complex
    /// types can opt out later.
    pub fn is_orderable(&self) -> bool {
        true
    }

    /// Whether this type is numeric (participates in arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Bigint | DataType::Double)
    }

    /// Implicit coercion: can a value of `self` be used where `target` is
    /// expected without an explicit CAST? Mirrors the ANSI numeric ladder
    /// (bigint widens to double) plus date→timestamp.
    pub fn coerces_to(&self, target: DataType) -> bool {
        if *self == target {
            return true;
        }
        matches!(
            (self, target),
            (DataType::Bigint, DataType::Double) | (DataType::Date, DataType::Timestamp)
        )
    }

    /// The common super type of two types under implicit coercion, if any.
    /// Used for comparison operands, `CASE` branches and set operations.
    pub fn common_super_type(a: DataType, b: DataType) -> Option<DataType> {
        if a == b {
            Some(a)
        } else if a.coerces_to(b) {
            Some(b)
        } else if b.coerces_to(a) {
            Some(a)
        } else {
            None
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for t in [
            DataType::Boolean,
            DataType::Bigint,
            DataType::Double,
            DataType::Varchar,
            DataType::Date,
            DataType::Timestamp,
        ] {
            assert_eq!(DataType::parse(t.name()), Some(t));
        }
        assert_eq!(DataType::parse("INT"), Some(DataType::Bigint));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn coercion_ladder() {
        assert!(DataType::Bigint.coerces_to(DataType::Double));
        assert!(!DataType::Double.coerces_to(DataType::Bigint));
        assert!(DataType::Date.coerces_to(DataType::Timestamp));
        assert!(!DataType::Varchar.coerces_to(DataType::Bigint));
    }

    #[test]
    fn common_super_type_is_symmetric() {
        assert_eq!(
            DataType::common_super_type(DataType::Bigint, DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(
            DataType::common_super_type(DataType::Double, DataType::Bigint),
            Some(DataType::Double)
        );
        assert_eq!(
            DataType::common_super_type(DataType::Varchar, DataType::Bigint),
            None
        );
    }

    #[test]
    fn physical_lane_classification() {
        assert!(DataType::Date.is_integer_backed());
        assert!(DataType::Timestamp.is_integer_backed());
        assert!(!DataType::Double.is_integer_backed());
        assert!(DataType::Bigint.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
