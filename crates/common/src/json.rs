//! A minimal JSON value, writer, and parser.
//!
//! The workspace deliberately has no third-party serialization crates, but
//! §VII telemetry needs a wire shape: `ClusterSnapshot` round-trips
//! through this module, and tests validate the Chrome `trace_event`
//! output structurally by parsing it back. Integers are kept in a
//! dedicated `Int` variant so counter round-trips are exact (no f64
//! mantissa loss for values up to `i64::MAX`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{PrestoError, Result};

/// A parsed JSON value. Objects preserve key order via `BTreeMap` (sorted,
/// deterministic output — handy for tests and diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral number (no decimal point / exponent in the source).
    Int(i64),
    /// Any other number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Fetch a required field of an object (error, not panic, on absence:
    /// decoding telemetry must never take a worker down).
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json> {
        self.get(key)
            .ok_or_else(|| PrestoError::internal(format!("json: missing field '{key}'")))
    }

    pub fn field_u64(&self, key: &str) -> Result<u64> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| PrestoError::internal(format!("json: field '{key}' is not a u64")))
    }

    pub fn field_i64(&self, key: &str) -> Result<i64> {
        self.field(key)?
            .as_i64()
            .ok_or_else(|| PrestoError::internal(format!("json: field '{key}' is not an i64")))
    }

    pub fn field_f64(&self, key: &str) -> Result<f64> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| PrestoError::internal(format!("json: field '{key}' is not a number")))
    }

    pub fn field_str<'a>(&'a self, key: &str) -> Result<&'a str> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| PrestoError::internal(format!("json: field '{key}' is not a string")))
    }

    pub fn field_arr<'a>(&'a self, key: &str) -> Result<&'a [Json]> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| PrestoError::internal(format!("json: field '{key}' is not an array")))
    }

    /// Serialize to compact JSON text.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Ensure the text re-parses as a number (not Int) when
                    // it genuinely has a fractional part.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(PrestoError::internal(format!(
                "json: trailing input at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> PrestoError {
        PrestoError::internal(format!("json: {msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for telemetry
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync on UTF-8 boundaries: walk back and take the
                    // whole char from the source.
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let ch_len = utf8_len(b);
                    let chunk = s
                        .get(..ch_len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let text =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(text);
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let v = Json::obj([
            ("name", Json::Str("worker-0 \"main\"\n".to_string())),
            ("count", Json::Int(i64::MAX)),
            ("neg", Json::Int(-42)),
            ("ratio", Json::Num(0.25)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for v in [0i64, 1, -1, 1 << 53, (1 << 53) + 1, i64::MAX, i64::MIN + 1] {
            let parsed = Json::parse(&Json::Int(v).to_string()).unwrap();
            assert_eq!(parsed.as_i64(), Some(v), "value {v}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(
            r#" { "a" : [ 1 , 2.5 , { "b" : "c" } ] , "d" : null } "#,
        )
        .unwrap();
        assert_eq!(v.field_arr("a").unwrap().len(), 3);
        assert_eq!(
            v.field_arr("a").unwrap()[2].field_str("b").unwrap(),
            "c"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("héllo → 世界".to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(
            Json::parse(r#""Aé""#).unwrap(),
            Json::Str("Aé".to_string())
        );
    }
}
