//! Single scalar values.
//!
//! [`Value`] is the row-oriented representation used at the edges of the
//! engine: literals in the AST, constant folding in the optimizer, result
//! rows handed to clients, and statistics min/max bounds. The hot path never
//! touches `Value` — operators work on columnar blocks — so this type
//! optimizes for convenience and total ordering rather than speed.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::types::DataType;

/// A single, possibly-NULL scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Boolean(bool),
    Bigint(i64),
    Double(f64),
    Varchar(Arc<str>),
    /// Days since the epoch.
    Date(i64),
    /// Milliseconds since the epoch.
    Timestamp(i64),
}

impl Value {
    /// Build a varchar value from anything string-like.
    pub fn varchar(s: impl AsRef<str>) -> Value {
        Value::Varchar(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL (whose type is
    /// context-dependent).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Bigint(_) => Some(DataType::Bigint),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret this value as the i64 lane used by the columnar layer.
    /// Booleans become 0/1. Returns `None` for NULL, doubles and varchars.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Bigint(v) | Value::Date(v) | Value::Timestamp(v) => Some(*v),
            Value::Boolean(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Numeric view widening bigint to double; used by arithmetic folding.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Bigint(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Implicitly coerce to `target` per [`DataType::coerces_to`]; identity
    /// when already of the target type; NULL coerces to anything.
    pub fn coerce_to(&self, target: DataType) -> Option<Value> {
        match (self, target) {
            (Value::Null, _) => Some(Value::Null),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Bigint(v), DataType::Double) => Some(Value::Double(*v as f64)),
            // A date at midnight, in milliseconds.
            (Value::Date(d), DataType::Timestamp) => {
                Some(Value::Timestamp(d * 24 * 60 * 60 * 1000))
            }
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`); numbers
    /// compare across bigint/double. Non-comparable types return `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (Value::Varchar(a), Value::Varchar(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Timestamp(b)) => Some((a * 86_400_000).cmp(b)),
            (Value::Timestamp(a), Value::Date(b)) => Some(a.cmp(&(b * 86_400_000))),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

/// Total equality, with NULL == NULL and NaN == NaN, so `Value` can key hash
/// maps (e.g. GROUP BY state in tests, metadata maps). SQL `=` semantics use
/// [`Value::sql_cmp`] instead.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Boolean(a), Value::Boolean(b)) => a == b,
            (Value::Bigint(a), Value::Bigint(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Varchar(a), Value::Varchar(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Timestamp(a), Value::Timestamp(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Boolean(b) => b.hash(state),
            Value::Bigint(v) | Value::Date(v) | Value::Timestamp(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Varchar(s) => s.hash(state),
        }
    }
}

/// Total order used for min/max statistics and ORDER BY on materialized
/// values: NULLs sort last, NaN sorts after all numbers, mismatched types
/// order by type tag. SQL comparisons should use [`Value::sql_cmp`].
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Boolean(_) => 0,
                Value::Bigint(_) | Value::Double(_) => 1,
                Value::Varchar(_) => 2,
                Value::Date(_) => 3,
                Value::Timestamp(_) => 4,
                Value::Null => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            _ => self
                .sql_cmp(other)
                .unwrap_or_else(|| rank(self).cmp(&rank(other))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Bigint(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(s) => f.write_str(s),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Timestamp(t) => write!(f, "timestamp({t})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Bigint(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::varchar(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::varchar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_in_sql_cmp() {
        assert_eq!(Value::Null.sql_cmp(&Value::Bigint(1)), None);
        assert_eq!(Value::Bigint(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Bigint(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Bigint(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn date_timestamp_comparison() {
        let d = Value::Date(1); // 1970-01-02
        let t = Value::Timestamp(86_400_000);
        assert_eq!(d.sql_cmp(&t), Some(Ordering::Equal));
    }

    #[test]
    fn total_order_puts_null_last() {
        let mut vs = vec![Value::Null, Value::Bigint(3), Value::Bigint(1)];
        vs.sort();
        assert_eq!(vs, vec![Value::Bigint(1), Value::Bigint(3), Value::Null]);
    }

    #[test]
    fn nan_is_self_equal_for_hashing() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::NAN);
        assert_eq!(a, b);
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Bigint(2).coerce_to(DataType::Double),
            Some(Value::Double(2.0))
        );
        assert_eq!(
            Value::Date(1).coerce_to(DataType::Timestamp),
            Some(Value::Timestamp(86_400_000))
        );
        assert_eq!(Value::varchar("x").coerce_to(DataType::Bigint), None);
        assert_eq!(Value::Null.coerce_to(DataType::Bigint), Some(Value::Null));
    }

    #[test]
    fn boolean_as_i64_lane() {
        assert_eq!(Value::Boolean(true).as_i64(), Some(1));
        assert_eq!(Value::Boolean(false).as_i64(), Some(0));
    }
}
