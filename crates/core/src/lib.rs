//! presto-core: the public API facade.
//!
//! [`PrestoEngine`] embeds a full simulated Presto cluster — coordinator,
//! workers, memory pools, schedulers — behind a two-method API: mount
//! catalogs, run SQL. It is the entry point a downstream user adopts; the
//! underlying crates remain available for surgical use (custom connectors
//! implement [`presto_connector::Connector`]; benchmarks drive
//! [`presto_cluster::Cluster`] directly).
//!
//! ```
//! use presto_core::PrestoEngine;
//! use presto_common::{DataType, Schema, Value};
//!
//! let engine = PrestoEngine::builder().build().unwrap();
//! engine.memory_connector().load_rows(
//!     "people",
//!     Schema::of(&[("name", DataType::Varchar), ("age", DataType::Bigint)]),
//!     &[
//!         vec![Value::varchar("ada"), Value::Bigint(36)],
//!         vec![Value::varchar("grace"), Value::Bigint(45)],
//!     ],
//! );
//! let result = engine.execute("SELECT name FROM people WHERE age > 40").unwrap();
//! assert_eq!(result.rows()[0][0], Value::varchar("grace"));
//! ```

use presto_cache::MetadataCache;
use presto_cluster::{Cluster, ClusterConfig, QueryResult};
use presto_common::{Result, Session};
use presto_connector::{CatalogManager, Connector};
use presto_connectors::MemoryConnector;
use std::sync::Arc;

pub use presto_cluster::QueryError;
pub use presto_common as common;
pub use presto_connector as connector;

/// Builder for [`PrestoEngine`].
pub struct EngineBuilder {
    config: ClusterConfig,
    catalogs: CatalogManager,
    memory: Arc<MemoryConnector>,
    cache: Option<Arc<MetadataCache>>,
}

impl EngineBuilder {
    /// Override the cluster shape (workers, threads, memory, queueing).
    pub fn config(mut self, config: ClusterConfig) -> EngineBuilder {
        self.config = config;
        self
    }

    /// Mount a connector under a catalog name.
    pub fn catalog(
        mut self,
        name: impl Into<String>,
        connector: Arc<dyn Connector>,
    ) -> EngineBuilder {
        self.catalogs.register(name, connector);
        self
    }

    /// Share a [`MetadataCache`] between the engine and connectors built
    /// with `with_cache` constructors. Without this, the engine creates
    /// its own cache from `config.cache`.
    pub fn metadata_cache(mut self, cache: Arc<MetadataCache>) -> EngineBuilder {
        self.cache = Some(cache);
        self
    }

    /// Start the cluster.
    pub fn build(self) -> Result<PrestoEngine> {
        let cache = self
            .cache
            .unwrap_or_else(|| MetadataCache::new(self.config.cache.clone()));
        let cluster = Cluster::start_with_cache(self.config, self.catalogs, cache)?;
        Ok(PrestoEngine {
            cluster,
            memory: self.memory,
        })
    }
}

/// An embedded Presto: a running cluster plus a default in-memory catalog.
pub struct PrestoEngine {
    cluster: Cluster,
    memory: Arc<MemoryConnector>,
}

impl PrestoEngine {
    /// Builder with the default config and a `memory` catalog pre-mounted.
    pub fn builder() -> EngineBuilder {
        let memory = MemoryConnector::new();
        let mut catalogs = CatalogManager::new();
        catalogs.register("memory", Arc::clone(&memory) as Arc<dyn Connector>);
        EngineBuilder {
            config: ClusterConfig::default(),
            catalogs,
            memory,
            cache: None,
        }
    }

    /// An engine with default settings.
    pub fn new() -> Result<PrestoEngine> {
        Self::builder().build()
    }

    /// The built-in `memory` catalog, for loading test/demo data.
    pub fn memory_connector(&self) -> &Arc<MemoryConnector> {
        &self.memory
    }

    /// Run SQL with default session settings; blocks until complete.
    pub fn execute(&self, sql: &str) -> std::result::Result<QueryResult, QueryError> {
        self.cluster.execute(sql)
    }

    /// Run SQL under an explicit [`Session`].
    pub fn execute_with_session(
        &self,
        sql: &str,
        session: &Session,
    ) -> std::result::Result<QueryResult, QueryError> {
        self.cluster.execute_with_session(sql, session)
    }

    /// Submit a query concurrently.
    pub fn submit(
        &self,
        sql: impl Into<String>,
        session: Session,
    ) -> std::thread::JoinHandle<std::result::Result<QueryResult, QueryError>> {
        self.cluster.submit(sql, session)
    }

    /// The underlying cluster, for telemetry and fault injection.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The metadata cache backing schema, statistics, footer, and split
    /// caching for this engine.
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        self.cluster.metadata_cache()
    }
}
