//! Property tests: a single-shard cache against a reference LRU model.
#![allow(clippy::unwrap_used)]

use presto_cache::{CacheConfig, ShardedCache};
use proptest::prelude::*;

const CAPACITY: u64 = 100;

/// Reference model: entries most-recent-last, evicting from the front
/// while over capacity, skipping inserts heavier than the whole cache.
#[derive(Default)]
struct ModelLru {
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn bytes(&self) -> u64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    fn insert(&mut self, key: u64, weight: u64) {
        if weight > CAPACITY {
            return;
        }
        self.entries.retain(|&(k, _)| k != key);
        while self.bytes() + weight > CAPACITY {
            self.entries.remove(0);
        }
        self.entries.push((key, weight));
    }

    fn get(&mut self, key: u64) -> bool {
        let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) else {
            return false;
        };
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        true
    }

    fn invalidate(&mut self, key: u64) {
        self.entries.retain(|&(k, _)| k != key);
    }
}

proptest! {
    /// Every op sequence leaves the cache agreeing with the model on
    /// membership, entry count, and weighted bytes — and the weighted
    /// size never exceeds capacity at any point.
    #[test]
    fn matches_reference_lru_model(
        ops in proptest::collection::vec((0u8..3, 0u64..8, 1u64..120), 0..100),
    ) {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity_bytes: CAPACITY,
            ttl: None,
        });
        let mut model = ModelLru::default();
        for (kind, key, weight) in ops {
            match kind {
                0 => {
                    cache.insert(key, key * 1000 + weight, weight);
                    model.insert(key, weight);
                }
                1 => {
                    let hit = cache.get(&key).is_some();
                    prop_assert_eq!(hit, model.get(key), "get({}) membership", key);
                }
                _ => {
                    cache.invalidate(&key);
                    model.invalidate(key);
                }
            }
            prop_assert!(
                cache.total_bytes() <= CAPACITY,
                "weighted size {} exceeds capacity",
                cache.total_bytes()
            );
            prop_assert_eq!(cache.total_bytes(), model.bytes());
            prop_assert_eq!(cache.len(), model.entries.len());
        }
        // Final membership matches exactly (strict LRU eviction order).
        for &(key, weight) in &model.entries {
            prop_assert_eq!(cache.get(&key), Some(key * 1000 + weight));
        }
    }
}
