//! Multi-threaded stress: readers race writers, invalidation, and
//! eviction; a reader must never observe an entry that was invalidated
//! before its floor was raised.
#![allow(clippy::unwrap_used)]

use presto_cache::{CacheConfig, ShardedCache};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEYS: usize = 16;

/// Per key: one mutator inserts monotonically increasing generations and
/// occasionally invalidates, raising that key's *floor* (the lowest
/// generation a reader may still observe) strictly after the invalidate.
/// Readers assert every observed value is at or above the floor read
/// *before* the lookup — so a stale (pre-invalidation) entry that
/// resurfaces is caught deterministically.
#[test]
fn readers_never_observe_invalidated_entries() {
    // Small capacity → constant LRU churn alongside the invalidations.
    let cache: Arc<ShardedCache<usize, u64>> = Arc::new(ShardedCache::new(CacheConfig {
        shards: 4,
        capacity_bytes: 2048,
        ttl: None,
    }));
    let global_gen = Arc::new(AtomicU64::new(1));
    let floors: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for key in 0..KEYS {
        let cache = Arc::clone(&cache);
        let global_gen = Arc::clone(&global_gen);
        let floors = Arc::clone(&floors);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut iter = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let g = global_gen.fetch_add(1, Ordering::Relaxed);
                cache.insert(key, g, 64 + (iter % 5) * 16);
                if iter.is_multiple_of(7) {
                    cache.invalidate(&key);
                    // Raise the floor only after the invalidate completed:
                    // any later insert carries a generation > g.
                    floors[key].store(g + 1, Ordering::Release);
                }
                iter += 1;
            }
        }));
    }
    for t in 0..4 {
        let cache = Arc::clone(&cache);
        let floors = Arc::clone(&floors);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut key = t;
            while !stop.load(Ordering::Relaxed) {
                key = (key * 31 + 7) % KEYS;
                let floor = floors[key].load(Ordering::Acquire);
                if let Some(v) = cache.get(&key) {
                    assert!(
                        v >= floor,
                        "stale entry after invalidation: key {key} gen {v} < floor {floor}"
                    );
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Weighted size stayed within bounds through all the churn.
    assert!(cache.total_bytes() <= cache.capacity_bytes());

    // Quiesced: invalidate everything, nothing must remain.
    for key in 0..KEYS {
        cache.invalidate(&key);
    }
    for key in 0..KEYS {
        assert_eq!(cache.get(&key), None);
    }
    assert_eq!(cache.total_bytes(), 0);
    assert!(cache.is_empty());
}
