//! presto-cache: the unified metadata caching subsystem.
//!
//! Presto's warm-query latency at production scale is dominated by
//! repeated metadata work: the coordinator re-reads metastore statistics
//! on every planning cycle (§IV-B) and workers re-parse file footers
//! (stripe min/max + Bloom statistics, §V-C) on every split. "Metadata
//! Caching in Presto" (Wang et al.) shows multi-layer caching of metastore
//! and file metadata is the single biggest lever for warm-query latency.
//!
//! This crate provides one generic building block and three production
//! layers mounted on it:
//!
//! * [`ShardedCache`] — an N-way sharded concurrent cache. Each shard is a
//!   `parking_lot::Mutex` over an LRU map with per-entry byte weights,
//!   capacity + TTL eviction, explicit invalidation, and
//!   hit/miss/eviction/insert counters ([`CacheStats`]).
//! * [`MetadataCache`] — the facade bundling:
//!   1. a **metastore cache** for table schemas and
//!      [`presto_common::TableStatistics`] (write-through invalidated by
//!      sinks),
//!   2. a **PORC footer cache** keyed by `(path, file_len)` so stripe
//!      statistics are parsed once per file instead of once per split,
//!   3. a **split-listing cache** for completed split enumerations of
//!      tables that have not been written since.
//!
//! Cache memory participates in the paper's §IV-F2 memory arbitration: a
//! [`MemoryCharger`] installed by the cluster charges every byte the cache
//! retains as *system* memory against the node pools, so cache growth
//! shrinks query headroom exactly like any other system allocation, and
//! all counters surface through cluster telemetry.

pub mod charge;
pub mod metadata;
pub mod sharded;
pub mod stats;

pub use charge::{MemoryCharger, NoopCharger};
pub use metadata::{FooterKey, MetadataCache, MetadataCacheConfig, SplitListKey};
pub use sharded::{CacheConfig, ShardedCache};
pub use stats::{CacheCounters, CacheStats};
