//! The production facade: metastore, PORC footer, and split-listing caches
//! bundled behind one handle.
//!
//! One [`MetadataCache`] is shared by every connector mounted on a cluster
//! (coordinator-side schema/statistics lookups, worker-side footer opens),
//! so a table warmed by one query stays warm for every later query until a
//! write invalidates it. Keys are namespaced by a *catalog key* — connector
//! kind plus storage root — so two connectors of the same kind mounted at
//! different roots never collide.
//!
//! Layer inventory:
//!
//! * **metastore** — table schemas and [`TableStatistics`] (§IV-B: the
//!   coordinator consults the metastore during planning; §IV-C: statistics
//!   feed the cost-based optimizer). Write-through invalidated by sinks.
//! * **footer** — decoded PORC footers ([`FileMeta`]: stripe min/max,
//!   Bloom filters, file column stats, §V-C), keyed by `(path, file_len)`
//!   so an overwritten file of different length can never serve stale
//!   metadata; same-length overwrites are handled by explicit invalidation
//!   at the write path.
//! * **listing** — completed split enumerations (the sorted data-file list
//!   of one table, §IV-D3), valid until the table is written.

use crate::charge::MemoryCharger;
use crate::sharded::{CacheConfig, ShardedCache};
use crate::stats::{CacheCounters, CacheStats};
use presto_common::{Result, Schema, TableStatistics, Value};
use presto_porc::{FileMeta, IoStats, PorcReader};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// `(catalog key, table name)`.
type TableKey = (String, String);

/// Footer cache key. The file length rides along so a replaced file whose
/// size changed misses naturally; replaced files of identical size are
/// covered by [`MetadataCache::invalidate_table`] at the write path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FooterKey {
    pub path: PathBuf,
    pub file_len: u64,
}

/// Split-listing cache key: one completed file enumeration per table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitListKey {
    pub catalog: String,
    pub table: String,
}

/// Per-layer shape and limits.
#[derive(Debug, Clone)]
pub struct MetadataCacheConfig {
    /// Schemas + table statistics (two caches share this config).
    pub metastore: CacheConfig,
    /// Decoded PORC footers.
    pub footer: CacheConfig,
    /// Split listings.
    pub listing: CacheConfig,
}

impl Default for MetadataCacheConfig {
    fn default() -> MetadataCacheConfig {
        MetadataCacheConfig {
            metastore: CacheConfig {
                shards: 4,
                capacity_bytes: 16 << 20,
                ttl: Some(Duration::from_secs(600)),
            },
            footer: CacheConfig {
                shards: 8,
                capacity_bytes: 48 << 20,
                ttl: None,
            },
            listing: CacheConfig {
                shards: 4,
                capacity_bytes: 8 << 20,
                ttl: Some(Duration::from_secs(600)),
            },
        }
    }
}

/// The unified metadata cache; see the module docs for the layers.
pub struct MetadataCache {
    schemas: ShardedCache<TableKey, Schema>,
    statistics: ShardedCache<TableKey, TableStatistics>,
    footers: ShardedCache<FooterKey, Arc<FileMeta>>,
    listings: ShardedCache<SplitListKey, Arc<Vec<PathBuf>>>,
}

impl MetadataCache {
    pub fn new(config: MetadataCacheConfig) -> Arc<MetadataCache> {
        Arc::new(MetadataCache {
            schemas: ShardedCache::new(config.metastore.clone()),
            statistics: ShardedCache::new(config.metastore),
            footers: ShardedCache::new(config.footer),
            listings: ShardedCache::new(config.listing),
        })
    }

    /// A cache with the default layer sizes (standalone connectors).
    pub fn with_defaults() -> Arc<MetadataCache> {
        MetadataCache::new(MetadataCacheConfig::default())
    }

    /// Get-or-load a table schema.
    pub fn schema(
        &self,
        catalog: &str,
        table: &str,
        load: impl FnOnce() -> Result<Schema>,
    ) -> Result<Schema> {
        let key = (catalog.to_string(), table.to_string());
        if let Some(schema) = self.schemas.get(&key) {
            return Ok(schema);
        }
        let schema = load()?;
        self.schemas.insert(key, schema.clone(), schema_weight(&schema));
        Ok(schema)
    }

    /// Get-or-load table statistics. Unknown statistics are *not* cached:
    /// a failed load or a stats-disabled configuration must not pin
    /// "unknown" until the next invalidation.
    pub fn statistics(
        &self,
        catalog: &str,
        table: &str,
        load: impl FnOnce() -> TableStatistics,
    ) -> TableStatistics {
        let key = (catalog.to_string(), table.to_string());
        if let Some(stats) = self.statistics.get(&key) {
            return stats;
        }
        let stats = load();
        if stats.row_count.is_known() || !stats.columns.is_empty() {
            self.statistics
                .insert(key, stats.clone(), statistics_weight(&stats));
        }
        stats
    }

    /// Open a PORC reader, serving the decoded footer from cache when
    /// `(path, len)` matches. `on_miss` runs before a cold open only —
    /// connectors hook their simulated remote-read latency here so repeat
    /// opens of a warm file pay nothing.
    pub fn porc_reader(
        &self,
        path: &Path,
        io: Arc<IoStats>,
        on_miss: impl FnOnce(),
    ) -> Result<PorcReader> {
        let file_len = std::fs::metadata(path)?.len();
        let key = FooterKey {
            path: path.to_path_buf(),
            file_len,
        };
        if let Some(meta) = self.footers.get(&key) {
            return PorcReader::open_with_meta(path, io, meta);
        }
        on_miss();
        let reader = PorcReader::open(path, io)?;
        let meta = reader.meta_arc();
        self.footers.insert(key, Arc::clone(&meta), meta.approx_weight());
        Ok(reader)
    }

    /// Get-or-load a table's completed split enumeration.
    pub fn listing(
        &self,
        catalog: &str,
        table: &str,
        load: impl FnOnce() -> Result<Vec<PathBuf>>,
    ) -> Result<Arc<Vec<PathBuf>>> {
        let key = SplitListKey {
            catalog: catalog.to_string(),
            table: table.to_string(),
        };
        if let Some(files) = self.listings.get(&key) {
            return Ok(files);
        }
        let files = Arc::new(load()?);
        self.listings.insert(key, Arc::clone(&files), listing_weight(&files));
        Ok(files)
    }

    /// Drop everything known about one table: schema, statistics, the
    /// split listing, and — when `directory` is given — every cached
    /// footer under it. Sinks call this on create and on commit.
    pub fn invalidate_table(&self, catalog: &str, table: &str, directory: Option<&Path>) {
        let key = (catalog.to_string(), table.to_string());
        self.schemas.invalidate(&key);
        self.statistics.invalidate(&key);
        self.listings.invalidate(&SplitListKey {
            catalog: catalog.to_string(),
            table: table.to_string(),
        });
        if let Some(dir) = directory {
            self.footers.invalidate_if(|k| k.path.starts_with(dir));
        }
    }

    /// Install the memory-accounting hook on every layer.
    pub fn set_charger(&self, charger: Arc<dyn MemoryCharger>) {
        self.schemas.set_charger(Arc::clone(&charger));
        self.statistics.set_charger(Arc::clone(&charger));
        self.footers.set_charger(Arc::clone(&charger));
        self.listings.set_charger(charger);
    }

    /// Named live-counter handles, for telemetry registration.
    pub fn stats_handles(&self) -> Vec<(&'static str, Arc<CacheStats>)> {
        vec![
            ("metastore_schema", self.schemas.stats()),
            ("metastore_stats", self.statistics.stats()),
            ("porc_footer", self.footers.stats()),
            ("split_listing", self.listings.stats()),
        ]
    }

    /// Counters merged across all layers.
    pub fn counters(&self) -> CacheCounters {
        self.metastore_counters()
            .merge(&self.footer_counters())
            .merge(&self.listing_counters())
    }

    /// Schema + statistics layer counters.
    pub fn metastore_counters(&self) -> CacheCounters {
        self.schemas.counters().merge(&self.statistics.counters())
    }

    pub fn footer_counters(&self) -> CacheCounters {
        self.footers.counters()
    }

    pub fn listing_counters(&self) -> CacheCounters {
        self.listings.counters()
    }

    /// Bytes currently retained across all layers.
    pub fn total_bytes(&self) -> u64 {
        self.schemas.total_bytes()
            + self.statistics.total_bytes()
            + self.footers.total_bytes()
            + self.listings.total_bytes()
    }

    /// Drop every entry in every layer.
    pub fn clear(&self) {
        self.schemas.clear();
        self.statistics.clear();
        self.footers.clear();
        self.listings.clear();
    }
}

fn value_weight(v: &Option<Value>) -> u64 {
    match v {
        Some(Value::Varchar(s)) => 24 + s.len() as u64,
        _ => 16,
    }
}

fn schema_weight(schema: &Schema) -> u64 {
    48 + schema
        .fields()
        .iter()
        .map(|f| 40 + f.name.len() as u64)
        .sum::<u64>()
}

fn statistics_weight(stats: &TableStatistics) -> u64 {
    48 + stats
        .columns
        .iter()
        .map(|c| 64 + value_weight(&c.min) + value_weight(&c.max))
        .sum::<u64>()
}

fn listing_weight(files: &[PathBuf]) -> u64 {
    48 + files
        .iter()
        .map(|p| 48 + p.as_os_str().len() as u64)
        .sum::<u64>()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Estimate};
    use presto_porc::{PorcWriter, WriterOptions};

    fn sample_schema() -> Schema {
        Schema::of(&[("k", DataType::Bigint), ("s", DataType::Varchar)])
    }

    #[test]
    fn schema_loads_once_then_hits() {
        let cache = MetadataCache::with_defaults();
        let mut loads = 0;
        for _ in 0..3 {
            let s = cache
                .schema("hive:/w", "t", || {
                    loads += 1;
                    Ok(sample_schema())
                })
                .unwrap();
            assert_eq!(s.len(), 2);
        }
        assert_eq!(loads, 1);
        let c = cache.metastore_counters();
        assert_eq!((c.hits, c.misses), (2, 1));
    }

    #[test]
    fn catalog_key_namespaces_tables() {
        let cache = MetadataCache::with_defaults();
        let one = Schema::of(&[("a", DataType::Bigint)]);
        let two = Schema::of(&[("b", DataType::Double)]);
        cache.schema("hive:/x", "t", || Ok(one.clone())).unwrap();
        let got = cache.schema("hive:/y", "t", || Ok(two.clone())).unwrap();
        assert_eq!(got, two, "same table name in another catalog is distinct");
    }

    #[test]
    fn unknown_statistics_are_not_cached() {
        let cache = MetadataCache::with_defaults();
        let mut loads = 0;
        for _ in 0..2 {
            let s = cache.statistics("hive:/w", "t", || {
                loads += 1;
                TableStatistics::unknown()
            });
            assert!(!s.row_count.is_known());
        }
        assert_eq!(loads, 2, "unknown result is recomputed, never pinned");
        // A known result is cached.
        for _ in 0..2 {
            cache.statistics("hive:/w", "t", || TableStatistics::with_row_count(5.0));
        }
        let s = cache.statistics("hive:/w", "t", || unreachable!("cached"));
        assert_eq!(s.row_count, Estimate::exact(5.0));
    }

    #[test]
    fn footer_cached_across_opens_and_invalidated_by_table_write() {
        let dir = std::env::temp_dir().join(format!("cache-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.porc");
        let schema = sample_schema();
        let mut w = PorcWriter::create(&path, schema.clone(), WriterOptions::default()).unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Bigint(i), Value::varchar("x")])
            .collect();
        w.append(&presto_page::Page::from_rows(&schema, &rows))
            .unwrap();
        w.finish().unwrap();

        let cache = MetadataCache::with_defaults();
        let io = Arc::new(IoStats::new());
        let r1 = cache.porc_reader(&path, Arc::clone(&io), || {}).unwrap();
        assert_eq!(io.footer_reads(), 1);
        let mut misses = 0;
        let r2 = cache
            .porc_reader(&path, Arc::clone(&io), || misses += 1)
            .unwrap();
        assert_eq!(io.footer_reads(), 1, "second open reads no footer");
        assert_eq!(misses, 0);
        assert_eq!(r1.meta(), r2.meta());
        assert_eq!(cache.footer_counters().hits, 1);

        cache.invalidate_table("hive:/w", "t", Some(&dir));
        cache.porc_reader(&path, Arc::clone(&io), || misses += 1).unwrap();
        assert_eq!(misses, 1, "invalidation forces a cold open");
        assert_eq!(io.footer_reads(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn listing_cached_until_invalidation() {
        let cache = MetadataCache::with_defaults();
        let mut loads = 0;
        for _ in 0..3 {
            let files = cache
                .listing("hive:/w", "t", || {
                    loads += 1;
                    Ok(vec![PathBuf::from("/w/t/part-0.porc")])
                })
                .unwrap();
            assert_eq!(files.len(), 1);
        }
        assert_eq!(loads, 1);
        cache.invalidate_table("hive:/w", "t", None);
        cache
            .listing("hive:/w", "t", || {
                loads += 1;
                Ok(vec![])
            })
            .unwrap();
        assert_eq!(loads, 2);
    }

    #[test]
    fn charger_fans_out_and_bytes_roll_up() {
        use std::sync::atomic::{AtomicI64, Ordering};
        struct Ledger(AtomicI64);
        impl MemoryCharger for Ledger {
            fn charge(&self, delta: i64) {
                self.0.fetch_add(delta, Ordering::Relaxed);
            }
        }
        let cache = MetadataCache::with_defaults();
        cache.schema("c", "t", || Ok(sample_schema())).unwrap();
        cache.statistics("c", "t", || TableStatistics::with_row_count(1.0));
        cache
            .listing("c", "t", || Ok(vec![PathBuf::from("/a")]))
            .unwrap();
        let ledger = Arc::new(Ledger(AtomicI64::new(0)));
        cache.set_charger(ledger.clone());
        assert_eq!(
            ledger.0.load(Ordering::Relaxed) as u64,
            cache.total_bytes(),
            "installation charges everything already retained"
        );
        assert!(cache.total_bytes() > 0);
        cache.clear();
        assert_eq!(ledger.0.load(Ordering::Relaxed), 0);
        assert_eq!(cache.total_bytes(), 0);
    }
}
