//! The generic building block: an N-way sharded, weighted, TTL'd LRU
//! cache behind `parking_lot` mutexes.
//!
//! Concurrency model: keys hash to one of N shards; each shard is an
//! independent `Mutex<Shard>` so readers of different keys rarely
//! contend. Within a shard, recency is tracked by a monotonically
//! increasing tick: the entry map stores each key's current tick and a
//! `BTreeMap<tick, key>` orders keys oldest-first, giving O(log n) touch
//! and strict-LRU eviction.

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::charge::{MemoryCharger, NoopCharger};
use crate::stats::{CacheCounters, CacheStats};

/// Shape and limits of one cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of independently locked shards.
    pub shards: usize,
    /// Total weighted capacity in bytes, split evenly across shards.
    pub capacity_bytes: u64,
    /// Entries older than this are expired on access; `None` = no TTL.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            capacity_bytes: 64 << 20,
            ttl: None,
        }
    }
}

impl CacheConfig {
    pub fn with_capacity(capacity_bytes: u64) -> CacheConfig {
        CacheConfig {
            capacity_bytes,
            ..CacheConfig::default()
        }
    }
}

struct Entry<V> {
    value: V,
    weight: u64,
    /// Key into the shard's LRU order map.
    tick: u64,
    expires_at: Option<Instant>,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// tick → key, oldest first. Ticks are unique within a shard.
    lru: BTreeMap<u64, K>,
    next_tick: u64,
    bytes: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Shard<K, V> {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            bytes: 0,
        }
    }
}

/// A sharded concurrent cache with per-entry byte weights, capacity + TTL
/// eviction, explicit invalidation, and hit/miss/eviction counters.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_capacity: u64,
    ttl: Option<Duration>,
    stats: Arc<CacheStats>,
    charger: RwLock<Arc<dyn MemoryCharger>>,
}

impl<K, V> ShardedCache<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone,
{
    pub fn new(config: CacheConfig) -> ShardedCache<K, V> {
        let shards = config.shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: config.capacity_bytes / shards as u64,
            ttl: config.ttl,
            stats: Arc::new(CacheStats::default()),
            charger: RwLock::new(Arc::new(NoopCharger)),
        }
    }

    /// Install the memory-accounting hook; the current retained bytes are
    /// charged immediately so the pool sees pre-existing entries.
    pub fn set_charger(&self, charger: Arc<dyn MemoryCharger>) {
        let bytes = self.total_bytes() as i64;
        let previous = {
            let mut slot = self.charger.write();
            std::mem::replace(&mut *slot, charger)
        };
        // Transfer the accounted balance from the old charger to the new.
        previous.charge(-bytes);
        self.charger.read().charge(bytes);
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn charge(&self, delta: i64) {
        if delta != 0 {
            self.stats.add_bytes(delta);
            self.charger.read().charge(delta);
        }
    }

    /// Look up `key`, refreshing its recency. Expired entries are removed
    /// and count as misses.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut freed: i64 = 0;
        let result = {
            let mut shard = self.shard_for(key).lock();
            match shard.map.get(key) {
                None => None,
                Some(entry) if entry.expires_at.is_some_and(|at| Instant::now() >= at) => {
                    let tick = entry.tick;
                    let weight = entry.weight;
                    shard.lru.remove(&tick);
                    shard.map.remove(key);
                    shard.bytes -= weight;
                    freed = weight as i64;
                    self.stats.record_expiration();
                    None
                }
                Some(_) => {
                    // Touch: move to the newest tick.
                    let new_tick = shard.next_tick;
                    shard.next_tick += 1;
                    let entry = shard.map.get_mut(key).expect("entry present");
                    let old_tick = entry.tick;
                    entry.tick = new_tick;
                    let value = entry.value.clone();
                    shard.lru.remove(&old_tick);
                    shard.lru.insert(new_tick, key.clone());
                    Some(value)
                }
            }
        };
        self.charge(-freed);
        match &result {
            Some(_) => self.stats.record_hit(),
            None => self.stats.record_miss(),
        }
        result
    }

    /// Insert `key` with a given byte weight, evicting LRU entries until it
    /// fits. Entries heavier than a whole shard's capacity are not cached.
    pub fn insert(&self, key: K, value: V, weight: u64) {
        if weight > self.shard_capacity {
            // Would evict the entire shard and still violate capacity.
            return;
        }
        let mut delta: i64 = 0;
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_for(&key).lock();
            // Replace an existing entry in place.
            if let Some(old) = shard.map.remove(&key) {
                shard.lru.remove(&old.tick);
                shard.bytes -= old.weight;
                delta -= old.weight as i64;
            }
            // Evict oldest-first until the new entry fits.
            while shard.bytes + weight > self.shard_capacity {
                let Some((&oldest_tick, _)) = shard.lru.iter().next() else {
                    break;
                };
                let victim = shard
                    .lru
                    .remove(&oldest_tick)
                    .expect("lru tick just observed");
                if let Some(old) = shard.map.remove(&victim) {
                    shard.bytes -= old.weight;
                    delta -= old.weight as i64;
                    evicted += 1;
                }
            }
            let tick = shard.next_tick;
            shard.next_tick += 1;
            let expires_at = self.ttl.map(|ttl| Instant::now() + ttl);
            shard.lru.insert(tick, key.clone());
            shard.map.insert(
                key,
                Entry {
                    value,
                    weight,
                    tick,
                    expires_at,
                },
            );
            shard.bytes += weight;
            delta += weight as i64;
        }
        for _ in 0..evicted {
            self.stats.record_eviction();
        }
        self.stats.record_insert();
        self.charge(delta);
    }

    /// Remove one entry; returns whether it was present.
    pub fn invalidate(&self, key: &K) -> bool {
        let mut freed: i64 = 0;
        let removed = {
            let mut shard = self.shard_for(key).lock();
            match shard.map.remove(key) {
                Some(old) => {
                    shard.lru.remove(&old.tick);
                    shard.bytes -= old.weight;
                    freed = old.weight as i64;
                    true
                }
                None => false,
            }
        };
        if removed {
            self.stats.record_invalidation();
            self.charge(-freed);
        }
        removed
    }

    /// Remove every entry whose key matches `pred`; returns how many were
    /// dropped. Used for prefix invalidation (all footers under a table's
    /// directory, all listings of one table).
    pub fn invalidate_if(&self, pred: impl Fn(&K) -> bool) -> usize {
        let mut removed = 0usize;
        for locked in &self.shards {
            let mut freed: i64 = 0;
            {
                let mut shard = locked.lock();
                let victims: Vec<K> = shard.map.keys().filter(|k| pred(k)).cloned().collect();
                for key in victims {
                    if let Some(old) = shard.map.remove(&key) {
                        shard.lru.remove(&old.tick);
                        shard.bytes -= old.weight;
                        freed += old.weight as i64;
                        removed += 1;
                    }
                }
            }
            self.charge(-freed);
        }
        for _ in 0..removed {
            self.stats.record_invalidation();
        }
        removed
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.invalidate_if(|_| true);
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current weighted bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Total capacity actually enforced (capacity rounds down per shard).
    pub fn capacity_bytes(&self) -> u64 {
        self.shard_capacity * self.shards.len() as u64
    }

    pub fn stats(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }

    pub fn counters(&self) -> CacheCounters {
        self.stats.counters()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn one_shard(capacity: u64) -> ShardedCache<u64, String> {
        ShardedCache::new(CacheConfig {
            shards: 1,
            capacity_bytes: capacity,
            ttl: None,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = one_shard(1000);
        assert_eq!(c.get(&1), None);
        c.insert(1, "a".into(), 10);
        assert_eq!(c.get(&1).as_deref(), Some("a"));
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses, counters.inserts), (1, 1, 1));
        assert_eq!(counters.bytes, 10);
    }

    #[test]
    fn lru_eviction_order_is_strict() {
        let c = one_shard(30);
        c.insert(1, "a".into(), 10);
        c.insert(2, "b".into(), 10);
        c.insert(3, "c".into(), 10);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&1).is_some());
        c.insert(4, "d".into(), 10);
        assert!(c.get(&2).is_none(), "least-recently-used entry evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn weighted_capacity_never_exceeded() {
        let c = one_shard(100);
        for i in 0..50 {
            c.insert(i, "x".repeat(i as usize % 30), 7 + i % 23);
            assert!(c.total_bytes() <= 100);
        }
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let c = one_shard(100);
        c.insert(1, "big".into(), 101);
        assert!(c.get(&1).is_none());
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn replacement_reclaims_old_weight() {
        let c = one_shard(100);
        c.insert(1, "a".into(), 60);
        c.insert(1, "b".into(), 50);
        assert_eq!(c.total_bytes(), 50);
        assert_eq!(c.get(&1).as_deref(), Some("b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(CacheConfig {
            shards: 2,
            capacity_bytes: 1000,
            ttl: Some(Duration::from_millis(20)),
        });
        c.insert(1, 11, 8);
        assert_eq!(c.get(&1), Some(11));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(c.get(&1), None, "expired on access");
        assert_eq!(c.total_bytes(), 0);
        assert!(c.counters().evictions >= 1, "expiry counts as eviction");
    }

    #[test]
    fn invalidate_and_prefix_invalidate() {
        let c: ShardedCache<(String, u64), u64> =
            ShardedCache::new(CacheConfig::with_capacity(10_000));
        for i in 0..10 {
            c.insert(("t1".into(), i), i, 10);
            c.insert(("t2".into(), i), i, 10);
        }
        assert!(c.invalidate(&("t1".into(), 3)));
        assert!(!c.invalidate(&("t1".into(), 3)));
        assert_eq!(c.invalidate_if(|k| k.0 == "t1"), 9);
        assert_eq!(c.len(), 10);
        assert_eq!(c.total_bytes(), 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn charger_sees_every_delta() {
        use std::sync::atomic::{AtomicI64, Ordering};
        struct Ledger(AtomicI64);
        impl MemoryCharger for Ledger {
            fn charge(&self, delta: i64) {
                self.0.fetch_add(delta, Ordering::Relaxed);
            }
        }
        let c = one_shard(100);
        c.insert(1, "pre-existing".into(), 30);
        let ledger = Arc::new(Ledger(AtomicI64::new(0)));
        c.set_charger(ledger.clone());
        assert_eq!(
            ledger.0.load(Ordering::Relaxed),
            30,
            "installation charges retained bytes"
        );
        c.insert(2, "b".into(), 50);
        assert_eq!(ledger.0.load(Ordering::Relaxed), 80);
        c.insert(3, "c".into(), 40); // evicts 1 (30) to fit
        assert_eq!(ledger.0.load(Ordering::Relaxed), 90);
        c.clear();
        assert_eq!(ledger.0.load(Ordering::Relaxed), 0);
        assert_eq!(c.counters().bytes, 0);
    }
}
