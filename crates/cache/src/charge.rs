//! Memory-accounting hook: caches report retained-byte deltas to whoever
//! owns the memory pools.
//!
//! §IV-F2: "All non-trivial memory allocations in Presto must be
//! classified as user or system memory, and reserve memory in the
//! corresponding memory pool." Cache memory is *system* memory — it
//! belongs to no query — so the cluster installs a charger that forwards
//! deltas into the node pools' general pool, shrinking query headroom and
//! letting cache growth participate in reserved-pool arbitration.

/// Receives retained-byte deltas (positive on insert, negative on
/// eviction/invalidation). Implementations must be cheap and must never
/// call back into the cache (charge runs under a shard lock).
pub trait MemoryCharger: Send + Sync {
    fn charge(&self, delta: i64);
}

/// Default charger: cache memory is unaccounted (standalone embedding).
#[derive(Debug, Default)]
pub struct NoopCharger;

impl MemoryCharger for NoopCharger {
    fn charge(&self, _delta: i64) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    pub(crate) struct Ledger(pub AtomicI64);

    impl MemoryCharger for Ledger {
        fn charge(&self, delta: i64) {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[test]
    fn charger_accumulates_deltas() {
        let ledger = Arc::new(Ledger(AtomicI64::new(0)));
        let c: Arc<dyn MemoryCharger> = ledger.clone();
        c.charge(128);
        c.charge(-28);
        assert_eq!(ledger.0.load(Ordering::Relaxed), 100);
    }
}
