//! Hit/miss/eviction/insert counters, shared by every cache layer.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Live counters for one cache. Cheap to share (`Arc`), lock-free to
/// update; telemetry snapshots them via [`CacheStats::counters`].
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    inserts: AtomicU64,
    invalidations: AtomicU64,
    /// Weighted bytes currently retained.
    bytes: AtomicI64,
}

/// A point-in-time copy of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    /// Capacity evictions (LRU) plus TTL expirations.
    pub evictions: u64,
    pub inserts: u64,
    pub invalidations: u64,
    pub bytes: u64,
}

impl CacheCounters {
    /// Merge counters from another cache layer (for combined telemetry).
    pub fn merge(&self, other: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            inserts: self.inserts + other.inserts,
            invalidations: self.invalidations + other.invalidations,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Hit fraction in [0, 1]; 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_expiration(&self) {
        self.expirations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_bytes(&self, delta: i64) {
        self.bytes.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed)
                + self.expirations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes: self.bytes(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_and_merge() {
        let s = CacheStats::default();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insert();
        s.record_eviction();
        s.record_expiration();
        s.add_bytes(100);
        s.add_bytes(-40);
        let c = s.counters();
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
        assert_eq!(c.evictions, 2, "evictions fold in TTL expirations");
        assert_eq!(c.bytes, 60);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let merged = c.merge(&c);
        assert_eq!(merged.hits, 4);
        assert_eq!(merged.bytes, 120);
    }
}
