//! Stress tests for the concurrent exchange fetcher (§IV-E2): many driver
//! threads draining many sources under injected latency and chaos decode
//! failures must deliver every page exactly once, and the per-request
//! deadline model must keep a fetch round's wall-clock sub-linear in the
//! source count (virtual round trips overlap instead of serializing).

use presto_page::{Block, LongBlock, Page};
use presto_shuffle::{ExchangeClient, OutputBuffer};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One source's pages, every row value globally unique: `source << 20 | seq`.
fn fill_source(source: usize, pages: usize, rows_per_page: usize) -> Arc<OutputBuffer> {
    let buffer = OutputBuffer::new(1, usize::MAX);
    for p in 0..pages {
        let values: Vec<i64> = (0..rows_per_page)
            .map(|r| ((source << 20) | (p * rows_per_page + r)) as i64)
            .collect();
        buffer.enqueue(0, &Page::new(vec![Block::from(LongBlock::from_values(values))]));
    }
    buffer.set_no_more_pages();
    buffer
}

fn drain_with_drivers(client: &Arc<ExchangeClient>, drivers: usize) -> Vec<i64> {
    std::thread::scope(|scope| {
        (0..drivers)
            .map(|_| {
                let client = Arc::clone(client);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    while !client.is_finished() {
                        let progressed = client.poll_progress().expect("within retry budget");
                        while let Some(page) = client.next_page() {
                            for i in 0..page.row_count() {
                                seen.push(page.block(0).i64_at(i));
                            }
                        }
                        if !progressed {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    seen
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread"))
            .collect()
    })
}

#[test]
fn multi_driver_drain_under_latency_and_chaos_loses_and_duplicates_nothing() {
    let (sources, pages, rows, drivers) = (6usize, 24usize, 32usize, 4usize);
    // Capacity of ~one frame forces many single-frame fetch batches, so a
    // chaos failure (every 7th decode) hits individual batches rather than
    // condemning every batch; 2ms simulated round trips overlap across
    // sources. Tokens must not advance past undecoded batches (the
    // at-least-once guarantee) while retries must not re-deliver decoded
    // ones.
    let client = Arc::new(ExchangeClient::with_config(
        512,
        Duration::from_millis(2),
        8,
        10,
    ));
    client.set_chaos_decode_every(7);
    for s in 0..sources {
        client.add_source(fill_source(s, pages, rows), 0);
    }

    let delivered = drain_with_drivers(&client, drivers);

    let expected: HashSet<i64> = (0..sources)
        .flat_map(|s| (0..pages * rows).map(move |i| ((s << 20) | i) as i64))
        .collect();
    assert_eq!(
        delivered.len(),
        expected.len(),
        "row count must match exactly (no loss, no duplicates)"
    );
    let unique: HashSet<i64> = delivered.into_iter().collect();
    assert_eq!(unique, expected, "every row delivered exactly once");
    assert_eq!(client.buffered_bytes(), 0, "drained client retains nothing");
}

#[test]
fn fetch_round_wall_clock_is_sublinear_in_source_count() {
    // 8 sources at 20ms simulated latency. A serial fetcher pays at least
    // 2 round trips per source (data + final ack) = 8 × 2 × 20ms = 320ms.
    // The deadline model starts all 8 virtual requests in one pass, so the
    // whole drain costs a few *overlapped* round trips, far under N × RTT.
    let (sources, latency) = (8usize, Duration::from_millis(20));
    let client = Arc::new(ExchangeClient::with_config(64 << 20, latency, 16, 3));
    for s in 0..sources {
        client.add_source(fill_source(s, 4, 16), 0);
    }

    let start = Instant::now();
    let delivered = drain_with_drivers(&client, 1);
    let elapsed = start.elapsed();

    assert_eq!(delivered.len(), sources * 4 * 16, "all rows fetched");
    let serial_floor = latency * 2 * sources as u32; // 320ms
    assert!(
        elapsed < serial_floor / 2,
        "drain took {elapsed:?}; a serial fetcher needs ≥ {serial_floor:?} — \
         round trips must overlap"
    );
}

#[test]
fn single_poll_pass_issues_all_requests_without_blocking() {
    // One poll_progress call must start every source's virtual request and
    // return immediately — never sleep the simulated latency inline.
    let latency = Duration::from_millis(50);
    let client = Arc::new(ExchangeClient::with_config(64 << 20, latency, 16, 3));
    for s in 0..4 {
        client.add_source(fill_source(s, 2, 8), 0);
    }
    let start = Instant::now();
    client.poll_progress().expect("first pass");
    assert!(
        start.elapsed() < Duration::from_millis(40),
        "poll_progress must not block on injected latency"
    );
}

#[test]
fn cancel_mid_drain_under_chaos_stops_all_drivers_and_releases_buffers() {
    // Four drivers drain four sources through a flaky transport (every 5th
    // decode fails, so several sources sit in retry-backoff windows at any
    // moment). Cancelling mid-drain must stop polling AND retrying at once:
    // no driver keeps a dead query's retry budget alive.
    let client = Arc::new(ExchangeClient::with_config(
        512,
        Duration::from_millis(1),
        8,
        10,
    ));
    client.set_chaos_decode_every(5);
    client.set_retry_backoff(Duration::from_micros(100));
    for s in 0..4 {
        client.add_source(fill_source(s, 64, 32), 0);
    }
    let canceller = Arc::clone(&client);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = Arc::clone(&client);
            scope.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                while !client.is_finished() {
                    assert!(Instant::now() < deadline, "driver failed to observe cancel");
                    if client.poll_progress().is_err() {
                        break;
                    }
                    while client.next_page().is_some() {}
                    std::thread::sleep(Duration::from_micros(100));
                }
            });
        }
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            canceller.cancel();
        });
    });
    assert!(client.is_cancelled());
    assert!(
        client.is_finished(),
        "a cancelled client reports finished so exchange drivers retire"
    );
    // Drain anything a racing decode slipped in after the cancel's sweep;
    // teardown must end with zero retained wire bytes.
    while client.next_page().is_some() {}
    assert_eq!(client.buffered_bytes(), 0, "cancel releases buffered pages");
}

#[test]
fn aborted_source_mid_drain_surfaces_worker_failed_to_every_driver() {
    use presto_common::ErrorCode;
    // Source 0's producer "crashes" mid-stream: its buffer aborts without
    // ever finishing. Every driver must get the retryable WorkerFailed
    // error instead of blocking forever or burning the decode-retry budget.
    let client = Arc::new(ExchangeClient::with_config(
        64 << 10,
        Duration::from_millis(1),
        8,
        3,
    ));
    let lost = OutputBuffer::new(1, usize::MAX);
    let values: Vec<i64> = (0..8).collect();
    lost.enqueue(
        0,
        &Page::new(vec![Block::from(LongBlock::from_values(values))]),
    );
    client.add_source(Arc::clone(&lost), 0);
    for s in 1..4 {
        client.add_source(fill_source(s, 8, 8), 0);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let client = Arc::clone(&client);
                scope.spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(10);
                    loop {
                        assert!(Instant::now() < deadline, "worker loss never surfaced");
                        match client.poll_progress() {
                            Err(e) => break e,
                            Ok(_) => {
                                while client.next_page().is_some() {}
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                    }
                })
            })
            .collect();
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(5));
            lost.abort();
        });
        for h in handles {
            let e = h.join().expect("driver thread");
            assert_eq!(e.code, ErrorCode::WorkerFailed, "{e}");
            assert!(e.is_retryable(), "worker loss is retryable upstream");
        }
    });
}
