//! The consumer-side exchange client.
//!
//! §IV-E2: "the engine monitors the moving average of data transferred per
//! request to compute a target HTTP request concurrency that keeps the
//! input buffers populated while not exceeding their capacity. This
//! backpressure causes upstream tasks to slow down as their buffers fill
//! up."
//!
//! The client is shared by every exchange driver of a consuming task, so it
//! never sleeps or decodes while holding a shared lock. Each upstream
//! source carries its own tiny mutex plus a `busy` flag (at most one
//! in-flight request per source, claimed by compare-and-swap), simulated
//! network latency is modelled as a per-request *deadline* rather than a
//! `thread::sleep`, and decoded pages are handed to operators through a
//! lock-free queue. N drivers polling N sources therefore overlap their
//! virtual round trips instead of convoying behind one client mutex.

use crossbeam::queue::SegQueue;
use parking_lot::{Mutex, RwLock};
use presto_common::{ErrorCode, PrestoError, Result};
use presto_page::{decode_framed_page, Page};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::buffer::OutputBuffer;

/// Per-source mutable state, behind the source's own lock.
struct SourceProgress {
    /// Next poll token. Only advanced after the *entire* response batch has
    /// decoded successfully — a mid-batch decode failure must leave the
    /// token untouched so the producer's retained pages can be re-fetched
    /// (at-least-once).
    token: u64,
    finished: bool,
    /// Deadline of the virtual in-flight request (simulated network
    /// latency). `None` means no request is outstanding.
    in_flight_until: Option<Instant>,
    /// Consecutive transient decode failures; reset on success.
    consecutive_failures: u32,
    /// Earliest instant the next retry of this source may fetch: set after
    /// a transient failure to `base * 2^(failures-1)` plus deterministic
    /// jitter, so retries back off instead of hammering the producer.
    retry_after: Option<Instant>,
}

/// One upstream producer this client reads from.
struct Source {
    buffer: Arc<OutputBuffer>,
    /// Which partition of the producer's buffer belongs to this consumer.
    partition: usize,
    /// Claimed by CAS so at most one driver works a source at a time;
    /// other drivers skip to the next source instead of blocking.
    busy: AtomicBool,
    progress: Mutex<SourceProgress>,
}

/// Outcome of working one source for one round.
enum PollOutcome {
    /// Pages (or a finished flag) were delivered.
    Delivered,
    /// A virtual request was issued or is still in flight; data may arrive
    /// once its deadline passes.
    Pending,
    /// Nothing to do (source already finished, or empty non-final response).
    Idle,
}

/// Pulls pages from all upstream task buffers feeding one consumer task.
///
/// All methods take `&self`: clone the `Arc<ExchangeClient>` into as many
/// exchange drivers as the task runs.
pub struct ExchangeClient {
    sources: RwLock<Vec<Arc<Source>>>,
    /// Decoded pages ready for operators, with the wire size each one
    /// occupied so `next_page` releases exactly what `poll` charged.
    ready: SegQueue<(Page, usize)>,
    /// Wire bytes currently held in `ready`.
    buffered_bytes: AtomicUsize,
    /// Input buffer capacity; polls stop while it is exceeded.
    capacity_bytes: usize,
    /// Exponential moving average of bytes per poll response (f64 bits).
    avg_bits: AtomicU64,
    /// Simulated network latency per poll (models the HTTP round trip).
    poll_latency: Duration,
    /// Round-robin cursor over sources.
    cursor: AtomicUsize,
    /// Sources not yet finished.
    open: AtomicUsize,
    /// Upper bound on polls issued per `poll_progress` round.
    concurrency_cap: usize,
    /// Give up after this many consecutive decode failures on one source.
    max_retries: u32,
    /// Total wire bytes fetched, for telemetry.
    bytes_received: AtomicU64,
    /// Uncompressed logical bytes of decoded pages (wire vs logical gives
    /// the realized shuffle compression ratio).
    logical_bytes_received: AtomicU64,
    /// Transient decode failures retried (token not advanced).
    retries: AtomicU64,
    /// Virtual requests currently outstanding (issued, deadline not yet
    /// reached).
    in_flight: AtomicUsize,
    /// Chaos hook: every Nth decode fails transiently (0 = off). Tests use
    /// this to prove the retry path neither loses nor duplicates pages.
    chaos_decode_every: AtomicUsize,
    decode_attempts: AtomicUsize,
    /// Set when the owning query was cancelled or failed: polling stops
    /// immediately (no retry runs to exhaustion for a dead query) and the
    /// client reports finished so exchange drivers retire.
    cancelled: AtomicBool,
    /// Base of the per-source exponential retry backoff, in nanoseconds.
    retry_backoff_nanos: AtomicU64,
}

impl ExchangeClient {
    pub fn new(capacity_bytes: usize, poll_latency: Duration) -> ExchangeClient {
        Self::with_config(capacity_bytes, poll_latency, 8, 3)
    }

    /// `concurrency_cap` bounds polls per round (the session's exchange
    /// concurrency knob); `max_retries` bounds consecutive transient decode
    /// failures per source before the error propagates.
    pub fn with_config(
        capacity_bytes: usize,
        poll_latency: Duration,
        concurrency_cap: usize,
        max_retries: u32,
    ) -> ExchangeClient {
        ExchangeClient {
            sources: RwLock::new(Vec::new()),
            ready: SegQueue::new(),
            buffered_bytes: AtomicUsize::new(0),
            capacity_bytes,
            avg_bits: AtomicU64::new(0f64.to_bits()),
            poll_latency,
            cursor: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            concurrency_cap: concurrency_cap.max(1),
            max_retries: max_retries.max(1),
            bytes_received: AtomicU64::new(0),
            logical_bytes_received: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            chaos_decode_every: AtomicUsize::new(0),
            decode_attempts: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            retry_backoff_nanos: AtomicU64::new(200_000), // 200µs
        }
    }

    /// Subscribe to `partition` of an upstream task's buffer. May be called
    /// as upstream tasks are scheduled (tasks stream as soon as data is
    /// available; new sources attach dynamically).
    pub fn add_source(&self, buffer: Arc<OutputBuffer>, partition: usize) {
        self.open.fetch_add(1, Ordering::SeqCst);
        self.sources.write().push(Arc::new(Source {
            buffer,
            partition,
            busy: AtomicBool::new(false),
            progress: Mutex::new(SourceProgress {
                token: 0,
                finished: false,
                in_flight_until: None,
                consecutive_failures: 0,
                retry_after: None,
            }),
        }));
    }

    /// Number of sources still producing.
    pub fn open_sources(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Test hook: make every `every`-th frame decode fail transiently
    /// (0 disables). Models flaky transport below the retry layer.
    pub fn set_chaos_decode_every(&self, every: usize) {
        self.chaos_decode_every.store(every, Ordering::SeqCst);
    }

    /// Override the base retry backoff (tests shorten or lengthen it to
    /// observe the schedule).
    pub fn set_retry_backoff(&self, base: Duration) {
        self.retry_backoff_nanos
            .store(base.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Cancel the client: the owning query was cancelled or failed. Stops
    /// all polling and retrying immediately, reports finished so exchange
    /// drivers retire, and releases the locally buffered pages.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        while let Some((_page, wire_len)) = self.ready.pop() {
            self.buffered_bytes.fetch_sub(wire_len, Ordering::SeqCst);
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Deterministic jitter for the `attempt`-th retry: up to half the
    /// backoff step, derived from the attempt counter so concurrent
    /// consumers de-synchronize without shared randomness.
    fn retry_delay(&self, attempt: u32) -> Duration {
        let base = self.retry_backoff_nanos.load(Ordering::Relaxed).max(1);
        let step = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(10));
        let salt = self.decode_attempts.load(Ordering::Relaxed) as u64;
        let jitter = presto_common::chaos::mix(salt ^ u64::from(attempt)) % (step / 2 + 1);
        Duration::from_nanos(step + jitter)
    }

    fn avg_bytes_per_request(&self) -> f64 {
        f64::from_bits(self.avg_bits.load(Ordering::Relaxed))
    }

    fn observe_response(&self, bytes: usize) {
        // EMA with alpha = 0.2, like a smoothed per-request size. Benign
        // race: concurrent updates may drop an observation, never corrupt.
        let old = self.avg_bytes_per_request();
        let new = 0.8 * old + 0.2 * bytes as f64;
        self.avg_bits.store(new.to_bits(), Ordering::Relaxed);
    }

    /// Target concurrent in-flight requests, derived from the moving
    /// average response size so the input buffer stays populated without
    /// overflowing (§IV-E2). Bounds how many sources one `poll_progress`
    /// call touches.
    pub fn target_concurrency(&self) -> usize {
        let n = self.sources.read().len();
        let avg = self.avg_bytes_per_request();
        if avg <= 0.0 {
            return n.clamp(1, self.concurrency_cap);
        }
        let headroom = (self.capacity_bytes as f64
            - self.buffered_bytes.load(Ordering::Relaxed) as f64)
            .max(0.0);
        ((headroom / avg).ceil() as usize).clamp(1, n.max(1).min(self.concurrency_cap))
    }

    /// Whether the client's own input buffer has room (when false, polling
    /// pauses and upstream buffers fill — backpressure).
    pub fn has_capacity(&self) -> bool {
        self.buffered_bytes.load(Ordering::Relaxed) < self.capacity_bytes
    }

    /// Wire bytes currently buffered locally (decoded pages not yet taken
    /// by operators). This is what `ExchangeSourceOperator` charges to the
    /// §IV-F2 system memory pool.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes.load(Ordering::Relaxed)
    }

    /// Poll some sources, moving available pages into the local buffer.
    /// Returns true if any pages were delivered or a source finished.
    /// Never sleeps and never holds a client-wide lock while decoding.
    pub fn poll_progress(&self) -> Result<bool> {
        // A cancelled query stops retrying (and fetching) immediately —
        // retry budgets must not keep dead queries alive.
        if self.is_cancelled() {
            return Ok(false);
        }
        if !self.has_capacity() {
            return Ok(false);
        }
        let sources: Vec<Arc<Source>> = self.sources.read().clone();
        if sources.is_empty() {
            return Ok(false);
        }
        let budget = self.target_concurrency();
        let mut progressed = false;
        let mut engaged = 0usize;
        for _ in 0..sources.len() {
            if engaged >= budget || !self.has_capacity() {
                break;
            }
            let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % sources.len();
            let source = &sources[idx];
            // Claim the source; if another driver is already on it, move on
            // instead of waiting (this is what kills the convoy).
            if source
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let outcome = self.poll_one(source);
            source.busy.store(false, Ordering::Release);
            match outcome? {
                PollOutcome::Delivered => {
                    engaged += 1;
                    progressed = true;
                }
                PollOutcome::Pending => engaged += 1,
                PollOutcome::Idle => {}
            }
        }
        Ok(progressed)
    }

    /// Work one claimed source: honor the virtual request deadline, fetch,
    /// decode the whole batch, then commit the token.
    fn poll_one(&self, source: &Source) -> Result<PollOutcome> {
        let mut progress = source.progress.lock();
        if progress.finished {
            return Ok(PollOutcome::Idle);
        }
        // A crashed/lost producer is not an end-of-stream: surface the loss
        // as the retryable `WorkerFailed` instead of silently spending the
        // decode-retry budget against a buffer that will never recover.
        if source.buffer.is_aborted() {
            return Err(PrestoError::new(
                ErrorCode::WorkerFailed,
                "exchange source lost: producing task's worker crashed or was declared dead",
            ));
        }
        // Honor the post-failure backoff window.
        if let Some(at) = progress.retry_after {
            if Instant::now() < at {
                return Ok(PollOutcome::Pending);
            }
            progress.retry_after = None;
        }
        // Latency injection via per-request deadlines: the first touch
        // "issues" the request and returns immediately; data is delivered
        // by whichever driver touches the source after the deadline. N
        // outstanding requests therefore overlap in wall-clock time.
        if !self.poll_latency.is_zero() {
            match progress.in_flight_until {
                None => {
                    progress.in_flight_until = Some(Instant::now() + self.poll_latency);
                    self.in_flight.fetch_add(1, Ordering::Relaxed);
                    return Ok(PollOutcome::Pending);
                }
                Some(deadline) if Instant::now() < deadline => {
                    return Ok(PollOutcome::Pending);
                }
                Some(_) => {
                    progress.in_flight_until = None;
                    self.in_flight.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        let headroom = self
            .capacity_bytes
            .saturating_sub(self.buffered_bytes.load(Ordering::Relaxed))
            .max(1);
        let response = source
            .buffer
            .poll(source.partition, progress.token, headroom);
        // Decode the entire batch BEFORE advancing the token. A failure on
        // page k must not commit pages 0..k: the producer retains the whole
        // batch until the next token acknowledges it, so the retry below
        // re-fetches everything exactly once.
        let mut decoded: Vec<(Page, usize)> = Vec::with_capacity(response.pages.len());
        let mut batch_bytes = 0usize;
        for frame in &response.pages {
            match self.decode(frame) {
                Ok(page) => {
                    batch_bytes += frame.len();
                    decoded.push((page, frame.len()));
                }
                Err(e) => {
                    progress.consecutive_failures += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if progress.consecutive_failures >= self.max_retries {
                        // Exhausted low-level retries: a page-transport
                        // fault, not an engine bug. Surface it as the
                        // retryable worker-failure class so the query fails
                        // with a fault-shaped error the coordinator (or the
                        // client) may retry, per §IV-G.
                        return Err(PrestoError::new(
                            ErrorCode::WorkerFailed,
                            format!(
                                "exchange source failed {} consecutive decodes: {e}",
                                progress.consecutive_failures
                            ),
                        ));
                    }
                    // Transient: token not advanced, nothing buffered; the
                    // next poll of this source re-fetches the same batch —
                    // after a jittered exponential backoff.
                    progress.retry_after =
                        Some(Instant::now() + self.retry_delay(progress.consecutive_failures));
                    return Ok(PollOutcome::Idle);
                }
            }
        }
        progress.consecutive_failures = 0;
        progress.token = response.next_token;
        let newly_finished = response.finished && !progress.finished;
        progress.finished = response.finished;
        drop(progress);
        if newly_finished {
            self.open.fetch_sub(1, Ordering::SeqCst);
        }
        let delivered = !decoded.is_empty();
        if delivered {
            // Publish bytes before pages so `has_capacity` can only
            // over-estimate fullness, never under-account.
            self.buffered_bytes.fetch_add(batch_bytes, Ordering::SeqCst);
            self.bytes_received
                .fetch_add(batch_bytes as u64, Ordering::Relaxed);
            let logical: u64 = decoded.iter().map(|(p, _)| p.size_in_bytes() as u64).sum();
            self.logical_bytes_received
                .fetch_add(logical, Ordering::Relaxed);
            self.observe_response(batch_bytes);
            for entry in decoded {
                self.ready.push(entry);
            }
        }
        if delivered || newly_finished {
            Ok(PollOutcome::Delivered)
        } else {
            Ok(PollOutcome::Idle)
        }
    }

    fn decode(&self, frame: &[u8]) -> Result<Page> {
        let every = self.chaos_decode_every.load(Ordering::Relaxed);
        if every > 0 {
            let n = self.decode_attempts.fetch_add(1, Ordering::Relaxed);
            if n % every == every - 1 {
                return Err(PrestoError::transient("chaos: injected decode failure"));
            }
        }
        decode_framed_page(frame).map_err(|e| {
            // A malformed shuffle payload is transient from the engine's
            // view: re-fetching may succeed (the paper's low-level retries).
            PrestoError::transient(format!("exchange decode failed: {e}"))
        })
    }

    /// Take the next buffered page, if any. Releases the wire bytes the
    /// page occupied (tracked per page — decoded size differs from wire
    /// size, and mixing them corrupts the backpressure signal).
    pub fn next_page(&self) -> Option<Page> {
        let (page, wire_len) = self.ready.pop()?;
        self.buffered_bytes.fetch_sub(wire_len, Ordering::SeqCst);
        Some(page)
    }

    /// All sources finished and the local buffer is drained (or the owning
    /// query was cancelled — exchange drivers must retire immediately).
    pub fn is_finished(&self) -> bool {
        self.is_cancelled() || (self.ready.is_empty() && self.open.load(Ordering::SeqCst) == 0)
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Uncompressed size of everything received so far.
    pub fn logical_bytes_received(&self) -> u64 {
        self.logical_bytes_received.load(Ordering::Relaxed)
    }

    /// Transient decode failures that were retried.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Virtual requests currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn page(v: i64) -> Page {
        Page::from_rows(
            &Schema::of(&[("x", DataType::Bigint)]),
            &[vec![Value::Bigint(v)]],
        )
    }

    #[test]
    fn streams_from_multiple_sources() {
        let a = OutputBuffer::new(1, 1 << 20);
        let b = OutputBuffer::new(1, 1 << 20);
        a.enqueue(0, &page(1));
        b.enqueue(0, &page(2));
        a.set_no_more_pages();
        b.set_no_more_pages();
        let client = ExchangeClient::new(1 << 20, Duration::ZERO);
        client.add_source(a, 0);
        client.add_source(b, 0);
        let mut values = Vec::new();
        while !client.is_finished() {
            client.poll_progress().unwrap();
            while let Some(p) = client.next_page() {
                values.push(p.block(0).i64_at(0));
            }
        }
        values.sort();
        assert_eq!(values, vec![1, 2]);
        assert!(client.bytes_received() > 0);
    }

    #[test]
    fn full_input_buffer_stops_polling() {
        let a = OutputBuffer::new(1, 1 << 20);
        for i in 0..100 {
            a.enqueue(0, &page(i));
        }
        a.set_no_more_pages();
        // Tiny input buffer: fills after a few pages.
        let client = ExchangeClient::new(48, Duration::ZERO);
        client.add_source(Arc::clone(&a), 0);
        while client.has_capacity() {
            client.poll_progress().unwrap();
        }
        // Now over capacity: further polls are no-ops (backpressure).
        assert!(!client.has_capacity());
        assert!(!client.poll_progress().unwrap());
        // Upstream still holds the unacknowledged remainder.
        assert!(a.utilization() > 0.0);
        // Draining locally resumes polling.
        while client.next_page().is_some() {}
        assert!(client.has_capacity());
        assert!(client.poll_progress().unwrap());
    }

    #[test]
    fn target_concurrency_tracks_response_sizes() {
        let client = ExchangeClient::new(1 << 16, Duration::ZERO);
        for _ in 0..4 {
            let b = OutputBuffer::new(1, 1 << 20);
            b.enqueue(0, &page(1));
            b.set_no_more_pages();
            client.add_source(b, 0);
        }
        assert!(client.target_concurrency() >= 1);
        client.poll_progress().unwrap();
        // After observing small responses, concurrency stays within bounds.
        let c = client.target_concurrency();
        assert!((1..=4).contains(&c));
    }

    #[test]
    fn empty_client_reports_finished() {
        let client = ExchangeClient::new(1024, Duration::ZERO);
        assert!(client.is_finished());
    }

    #[test]
    fn buffered_bytes_returns_to_zero_after_drain() {
        // The satellite fix: wire bytes in, the same wire bytes out. The
        // old client subtracted the *decoded* size, so the counter drifted.
        let a = OutputBuffer::new(1, 1 << 20);
        for i in 0..20 {
            a.enqueue(0, &page(i));
        }
        a.set_no_more_pages();
        let client = ExchangeClient::new(1 << 20, Duration::ZERO);
        client.add_source(a, 0);
        while !client.is_finished() {
            client.poll_progress().unwrap();
            while let Some(_p) = client.next_page() {}
        }
        assert_eq!(client.buffered_bytes(), 0, "no accounting drift");
    }

    #[test]
    fn transient_decode_failure_refetches_without_loss_or_dup() {
        let a = OutputBuffer::new(1, 1 << 20);
        for i in 0..50 {
            a.enqueue(0, &page(i));
        }
        a.set_no_more_pages();
        // Small input buffer keeps batches to a frame or two, so a batch
        // that hits an injected failure succeeds on its re-fetch.
        let client = ExchangeClient::with_config(64, Duration::ZERO, 8, 5);
        client.set_retry_backoff(Duration::ZERO);
        client.add_source(a, 0);
        // Fail every 3rd decode attempt: batches get retried, and because
        // the token only advances after a full-batch decode, every page
        // arrives exactly once.
        client.set_chaos_decode_every(3);
        let mut values = Vec::new();
        let mut rounds = 0;
        while !client.is_finished() {
            rounds += 1;
            assert!(rounds < 10_000, "retry loop must converge");
            client.poll_progress().unwrap();
            while let Some(p) = client.next_page() {
                for row in 0..p.row_count() {
                    values.push(p.block(0).i64_at(row));
                }
            }
        }
        values.sort();
        assert_eq!(values, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn persistent_decode_failure_eventually_propagates() {
        let a = OutputBuffer::new(1, 1 << 20);
        a.enqueue(0, &page(1));
        a.set_no_more_pages();
        let client = ExchangeClient::with_config(1 << 20, Duration::ZERO, 8, 3);
        client.set_retry_backoff(Duration::ZERO);
        client.add_source(a, 0);
        client.set_chaos_decode_every(1); // every decode fails
        let mut err = None;
        for _ in 0..10 {
            match client.poll_progress() {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("exhausted retries must surface an error");
        // The low-level retry budget is spent, but the failure stays
        // fault-shaped: the coordinator (or client) may retry the whole
        // query on fresh exchanges.
        assert_eq!(err.code, presto_common::ErrorCode::WorkerFailed);
        assert!(err.is_retryable(), "transport exhaustion is a worker fault");
    }

    #[test]
    fn aborted_source_surfaces_worker_failed() {
        let a = OutputBuffer::new(1, 1 << 20);
        a.enqueue(0, &page(1));
        let client = ExchangeClient::new(1 << 20, Duration::ZERO);
        client.add_source(Arc::clone(&a), 0);
        a.abort();
        let err = client.poll_progress().expect_err("lost source must error");
        assert_eq!(err.code, presto_common::ErrorCode::WorkerFailed);
        assert!(err.is_retryable(), "worker loss is retryable at query level");
    }

    #[test]
    fn cancel_stops_retrying_and_finishes() {
        let a = OutputBuffer::new(1, 1 << 20);
        for i in 0..10 {
            a.enqueue(0, &page(i));
        }
        let client = ExchangeClient::with_config(1 << 20, Duration::ZERO, 8, 1000);
        client.set_retry_backoff(Duration::ZERO);
        client.add_source(a, 0);
        client.set_chaos_decode_every(1); // every decode fails: retry forever
        for _ in 0..5 {
            client.poll_progress().unwrap();
        }
        let retries_before = client.retries();
        assert!(retries_before > 0, "chaos must have forced retries");
        client.cancel();
        assert!(client.is_finished(), "cancelled client reports finished");
        for _ in 0..20 {
            assert!(!client.poll_progress().unwrap());
        }
        assert_eq!(
            client.retries(),
            retries_before,
            "a cancelled query must stop retrying immediately"
        );
        assert_eq!(client.buffered_bytes(), 0, "cancel releases buffered bytes");
        assert!(client.next_page().is_none());
    }

    #[test]
    fn transient_failure_backs_off_before_retrying() {
        let a = OutputBuffer::new(1, 1 << 20);
        a.enqueue(0, &page(1));
        a.set_no_more_pages();
        let client = ExchangeClient::with_config(1 << 20, Duration::ZERO, 8, 100);
        client.set_retry_backoff(Duration::from_millis(30));
        client.add_source(a, 0);
        client.set_chaos_decode_every(1); // fail the first decode…
        client.poll_progress().unwrap();
        assert_eq!(client.retries(), 1);
        client.set_chaos_decode_every(0); // …then let the retry through
        // Inside the backoff window no new decode is attempted.
        for _ in 0..10 {
            client.poll_progress().unwrap();
        }
        assert!(client.next_page().is_none(), "no fetch inside the backoff");
        // After the window (30ms base + ≤15ms jitter) the re-fetch succeeds.
        std::thread::sleep(Duration::from_millis(50));
        let deadline = Instant::now() + Duration::from_secs(2);
        while client.next_page().is_none() {
            assert!(Instant::now() < deadline, "retry must happen post-backoff");
            client.poll_progress().unwrap();
        }
        assert_eq!(client.retries(), 1, "exactly one retry was needed");
    }

    #[test]
    fn retry_delay_grows_exponentially_with_jitter_bound() {
        let client = ExchangeClient::new(1 << 20, Duration::ZERO);
        client.set_retry_backoff(Duration::from_millis(10));
        let mut last = Duration::ZERO;
        for attempt in 1..=5u32 {
            let d = client.retry_delay(attempt);
            let step = Duration::from_millis(10) * 2u32.pow(attempt - 1);
            assert!(d >= step, "attempt {attempt}: {d:?} < base step {step:?}");
            assert!(d <= step + step / 2, "attempt {attempt}: jitter beyond 50%");
            assert!(d > last, "backoff must grow");
            last = d;
        }
    }

    #[test]
    fn latency_injection_does_not_sleep() {
        // With 50ms injected latency, issuing requests to 4 sources must
        // return immediately (deadlines, not sleeps).
        let client = ExchangeClient::new(1 << 20, Duration::from_millis(50));
        for _ in 0..4 {
            let b = OutputBuffer::new(1, 1 << 20);
            b.enqueue(0, &page(1));
            b.set_no_more_pages();
            client.add_source(b, 0);
        }
        let start = Instant::now();
        client.poll_progress().unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(40),
            "poll_progress must not sleep for the injected latency"
        );
        // The data still arrives once deadlines pass.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = 0;
        while !client.is_finished() {
            assert!(Instant::now() < deadline, "sources must finish");
            client.poll_progress().unwrap();
            while client.next_page().is_some() {
                got += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got, 4);
    }
}
