//! The consumer-side exchange client.
//!
//! §IV-E2: "the engine monitors the moving average of data transferred per
//! request to compute a target HTTP request concurrency that keeps the
//! input buffers populated while not exceeding their capacity. This
//! backpressure causes upstream tasks to slow down as their buffers fill
//! up."

use bytes::Bytes;
use presto_common::{PrestoError, Result};
use presto_page::{deserialize_page, Page};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crate::buffer::OutputBuffer;

/// One upstream producer this client reads from.
struct Source {
    buffer: Arc<OutputBuffer>,
    /// Which partition of the producer's buffer belongs to this consumer.
    partition: usize,
    token: u64,
    finished: bool,
}

/// Pulls pages from all upstream task buffers feeding one consumer task.
pub struct ExchangeClient {
    sources: Vec<Source>,
    /// Locally buffered (deserialized) pages not yet handed to operators.
    buffered: VecDeque<Page>,
    buffered_bytes: usize,
    /// Input buffer capacity; polls stop while it is exceeded.
    capacity_bytes: usize,
    /// Exponential moving average of bytes per poll response.
    avg_bytes_per_request: f64,
    /// Simulated network latency per poll (models the HTTP round trip).
    poll_latency: Duration,
    /// Round-robin cursor over sources.
    cursor: usize,
    /// Total bytes fetched, for telemetry.
    bytes_received: u64,
}

impl ExchangeClient {
    pub fn new(capacity_bytes: usize, poll_latency: Duration) -> ExchangeClient {
        ExchangeClient {
            sources: Vec::new(),
            buffered: VecDeque::new(),
            buffered_bytes: 0,
            capacity_bytes,
            avg_bytes_per_request: 0.0,
            poll_latency,
            cursor: 0,
            bytes_received: 0,
        }
    }

    /// Subscribe to `partition` of an upstream task's buffer. May be called
    /// as upstream tasks are scheduled (tasks stream as soon as data is
    /// available; new sources attach dynamically).
    pub fn add_source(&mut self, buffer: Arc<OutputBuffer>, partition: usize) {
        self.sources.push(Source {
            buffer,
            partition,
            token: 0,
            finished: false,
        });
    }

    /// Number of sources still producing.
    pub fn open_sources(&self) -> usize {
        self.sources.iter().filter(|s| !s.finished).count()
    }

    /// Target concurrent in-flight requests, derived from the moving
    /// average response size so the input buffer stays populated without
    /// overflowing (§IV-E2). In the in-process transport this bounds how
    /// many sources one `poll_progress` call touches.
    pub fn target_concurrency(&self) -> usize {
        if self.avg_bytes_per_request <= 0.0 {
            return self.sources.len().clamp(1, 8);
        }
        let headroom = (self.capacity_bytes as f64 - self.buffered_bytes as f64).max(0.0);
        ((headroom / self.avg_bytes_per_request).ceil() as usize)
            .clamp(1, self.sources.len().max(1))
    }

    /// Whether the client's own input buffer has room (when false, polling
    /// pauses and upstream buffers fill — backpressure).
    pub fn has_capacity(&self) -> bool {
        self.buffered_bytes < self.capacity_bytes
    }

    /// Poll some sources, moving available pages into the local buffer.
    /// Returns true if any progress was made.
    pub fn poll_progress(&mut self) -> Result<bool> {
        if !self.has_capacity() {
            return Ok(false);
        }
        let mut progressed = false;
        let budget = self.target_concurrency();
        let n = self.sources.len();
        for _ in 0..n.min(budget.max(1)) {
            if self.sources.is_empty() {
                break;
            }
            let idx = self.cursor % self.sources.len();
            self.cursor = self.cursor.wrapping_add(1);
            let source = &mut self.sources[idx];
            if source.finished {
                continue;
            }
            if !self.poll_latency.is_zero() {
                std::thread::sleep(self.poll_latency);
            }
            let response = source.buffer.poll(
                source.partition,
                source.token,
                self.capacity_bytes
                    .saturating_sub(self.buffered_bytes)
                    .max(1),
            );
            source.token = response.next_token;
            source.finished = response.finished;
            let mut batch_bytes = 0usize;
            for bytes in &response.pages {
                batch_bytes += bytes.len();
                self.buffered.push_back(decode(bytes)?);
            }
            if !response.pages.is_empty() {
                progressed = true;
                self.buffered_bytes += batch_bytes;
                self.bytes_received += batch_bytes as u64;
                // EMA with alpha = 0.2, like a smoothed per-request size.
                self.avg_bytes_per_request =
                    0.8 * self.avg_bytes_per_request + 0.2 * batch_bytes as f64;
            }
            if response.finished {
                progressed = true;
            }
        }
        Ok(progressed)
    }

    /// Take the next buffered page, if any.
    pub fn next_page(&mut self) -> Option<Page> {
        let page = self.buffered.pop_front()?;
        self.buffered_bytes = self.buffered_bytes.saturating_sub(page.size_in_bytes());
        Some(page)
    }

    /// All sources finished and the local buffer is drained.
    pub fn is_finished(&self) -> bool {
        self.buffered.is_empty() && self.sources.iter().all(|s| s.finished)
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }
}

fn decode(bytes: &Bytes) -> Result<Page> {
    deserialize_page(bytes).map_err(|e| {
        // A malformed shuffle payload is transient from the engine's view:
        // re-fetching may succeed (the paper's low-level retries).
        PrestoError::transient(format!("exchange decode failed: {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn page(v: i64) -> Page {
        Page::from_rows(
            &Schema::of(&[("x", DataType::Bigint)]),
            &[vec![Value::Bigint(v)]],
        )
    }

    #[test]
    fn streams_from_multiple_sources() {
        let a = OutputBuffer::new(1, 1 << 20);
        let b = OutputBuffer::new(1, 1 << 20);
        a.enqueue(0, &page(1));
        b.enqueue(0, &page(2));
        a.set_no_more_pages();
        b.set_no_more_pages();
        let mut client = ExchangeClient::new(1 << 20, Duration::ZERO);
        client.add_source(a, 0);
        client.add_source(b, 0);
        let mut values = Vec::new();
        while !client.is_finished() {
            client.poll_progress().unwrap();
            while let Some(p) = client.next_page() {
                values.push(p.block(0).i64_at(0));
            }
        }
        values.sort();
        assert_eq!(values, vec![1, 2]);
        assert!(client.bytes_received() > 0);
    }

    #[test]
    fn full_input_buffer_stops_polling() {
        let a = OutputBuffer::new(1, 1 << 20);
        for i in 0..100 {
            a.enqueue(0, &page(i));
        }
        a.set_no_more_pages();
        // Tiny input buffer: fills after a few pages.
        let mut client = ExchangeClient::new(48, Duration::ZERO);
        client.add_source(Arc::clone(&a), 0);
        while client.has_capacity() {
            client.poll_progress().unwrap();
        }
        // Now over capacity: further polls are no-ops (backpressure).
        assert!(!client.has_capacity());
        assert!(!client.poll_progress().unwrap());
        // Upstream still holds the unacknowledged remainder.
        assert!(a.utilization() > 0.0);
        // Draining locally resumes polling.
        while client.next_page().is_some() {}
        assert!(client.has_capacity());
        assert!(client.poll_progress().unwrap());
    }

    #[test]
    fn target_concurrency_tracks_response_sizes() {
        let mut client = ExchangeClient::new(1 << 16, Duration::ZERO);
        for _ in 0..4 {
            let b = OutputBuffer::new(1, 1 << 20);
            b.enqueue(0, &page(1));
            b.set_no_more_pages();
            client.add_source(b, 0);
        }
        assert!(client.target_concurrency() >= 1);
        client.poll_progress().unwrap();
        // After observing small responses, concurrency stays within bounds.
        let c = client.target_concurrency();
        assert!((1..=4).contains(&c));
    }

    #[test]
    fn empty_client_reports_finished() {
        let client = ExchangeClient::new(1024, Duration::ZERO);
        assert!(client.is_finished());
    }
}
