//! Buffered in-memory shuffles (§IV-E2).
//!
//! "Presto uses in-memory buffered shuffles over HTTP to exchange
//! intermediate results. Data produced by tasks is stored in buffers for
//! consumption by other workers. Workers request intermediate results from
//! other workers using HTTP long-polling. The server retains data until the
//! client requests the next segment using a token sent in the previous
//! response."
//!
//! The transport here is shared memory rather than HTTP — per DESIGN.md the
//! simulated cluster replaces only the wire — but the protocol is the same:
//!
//! * producers append serialized pages into a partitioned [`OutputBuffer`];
//! * consumers poll `(partition, token)`; the buffer retains data until the
//!   next token implicitly acknowledges it;
//! * producers observe output-buffer utilization and *stall* when full
//!   (driving the engine's concurrency-reduction adaptation, §IV-E2);
//! * consumers ([`ExchangeClient`]) track a moving average of bytes per
//!   response to size their request concurrency, and stop polling when
//!   their input buffer is full — backpressure that propagates upstream.

pub mod buffer;
pub mod client;

pub use buffer::{BufferState, OutputBuffer, PollResponse};
pub use client::ExchangeClient;
