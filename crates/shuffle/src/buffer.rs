//! The producer-side output buffer.

use bytes::Bytes;
use parking_lot::Mutex;
use presto_page::{frame_payload, serialize_page, Page};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of one long-poll request.
#[derive(Debug, Clone)]
pub struct PollResponse {
    /// Framed serialized pages, in order (see `presto_page::frame`).
    pub pages: Vec<Bytes>,
    /// Token to send with the next request (acknowledges these pages).
    pub next_token: u64,
    /// True when no further data will ever arrive for this partition.
    pub finished: bool,
}

/// Buffer lifecycle, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferState {
    Open,
    NoMorePages,
    Finished,
}

#[derive(Debug, Default)]
struct Partition {
    /// (sequence, framed page) pairs retained until acknowledged.
    pages: VecDeque<(u64, Bytes)>,
    /// Sequence number of the next page appended.
    next_seq: u64,
}

/// A partitioned, bounded, token-acknowledged page buffer owned by one
/// producing task.
///
/// Pages are framed ([`presto_page::frame`]) at enqueue time: the buffer
/// retains and serves *wire* bytes, so capacity, utilization, and the
/// backpressure signal all reflect what actually sits in memory awaiting
/// acknowledgement. The pre-compression (logical) byte count is tracked
/// separately for telemetry.
pub struct OutputBuffer {
    partitions: Vec<Mutex<Partition>>,
    /// Wire bytes currently retained (pending + unacknowledged).
    buffered_bytes: AtomicUsize,
    /// Soft capacity; producers stall above it.
    capacity_bytes: usize,
    /// Frames at least this long get LZ-compressed (`usize::MAX` disables).
    compression_min_bytes: usize,
    no_more_pages: std::sync::atomic::AtomicBool,
    /// Set when the producing task's worker crashed or was declared lost:
    /// consumers must surface `WorkerFailed` instead of treating the
    /// (cleared) buffer as a clean end-of-stream.
    aborted: std::sync::atomic::AtomicBool,
    /// Partitions currently accepting round-robin traffic (§IV-E3 adaptive
    /// writer scaling: consumers activate as the engine adds writer tasks).
    active_partitions: AtomicUsize,
    /// Total pages/bytes ever enqueued, for telemetry.
    total_pages: AtomicU64,
    total_wire_bytes: AtomicU64,
    total_logical_bytes: AtomicU64,
}

impl OutputBuffer {
    pub fn new(consumer_count: usize, capacity_bytes: usize) -> Arc<OutputBuffer> {
        Self::with_compression(consumer_count, capacity_bytes, usize::MAX)
    }

    /// Build a buffer that compresses frames at least `compression_min_bytes`
    /// long (`usize::MAX` disables compression).
    pub fn with_compression(
        consumer_count: usize,
        capacity_bytes: usize,
        compression_min_bytes: usize,
    ) -> Arc<OutputBuffer> {
        assert!(
            consumer_count > 0,
            "output buffer needs at least one consumer"
        );
        Arc::new(OutputBuffer {
            partitions: (0..consumer_count)
                .map(|_| Mutex::new(Partition::default()))
                .collect(),
            buffered_bytes: AtomicUsize::new(0),
            capacity_bytes,
            compression_min_bytes,
            no_more_pages: std::sync::atomic::AtomicBool::new(false),
            aborted: std::sync::atomic::AtomicBool::new(false),
            active_partitions: AtomicUsize::new(consumer_count),
            total_pages: AtomicU64::new(0),
            total_wire_bytes: AtomicU64::new(0),
            total_logical_bytes: AtomicU64::new(0),
        })
    }

    pub fn consumer_count(&self) -> usize {
        self.partitions.len()
    }

    /// Partitions that round-robin routing may target. Starts at
    /// `consumer_count`; the writer-scaling monitor lowers it at creation
    /// and raises it as writer tasks are added (§IV-E3).
    pub fn active_partitions(&self) -> usize {
        self.active_partitions
            .load(Ordering::SeqCst)
            .clamp(1, self.partitions.len())
    }

    pub fn set_active_partitions(&self, n: usize) {
        self.active_partitions
            .store(n.clamp(1, self.partitions.len()), Ordering::SeqCst);
    }

    /// Current fill fraction; ≥ 1.0 means producers must stall. This is the
    /// signal the engine monitors to lower split concurrency (§IV-E2).
    pub fn utilization(&self) -> f64 {
        self.buffered_bytes.load(Ordering::Relaxed) as f64 / self.capacity_bytes.max(1) as f64
    }

    /// Whether a producer may append more data.
    pub fn can_add(&self) -> bool {
        self.buffered_bytes.load(Ordering::Relaxed) < self.capacity_bytes
    }

    /// Append a page to one partition. The caller should check
    /// [`OutputBuffer::can_add`] first and yield when full; `enqueue` itself
    /// never blocks (buffers are soft-bounded so a page in flight always
    /// lands). The page is serialized and framed here, on the producer's
    /// thread.
    pub fn enqueue(&self, partition: usize, page: &Page) {
        let payload = serialize_page(page);
        let logical = payload.len();
        let frame = frame_payload(&payload, self.compression_min_bytes);
        self.enqueue_frame(partition, frame, logical);
    }

    /// Append an already-framed page (used by broadcast to serialize and
    /// frame once, then share the allocation across partitions).
    /// `logical_len` is the pre-compression payload length, for telemetry.
    pub fn enqueue_frame(&self, partition: usize, frame: Bytes, logical_len: usize) {
        // A cancelled task closes the buffer while producers may still be
        // mid-quanta; their trailing pages are dropped, not an error.
        if self.no_more_pages.load(Ordering::SeqCst) {
            return;
        }
        let wire_len = frame.len();
        let mut p = self.partitions[partition].lock();
        let seq = p.next_seq;
        p.next_seq += 1;
        p.pages.push_back((seq, frame));
        drop(p);
        self.buffered_bytes.fetch_add(wire_len, Ordering::Relaxed);
        self.total_pages.fetch_add(1, Ordering::Relaxed);
        self.total_wire_bytes
            .fetch_add(wire_len as u64, Ordering::Relaxed);
        self.total_logical_bytes
            .fetch_add(logical_len as u64, Ordering::Relaxed);
    }

    /// Broadcast a page to every partition (replicated joins). The page is
    /// serialized and framed once; `Bytes` clones share the allocation.
    pub fn broadcast(&self, page: &Page) {
        let payload = serialize_page(page);
        let logical = payload.len();
        let frame = frame_payload(&payload, self.compression_min_bytes);
        for partition in 0..self.partitions.len() {
            self.enqueue_frame(partition, frame.clone(), logical);
        }
    }

    /// Declare that no further pages will be enqueued.
    pub fn set_no_more_pages(&self) {
        self.no_more_pages.store(true, Ordering::SeqCst);
    }

    /// Teardown: stop accepting pages and release every retained frame
    /// (§IV-G clean teardown — unacknowledged wire bytes must not outlive
    /// their query). Consumers observe a clean end-of-stream.
    pub fn close(&self) {
        self.set_no_more_pages();
        let mut freed = 0usize;
        for partition in &self.partitions {
            let mut p = partition.lock();
            freed += p.pages.iter().map(|(_, b)| b.len()).sum::<usize>();
            p.pages.clear();
        }
        if freed > 0 {
            self.buffered_bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Source-lost teardown: like [`close`](Self::close), but consumers must
    /// treat this buffer as a failed upstream (`WorkerFailed`), not a clean
    /// end-of-stream — the producer died mid-stream and data may be missing.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.close();
    }

    /// Whether the producing task was lost mid-stream.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    pub fn state(&self) -> BufferState {
        if !self.no_more_pages.load(Ordering::SeqCst) {
            return BufferState::Open;
        }
        let drained = self.partitions.iter().all(|p| p.lock().pages.is_empty());
        if drained {
            BufferState::Finished
        } else {
            BufferState::NoMorePages
        }
    }

    /// Long-poll one partition. `token` acknowledges everything before it
    /// (the implicit-ack protocol); up to `max_bytes` of pages are returned.
    pub fn poll(&self, partition: usize, token: u64, max_bytes: usize) -> PollResponse {
        let mut p = self.partitions[partition].lock();
        // Drop acknowledged pages.
        let mut freed = 0usize;
        while let Some((seq, bytes)) = p.pages.front() {
            if *seq < token {
                freed += bytes.len();
                p.pages.pop_front();
            } else {
                break;
            }
        }
        if freed > 0 {
            self.buffered_bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        // Collect the next batch (without removing: retained until acked).
        let mut pages = Vec::new();
        let mut size = 0usize;
        let mut next_token = token;
        for (seq, bytes) in p.pages.iter() {
            if *seq < token {
                continue;
            }
            if !pages.is_empty() && size + bytes.len() > max_bytes {
                break;
            }
            pages.push(bytes.clone());
            size += bytes.len();
            next_token = seq + 1;
        }
        let finished = self.no_more_pages.load(Ordering::SeqCst)
            && p.pages.iter().all(|(seq, _)| *seq < next_token);
        PollResponse {
            pages,
            next_token,
            finished,
        }
    }

    /// (pages, wire bytes) ever enqueued.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.total_pages.load(Ordering::Relaxed),
            self.total_wire_bytes.load(Ordering::Relaxed),
        )
    }

    /// (wire bytes, logical pre-compression bytes) ever enqueued; their
    /// ratio is the shuffle compression factor.
    pub fn byte_totals(&self) -> (u64, u64) {
        (
            self.total_wire_bytes.load(Ordering::Relaxed),
            self.total_logical_bytes.load(Ordering::Relaxed),
        )
    }

    /// Wire bytes currently retained (pending + unacknowledged). This is
    /// what the producing task's operators charge to the system memory pool.
    pub fn retained_bytes(&self) -> usize {
        self.buffered_bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for OutputBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutputBuffer")
            .field("consumers", &self.partitions.len())
            .field("utilization", &self.utilization())
            .field("state", &self.state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Schema, Value};

    fn page(v: i64) -> Page {
        Page::from_rows(
            &Schema::of(&[("x", DataType::Bigint)]),
            &[vec![Value::Bigint(v)]],
        )
    }

    #[test]
    fn poll_with_token_acknowledges() {
        let buf = OutputBuffer::new(1, 1 << 20);
        buf.enqueue(0, &page(1));
        buf.enqueue(0, &page(2));
        let r1 = buf.poll(0, 0, usize::MAX);
        assert_eq!(r1.pages.len(), 2);
        assert!(!r1.finished);
        // Same token: data retained, same response (at-least-once).
        let r1b = buf.poll(0, 0, usize::MAX);
        assert_eq!(r1b.pages.len(), 2);
        // Advancing the token releases buffer space.
        let used_before = buf.utilization();
        let r2 = buf.poll(0, r1.next_token, usize::MAX);
        assert!(r2.pages.is_empty());
        assert!(buf.utilization() < used_before);
        buf.set_no_more_pages();
        assert!(buf.poll(0, r1.next_token, usize::MAX).finished);
        assert_eq!(buf.state(), BufferState::Finished);
    }

    #[test]
    fn max_bytes_paginates_but_returns_at_least_one() {
        let buf = OutputBuffer::new(1, 1 << 20);
        for i in 0..10 {
            buf.enqueue(0, &page(i));
        }
        let r = buf.poll(0, 0, 1); // tiny budget: still one page
        assert_eq!(r.pages.len(), 1);
        assert_eq!(r.next_token, 1);
    }

    #[test]
    fn utilization_and_backpressure() {
        let buf = OutputBuffer::new(1, 64);
        assert!(buf.can_add());
        for i in 0..10 {
            buf.enqueue(0, &page(i));
        }
        assert!(!buf.can_add(), "past capacity the producer must stall");
        assert!(buf.utilization() >= 1.0);
        // Consumer drains; producer unblocks.
        let r = buf.poll(0, 0, usize::MAX);
        buf.poll(0, r.next_token, usize::MAX);
        assert!(buf.can_add());
    }

    #[test]
    fn broadcast_replicates_to_all_partitions() {
        let buf = OutputBuffer::new(3, 1 << 20);
        buf.broadcast(&page(42));
        buf.set_no_more_pages();
        for partition in 0..3 {
            let r = buf.poll(partition, 0, usize::MAX);
            assert_eq!(r.pages.len(), 1);
            assert!(r.finished);
        }
        let (pages, _) = buf.totals();
        assert_eq!(pages, 3);
    }

    #[test]
    fn wire_bytes_drive_accounting_and_compression_is_tracked() {
        use presto_page::frame_info;
        // Highly repetitive page: compresses well once framed.
        let rows: Vec<Vec<Value>> = (0..512).map(|_| vec![Value::Bigint(7)]).collect();
        let big = Page::from_rows(&Schema::of(&[("x", DataType::Bigint)]), &rows);
        let buf = OutputBuffer::with_compression(1, 1 << 20, 64);
        buf.enqueue(0, &big);
        let r = buf.poll(0, 0, usize::MAX);
        assert_eq!(r.pages.len(), 1);
        let frame = &r.pages[0];
        let info = frame_info(frame).expect("valid frame");
        assert!(info.compressed, "512 identical rows must compress");
        // Retained bytes are the wire size of the frame, not the logical
        // serialized size — the backpressure signal sees real memory.
        assert_eq!(buf.retained_bytes(), frame.len());
        let (wire, logical) = buf.byte_totals();
        assert_eq!(wire as usize, frame.len());
        assert_eq!(logical as usize, info.uncompressed_len);
        assert!(wire < logical, "wire {wire} should be < logical {logical}");
        // Acknowledging frees exactly the wire bytes.
        buf.poll(0, r.next_token, usize::MAX);
        assert_eq!(buf.retained_bytes(), 0);
    }

    #[test]
    fn close_releases_retained_bytes() {
        let buf = OutputBuffer::new(2, 1 << 20);
        for i in 0..8 {
            buf.enqueue(0, &page(i));
            buf.enqueue(1, &page(i));
        }
        assert!(buf.retained_bytes() > 0);
        buf.close();
        assert_eq!(buf.retained_bytes(), 0, "teardown must free wire bytes");
        assert!(!buf.is_aborted());
        assert_eq!(buf.state(), BufferState::Finished);
        // Late producer pages (cancelled task mid-quanta) are dropped.
        buf.enqueue(0, &page(99));
        assert_eq!(buf.retained_bytes(), 0);
        // Consumers see a clean end-of-stream.
        let r = buf.poll(0, 0, usize::MAX);
        assert!(r.pages.is_empty() && r.finished);
    }

    #[test]
    fn abort_marks_source_lost() {
        let buf = OutputBuffer::new(1, 1 << 20);
        buf.enqueue(0, &page(1));
        buf.abort();
        assert!(buf.is_aborted());
        assert_eq!(buf.retained_bytes(), 0);
    }

    #[test]
    fn partitions_are_independent() {
        let buf = OutputBuffer::new(2, 1 << 20);
        buf.enqueue(0, &page(1));
        assert_eq!(buf.poll(0, 0, usize::MAX).pages.len(), 1);
        assert_eq!(buf.poll(1, 0, usize::MAX).pages.len(), 0);
    }
}
