//! presto-rs: a Rust reproduction of *Presto: SQL on Everything*
//! (ICDE 2019).
//!
//! This umbrella crate re-exports the public API ([`PrestoEngine`]) and
//! the underlying layers for direct use:
//!
//! | module | contents |
//! |---|---|
//! | [`common`] | types, values, schemas, errors, sessions, statistics |
//! | [`page`] | columnar pages and blocks (flat, RLE, dictionary, lazy) |
//! | [`expr`] | expression IR, interpreter, compiled evaluator, aggregates |
//! | [`sql`] | lexer, parser, AST |
//! | [`connector`] | the Connector SPI (metadata/splits/source/sink/index) |
//! | [`porc`] | the PORC columnar file format |
//! | [`connectors`] | memory, Hive-like, Raptor-like, sharded-SQL, chaos |
//! | [`planner`] | analyzer, optimizer, CBO, fragmenter |
//! | [`exec`] | operators, pipelines, the driver loop |
//! | [`shuffle`] | buffered in-memory exchanges |
//! | [`cache`] | sharded metadata/footer/split caches with memory accounting |
//! | [`cluster`] | coordinator, workers, MLFQ, memory pools, telemetry |
//! | [`workload`] | TPC-H-style generator, Fig. 6 queries, Table I workloads |

pub use presto_core::{PrestoEngine, QueryError};

pub use presto_cache as cache;
pub use presto_cluster as cluster;
pub use presto_common as common;
pub use presto_connector as connector;
pub use presto_connectors as connectors;
pub use presto_exec as exec;
pub use presto_expr as expr;
pub use presto_page as page;
pub use presto_planner as planner;
pub use presto_porc as porc;
pub use presto_shuffle as shuffle;
pub use presto_sql as sql;
pub use presto_workload as workload;
