//! presto-rs command line interface.
//!
//! An interactive SQL shell over an embedded cluster — the "first-class
//! command line interface" of §IV-B1.
//!
//! ```sh
//! cargo run --release --bin presto -- --tpch 0.01
//! presto> SELECT returnflag, COUNT(*) FROM lineitem GROUP BY returnflag;
//! presto> EXPLAIN SELECT custkey, SUM(totalprice) FROM orders GROUP BY custkey;
//! presto> \q
//! ```

use presto::common::Value;
use presto::workload::TpchGenerator;
use presto::PrestoEngine;
use std::io::{BufRead, Write};

fn print_table(result: &presto::cluster::QueryResult) {
    let columns = result.schema.len();
    let headers: Vec<String> = result
        .schema
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let rows = result.rows();
    // Column widths.
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(c, v)| {
                    let s = match v {
                        Value::Null => "NULL".to_string(),
                        Value::Double(d) => format!("{d:.4}"),
                        other => other.to_string(),
                    };
                    widths[c] = widths[c].max(s.len());
                    s
                })
                .collect()
        })
        .collect();
    let line = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("{}", line(&widths));
    print!("|");
    for (c, h) in headers.iter().enumerate() {
        print!(" {h:<width$} |", width = widths[c]);
    }
    println!("\n{}", line(&widths));
    for row in &rendered {
        print!("|");
        for (c, v) in row.iter().enumerate() {
            print!(" {v:<width$} |", width = widths[c]);
        }
        println!();
    }
    println!("{}", line(&widths));
    println!(
        "({} row{}, {:.1?} wall, {:.1?} cpu)",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" },
        result.wall_time,
        result.cpu_time
    );
    let _ = columns;
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let engine = PrestoEngine::builder().build()?;
    if let Some(pos) = args.iter().position(|a| a == "--tpch") {
        let scale: f64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.01);
        eprintln!("loading TPC-H tables at scale factor {scale} into catalog 'memory'…");
        TpchGenerator::new(scale).load_memory(engine.memory_connector());
        eprintln!("tables: region nation customer orders lineitem part supplier partsupp");
    }
    eprintln!("presto-rs shell — terminate statements with ';', '\\q' to quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("presto> ");
        } else {
            eprint!("     -> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed == "\\q" || trimmed == "exit" || trimmed == "quit") {
            break;
        }
        if trimmed.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        match engine.execute(&sql) {
            Ok(result) => print_table(&result),
            Err(e) => eprintln!("{e}"),
        }
    }
    Ok(())
}
