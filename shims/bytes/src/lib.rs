//! In-workspace stand-in for the `bytes` crate.
//!
//! Provides the `Buf`/`BufMut` cursor traits and the `Bytes`/`BytesMut`
//! buffer types for the little-endian codec paths in `presto-page`,
//! `presto-porc`, and `presto-shuffle`. `Bytes` is a cheaply-cloneable
//! shared buffer (`Arc<[u8]>` + offset) like the real crate; the zero-copy
//! split/slice machinery the workspace doesn't use is omitted.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a contiguous byte region.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// Immutable, cheaply-cloneable shared byte buffer with a read offset so it
/// can also act as a [`Buf`].
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(src),
            offset: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.offset += cnt;
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = frozen.as_ref();
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_as_buf_advances_offset() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.len(), 3);
        let clone = b.clone();
        assert_eq!(clone.as_ref(), &[2, 3, 4]);
    }
}
