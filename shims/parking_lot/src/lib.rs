//! In-workspace stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset it actually uses* on top of `std::sync`. Semantics match
//! parking_lot where it matters to callers:
//!
//! - locks do not poison (a panic while holding the lock leaves it usable);
//! - guards release on drop;
//! - `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.
//!
//! Fairness and the compact word-sized representation of the real crate are
//! not reproduced; `std` primitives are fine at workspace scale.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex over [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Mutex { .. }")
    }
}

/// Guard for [`Mutex`]; the `Option` exists so [`Condvar::wait`] can move
/// the underlying std guard out and back without consuming ours.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard vacated only inside Condvar::wait"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard vacated only inside Condvar::wait"),
        }
    }
}

/// Non-poisoning reader-writer lock over [`std::sync::RwLock`].
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("RwLock { .. }")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable usable with [`Mutex`]/[`MutexGuard`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified. Unlike std, takes the guard by `&mut` and
    /// re-fills it on wake, matching parking_lot's signature.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard vacated only inside Condvar::wait"),
        };
        guard.inner = Some(self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses, matching parking_lot's
    /// `wait_for` signature.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard vacated only inside Condvar::wait"),
        };
        let (g, result) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(0);
        *l.write() += 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter exits");
    }
}
