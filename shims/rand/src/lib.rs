//! In-workspace stand-in for the `rand` crate.
//!
//! The workload generators and benchmarks only need seeded, uniform
//! sampling: `StdRng::seed_from_u64`, `gen_range` over half-open ranges of
//! primitive ints/floats, and `gen_bool`. This stand-in provides exactly
//! that on a SplitMix64 core — deterministic per seed, which the repo's
//! reproducibility story (EXPERIMENTS.md) already relies on.

use std::ops::Range;

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling on top of any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on empty ranges,
    /// like the real crate.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::unit(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a `Range`.
pub trait UniformSample: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                // Modulo bias is negligible for the span sizes in this
                // workspace (all far below 2^64).
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::unit(rng) * (range.end - range.start)
    }
}

trait UnitSample {
    fn unit<R: RngCore>(rng: &mut R) -> f64;
}

impl UnitSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn unit<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64. Fast, passes basic
    /// statistical tests, and fully determined by its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-99_999i64..999_999);
            assert!((-99_999..999_999).contains(&v));
            let u = rng.gen_range(0usize..16);
            assert!(u < 16);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
