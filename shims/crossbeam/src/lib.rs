//! In-workspace stand-in for the `crossbeam` crate.
//!
//! Only `queue::SegQueue` is used by the workspace (the split queue in
//! `presto-exec`). The real type is a lock-free segmented queue; this
//! stand-in keeps the API (`&self` push/pop, `Send + Sync`) over a mutexed
//! `VecDeque`, which is plenty for split-scheduling traffic.

pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue with interior mutability.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        pub fn len(&self) -> usize {
            self.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> SegQueue<T> {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SegQueue(len={})", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;
        use std::thread;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_drain_fully() {
            let q = Arc::new(SegQueue::new());
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = q.clone();
                    thread::spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("producer");
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 400);
        }
    }
}
