//! In-workspace stand-in for the `criterion` crate.
//!
//! Supports the workspace's `benches/*.rs` targets: groups, throughput
//! annotations, `bench_function`, and `Bencher::iter`. Measurement is a
//! simple warmup + timed loop printing ns/iter (and derived throughput);
//! there is no statistical analysis, HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", None, &id.to_string(), f);
        self
    }
}

/// Named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, self.throughput, &id.to_string(), f);
        self
    }

    pub fn finish(self) {}
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark identifier (`name/parameter`).
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timer handed to the closure in `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`: brief warmup, then iterate for a fixed budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget || iters >= 1_000_000 {
                break;
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(
    group: &str,
    throughput: Option<Throughput>,
    id: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / bencher.ns_per_iter;
            format!("  ({gbps:.3} GB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / bencher.ns_per_iter * 1e3;
            format!("  ({meps:.1} Melem/s)")
        }
        None => String::new(),
    };
    println!("{label:<48} {:>12.1} ns/iter{rate}", bencher.ns_per_iter);
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("noop", 10), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
