//! Test-loop configuration and the deterministic per-case RNG.

/// Why a test case failed; test bodies may `?`-propagate it. The shim's
/// assertion macros panic instead of returning this, so it only flows
/// through explicitly fallible helpers.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (filtered out) — counts as a skip upstream;
    /// the shim treats it as a failure since it does not resample.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// How many cases `proptest!` runs per test function.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// SplitMix64 seeded from the test's module path + case index, so every
/// case is reproducible without shrinking support.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi)`; yields `lo` when the range is empty (matches
    /// how size ranges like `1..1` should behave as a fixed length).
    pub fn below_range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t::x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
